//! Workspace root for the CLAP (PLDI 2013) reproduction.
//!
//! Re-exports the crates so examples and integration tests have one
//! import surface; the real APIs live in the `clap-*` crates (start at
//! [`clap_core::Pipeline`]).

pub use clap_analysis as analysis;
pub use clap_constraints as constraints;
pub use clap_core as core;
pub use clap_ir as ir;
pub use clap_leap as leap;
pub use clap_parallel as parallel;
pub use clap_profile as profile;
pub use clap_replay as replay;
pub use clap_solver as solver;
pub use clap_symex as symex;
pub use clap_vm as vm;
pub use clap_workloads as workloads;
