//! `clap-reproduce` — the command-line front end of the CLAP reproduction.
//!
//! ```text
//! clap-reproduce check     prog.clap                    parse + check, print summary
//! clap-reproduce dump      prog.clap                    pretty-print the lowered CFG
//! clap-reproduce run       prog.clap [--model M] [--seed N] [--stickiness S]
//! clap-reproduce explore   prog.clap [--model M] [--budget N] [--workers N]
//! clap-reproduce reproduce prog.clap [--model M] [--budget N] [--workers N]
//!                          [--solver seq|par|auto] [--solve-timeout SECS] [--sync-order]
//! ```
//!
//! `M` is one of `sc` (default), `tso`, `pso`. `--workers` sets the
//! record-phase exploration pool size (0, the default, means one worker
//! per core); any value returns the same artifact. `--solver auto` runs
//! the adaptive portfolio: the parallel engine escalates up a
//! preemption-bound ladder, then the sequential solver takes the rest of
//! the `--solve-timeout` budget. `--parallel` is shorthand for
//! `--solver par`.
//!
//! Every command that executes the program (`run`, `explore`,
//! `reproduce`) also accepts the observability flags: `--trace <path>`
//! writes a Chrome `trace_event` JSON timeline (loadable in Perfetto or
//! `about:tracing`), `--metrics <path>` writes the JSONL metric stream,
//! and `-v`/`--verbose` prints the collector summary to stderr.

use clap_core::{AutoConfig, Pipeline, PipelineConfig, SolverChoice};
use clap_obs::Observer;
use clap_parallel::ParallelConfig;
use clap_solver::SolverConfig;
use clap_vm::{MemModel, NullMonitor, RandomScheduler, Vm};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  clap-reproduce check     <prog.clap>
  clap-reproduce dump      <prog.clap>
  clap-reproduce run       <prog.clap> [--model sc|tso|pso] [--seed N] [--stickiness S]
  clap-reproduce explore   <prog.clap> [--model sc|tso|pso] [--budget N] [--workers N]
  clap-reproduce reproduce <prog.clap> [--model sc|tso|pso] [--budget N] [--workers N]
                           [--solver seq|par|auto] [--solve-timeout SECS] [--sync-order]

solving (reproduce):
  --solver seq|par|auto    sequential DPLL(T), parallel generate-and-validate,
                           or the adaptive portfolio (ladder + fallback); default seq
  --parallel               shorthand for --solver par
  --solve-timeout SECS     overall wall-clock budget for the solve phase

observability (run/explore/reproduce):
  --trace <path>     write a Chrome trace_event JSON timeline (Perfetto-loadable)
  --metrics <path>   write the JSONL metric stream
  -v, --verbose      print the collector summary to stderr";

#[derive(Clone, Copy, PartialEq, Eq)]
enum SolverFlag {
    Sequential,
    Parallel,
    Auto,
}

struct Options {
    file: String,
    model: MemModel,
    seed: u64,
    stickiness: f64,
    budget: u64,
    workers: usize,
    solver: SolverFlag,
    solve_timeout: Option<Duration>,
    sync_order: bool,
    trace: Option<String>,
    metrics: Option<String>,
    verbose: bool,
}

impl Options {
    fn observer(&self) -> Observer {
        let mut observer = Observer::none();
        if let Some(path) = &self.trace {
            observer = observer.with_trace(path);
        }
        if let Some(path) = &self.metrics {
            observer = observer.with_metrics(path);
        }
        if self.verbose {
            observer = observer.with_summary();
        }
        observer
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        file: String::new(),
        model: MemModel::Sc,
        seed: 0,
        stickiness: 0.7,
        budget: 20_000,
        workers: 0,
        solver: SolverFlag::Sequential,
        solve_timeout: None,
        sync_order: false,
        trace: None,
        metrics: None,
        verbose: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                let v = it.next().ok_or("--model needs a value")?;
                options.model = match v.as_str() {
                    "sc" => MemModel::Sc,
                    "tso" => MemModel::Tso,
                    "pso" => MemModel::Pso,
                    other => return Err(format!("unknown memory model `{other}`")),
                };
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                options.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--stickiness" => {
                let v = it.next().ok_or("--stickiness needs a value")?;
                options.stickiness = v.parse().map_err(|_| format!("bad stickiness `{v}`"))?;
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                options.budget = v.parse().map_err(|_| format!("bad budget `{v}`"))?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                options.workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
            }
            "--parallel" => options.solver = SolverFlag::Parallel,
            "--solver" => {
                let v = it.next().ok_or("--solver needs a value")?;
                options.solver = match v.as_str() {
                    "seq" => SolverFlag::Sequential,
                    "par" => SolverFlag::Parallel,
                    "auto" => SolverFlag::Auto,
                    other => return Err(format!("unknown solver `{other}` (seq|par|auto)")),
                };
            }
            "--solve-timeout" => {
                let v = it
                    .next()
                    .ok_or("--solve-timeout needs a value in seconds")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad solve timeout `{v}`"))?;
                options.solve_timeout = Some(Duration::from_secs(secs));
            }
            "--sync-order" => options.sync_order = true,
            "--trace" => {
                let v = it.next().ok_or("--trace needs a path")?;
                options.trace = Some(v.clone());
            }
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs a path")?;
                options.metrics = Some(v.clone());
            }
            "-v" | "--verbose" => options.verbose = true,
            other if !other.starts_with("--") && options.file.is_empty() => {
                options.file = other.to_owned();
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if options.file.is_empty() {
        return Err("missing program file".into());
    }
    Ok(options)
}

fn flush(observer: &Observer) {
    if let Err(e) = observer.flush() {
        eprintln!("clap-obs: failed to write sink: {e}");
    }
}

fn load(file: &str) -> Result<clap_ir::Program, String> {
    let source = std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    clap_ir::parse(&source).map_err(|e| format!("{file}: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let options = parse_options(rest)?;
    let program = load(&options.file)?;
    match command.as_str() {
        "check" => {
            println!(
                "{}: ok — {} function(s), {} global(s), {} mutex(es), {} cond(s), {} assert site(s)",
                options.file,
                program.functions.len(),
                program.globals.len(),
                program.mutexes.len(),
                program.conds.len(),
                program.asserts.len()
            );
            let sharing = clap_analysis_summary(&program);
            println!("{sharing}");
            Ok(())
        }
        "dump" => {
            print!("{}", clap_ir::pretty::program_to_string(&program));
            Ok(())
        }
        "run" => {
            let observer = options.observer();
            observer.install();
            let mut vm = Vm::new(&program, options.model);
            let mut sched = RandomScheduler::with_stickiness(options.seed, options.stickiness);
            let outcome = {
                let _s = clap_obs::span("run");
                vm.run(&mut sched, &mut NullMonitor)
            };
            let stats = vm.stats();
            clap_obs::add("run.instructions", stats.instructions);
            clap_obs::add("run.saps", stats.saps);
            flush(&observer);
            println!("outcome: {outcome:?}");
            println!(
                "stats: {} instructions, {} branches, {} SAPs, {} threads",
                stats.instructions, stats.branches, stats.saps, stats.threads
            );
            for (i, g) in program.globals.iter().enumerate() {
                if g.len.is_none() {
                    println!(
                        "  {} = {}",
                        g.name,
                        vm.read_global(clap_ir::GlobalId(i as u32), 0)
                    );
                }
            }
            Ok(())
        }
        "explore" => {
            let observer = options.observer();
            observer.install();
            let pipeline = Pipeline::new(program);
            let mut config = PipelineConfig::new(options.model);
            config.seed_budget = options.budget;
            config.explore_workers = options.workers;
            let result = pipeline.record_failure(&config);
            flush(&observer);
            match result {
                Ok(recorded) => {
                    println!(
                        "failure: seed {} (stickiness {}) violates assert {} ({:?})",
                        recorded.seed,
                        recorded.stickiness,
                        recorded.assert.0,
                        pipeline.program().asserts[recorded.assert.index()].message
                    );
                    println!(
                        "recorded: {} SAPs, path log {} bytes",
                        recorded.stats.saps,
                        recorded.log.size_bytes()
                    );
                    Ok(())
                }
                Err(clap_core::PipelineError::NoFailureFound) => {
                    println!("no failure within the budget");
                    Ok(())
                }
                Err(e) => Err(e.to_string()),
            }
        }
        "reproduce" => {
            let pipeline = Pipeline::new(program);
            let mut config = PipelineConfig::new(options.model).with_observer(options.observer());
            config.seed_budget = options.budget;
            config.explore_workers = options.workers;
            config.solver = match options.solver {
                SolverFlag::Sequential => SolverChoice::Sequential(SolverConfig {
                    timeout: options.solve_timeout,
                    ..SolverConfig::default()
                }),
                SolverFlag::Parallel => SolverChoice::Parallel(ParallelConfig {
                    timeout: options.solve_timeout,
                    ..ParallelConfig::default()
                }),
                SolverFlag::Auto => SolverChoice::Auto(AutoConfig {
                    solve_timeout: options.solve_timeout,
                    ..AutoConfig::default()
                }),
            };
            config.record_sync_order = options.sync_order;
            let report = pipeline.reproduce(&config).map_err(|e| e.to_string())?;
            println!("reproduced: {}", report.reproduced);
            println!(
                "trace: {} threads, {} instructions, {} branches, {} SAPs",
                report.threads, report.instructions, report.branches, report.saps
            );
            println!(
                "constraints: {} clauses / {} variables; path log {} bytes",
                report.constraints.total_clauses(),
                report.constraints.total_vars(),
                report.log_bytes
            );
            let p = &report.phases;
            println!(
                "times: record {:?}, decode {:?}, symex {:?}, constrain {:?}, solve {:?}, replay {:?} (total {:?})",
                p.record, p.decode, p.symex, p.constrain, p.solve, p.replay, p.total
            );
            for attempt in &report.portfolio.attempts {
                let bounds = match attempt.cs_bounds {
                    Some((lo, hi)) => format!(" cs {lo}..={hi}"),
                    None => String::new(),
                };
                println!(
                    "solver attempt: {}{bounds} -> {} in {:?}",
                    attempt.engine, attempt.outcome, attempt.wall
                );
            }
            match report.portfolio.winner {
                Some(winner) => println!("solver winner: {winner}"),
                None => println!("solver winner: none"),
            }
            println!(
                "schedule has {} preemptive switches (thread per position):",
                report.context_switches
            );
            println!("  {}", report.schedule_letters);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn clap_analysis_summary(program: &clap_ir::Program) -> String {
    // Avoid a hard dependency cycle: summarize sharing via clap-core's
    // pipeline construction.
    let pipeline = Pipeline::new(program.clone());
    let shared: Vec<&str> = program
        .globals
        .iter()
        .enumerate()
        .filter(|(i, _)| pipeline.sharing().is_shared(clap_ir::GlobalId(*i as u32)))
        .map(|(_, g)| g.name.as_str())
        .collect();
    format!("shared variables: {{{}}}", shared.join(", "))
}
