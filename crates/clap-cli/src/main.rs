//! `clap-reproduce` — the command-line front end of the CLAP reproduction.
//!
//! ```text
//! clap-reproduce check     [prog.clap] [--all-examples] [--model sc,tso,pso,c11]
//!                          [--fuzz N] [--chan-fuzz N] [--atomic-fuzz N] [--fuzz-seed S]
//!                          [--max-preemptions K]
//!                          [--max-executions N] [--strict-record]
//!                          [--shrink-out PATH] [--budget N] [--solver ...]
//! clap-reproduce dump      prog.clap                    pretty-print the lowered CFG
//! clap-reproduce run       prog.clap [--model M] [--seed N] [--stickiness S]
//! clap-reproduce explore   prog.clap [--model M] [--budget N] [--workers N] [--cutover N]
//! clap-reproduce reproduce prog.clap [--model M] [--budget N] [--workers N] [--cutover N]
//!                          [--solver seq|par|auto] [--solve-timeout SECS] [--sync-order]
//! ```
//!
//! `check` is the differential harness: each target program runs through
//! both the bounded enumeration oracle (`clap-check`) and the full
//! pipeline, per memory model, and any **hard disagreement** — an
//! unsound schedule, a false `Unsat`, or a structural pipeline failure —
//! makes the command shrink the offending program, write it to
//! `--shrink-out` (default `check-counterexample.clap`), and exit
//! non-zero. Soft notes (the randomized record phase missing a rare
//! interleaving, a solver giving up within budget) are reported but do
//! not fail the run. `--model` takes a comma-separated list for `check`;
//! the other commands take a single model.
//!
//! `M` is one of `sc` (default), `tso`, `pso`, `c11`. `--workers` sets the
//! record-phase exploration pool size (0, the default, means one worker
//! per core); any value returns the same artifact. Whether a sweep
//! actually uses the pool is decided per stickiness level by an adaptive
//! cutover (a calibration probe versus the measured pool startup cost);
//! `--cutover N` replaces that estimate with a fixed seed-budget
//! threshold (`--cutover 0` forces the pool on). `--solver auto` runs
//! the adaptive portfolio: the parallel engine escalates up a
//! preemption-bound ladder, then the sequential solver takes the rest of
//! the `--solve-timeout` budget. `--parallel` is shorthand for
//! `--solver par`.
//!
//! Every command that executes the program (`check`, `run`, `explore`,
//! `reproduce`) also accepts the observability flags: `--trace <path>`
//! writes a Chrome `trace_event` JSON timeline (loadable in Perfetto or
//! `about:tracing`), `--metrics <path>` writes the JSONL metric stream,
//! and `-v`/`--verbose` prints the collector summary to stderr.

use clap_check::{AtomicSpec, ChanSpec, DiffConfig, ProgramSpec};
use clap_core::{
    AutoConfig, ExploreCutover, Pipeline, PipelineConfig, ReproductionReport, SolverChoice,
};
use clap_obs::Observer;
use clap_parallel::ParallelConfig;
use clap_serve::{Client, ServeConfig, Server, SolverKind, SubmitRequest};
use clap_solver::SolverConfig;
use clap_vm::{MemModel, NullMonitor, RandomScheduler, Vm};
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  clap-reproduce check     [prog.clap] [--all-examples] [--examples-dir DIR]
                           [--model sc,tso,pso,c11] [--fuzz N] [--chan-fuzz N]
                           [--atomic-fuzz N] [--fuzz-seed S]
                           [--max-preemptions K] [--max-executions N]
                           [--strict-record] [--shrink-out PATH]
                           [--budget N] [--solver seq|par|auto] [--solve-timeout SECS]
  clap-reproduce dump      <prog.clap>
  clap-reproduce run       <prog.clap> [--model sc|tso|pso|c11] [--seed N] [--stickiness S]
  clap-reproduce explore   <prog.clap> [--model sc|tso|pso|c11] [--budget N] [--workers N]
                           [--cutover N]
  clap-reproduce reproduce <prog.clap> [--model sc|tso|pso|c11] [--budget N] [--workers N]
                           [--cutover N]
                           [--solver seq|par|auto] [--solve-timeout SECS] [--sync-order]
                           [--json]
  clap-reproduce serve     [--addr HOST:PORT] [--workers N] [--queue-cap N]
                           [--cache-dir DIR] [--trace PATH] [--metrics PATH] [-v]
  clap-reproduce submit    <prog.clap> [--addr HOST:PORT] [--model M] [--budget N]
                           [--solver seq|par|auto] [--sync-order] [--wait]
                           [--wait-timeout SECS] [--json]
  clap-reproduce status    <job-id> [--addr HOST:PORT]
  clap-reproduce fetch     <job-id> [--addr HOST:PORT]
  clap-reproduce shutdown  [--addr HOST:PORT]

service (serve/submit/status/fetch/shutdown):
  --addr HOST:PORT         daemon address (default 127.0.0.1:7117)
  --queue-cap N            bounded job queue; extra submissions get 503 (default 64)
  --cache-dir DIR          persist the content-addressed result cache here
  --wait                   poll the submitted job until it finishes
  --wait-timeout SECS      give up waiting after this long (default 300)
  --json                   print the raw ReproductionReport JSON

differential checking (check):
  --all-examples           check every .clap under --examples-dir (default examples)
  --model a,b,...          memory models to cross-check (default sc)
  --fuzz N                 also check N seeded random programs
  --chan-fuzz N            also check N seeded random channel/actor programs
  --atomic-fuzz N          also check N seeded random C11-atomics programs
  --fuzz-seed S            base seed for the fuzz flags (default 0; case i uses S+i)
  --max-preemptions K      oracle preemption bound (default 2)
  --max-executions N       oracle execution cap (default 200000)
  --strict-record          treat record-phase misses as hard disagreements
  --shrink-out PATH        where to write the shrunk counterexample
                           (default check-counterexample.clap)

solving (reproduce/check):
  --solver seq|par|auto    sequential DPLL(T), parallel generate-and-validate,
                           or the adaptive portfolio (ladder + fallback); default seq
  --parallel               shorthand for --solver par
  --solve-timeout SECS     overall wall-clock budget for the solve phase

observability (run/explore/reproduce):
  --trace <path>     write a Chrome trace_event JSON timeline (Perfetto-loadable)
  --metrics <path>   write the JSONL metric stream
  -v, --verbose      print the collector summary to stderr";

#[derive(Clone, Copy, PartialEq, Eq)]
enum SolverFlag {
    Sequential,
    Parallel,
    Auto,
}

struct Options {
    file: String,
    models: Vec<MemModel>,
    seed: u64,
    stickiness: f64,
    budget: u64,
    workers: usize,
    cutover: Option<u64>,
    solver: SolverFlag,
    solve_timeout: Option<Duration>,
    sync_order: bool,
    all_examples: bool,
    examples_dir: String,
    fuzz: u64,
    chan_fuzz: u64,
    atomic_fuzz: u64,
    fuzz_seed: u64,
    max_preemptions: usize,
    max_executions: u64,
    strict_record: bool,
    shrink_out: String,
    trace: Option<String>,
    metrics: Option<String>,
    verbose: bool,
    addr: String,
    queue_cap: usize,
    cache_dir: Option<String>,
    wait: bool,
    wait_timeout: Duration,
    json: bool,
}

impl Options {
    fn observer(&self) -> Observer {
        let mut observer = Observer::none();
        if let Some(path) = &self.trace {
            observer = observer.with_trace(path);
        }
        if let Some(path) = &self.metrics {
            observer = observer.with_metrics(path);
        }
        if self.verbose {
            observer = observer.with_summary();
        }
        observer
    }

    /// The single memory model for the non-differential commands.
    fn single_model(&self) -> Result<MemModel, String> {
        match self.models.as_slice() {
            [] => Ok(MemModel::Sc),
            [m] => Ok(*m),
            _ => Err("this command takes a single --model".into()),
        }
    }
}

fn parse_model(name: &str) -> Result<MemModel, String> {
    match name {
        "sc" => Ok(MemModel::Sc),
        "tso" => Ok(MemModel::Tso),
        "pso" => Ok(MemModel::Pso),
        "c11" => Ok(MemModel::C11),
        other => Err(format!("unknown memory model `{other}`")),
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut options = Options {
        file: String::new(),
        models: Vec::new(),
        seed: 0,
        stickiness: 0.7,
        budget: 20_000,
        workers: 0,
        cutover: None,
        solver: SolverFlag::Sequential,
        solve_timeout: None,
        sync_order: false,
        all_examples: false,
        examples_dir: "examples".into(),
        fuzz: 0,
        chan_fuzz: 0,
        atomic_fuzz: 0,
        fuzz_seed: 0,
        max_preemptions: 2,
        max_executions: 200_000,
        strict_record: false,
        shrink_out: "check-counterexample.clap".into(),
        trace: None,
        metrics: None,
        verbose: false,
        addr: "127.0.0.1:7117".into(),
        queue_cap: 64,
        cache_dir: None,
        wait: false,
        wait_timeout: Duration::from_secs(300),
        json: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--model" => {
                let v = it.next().ok_or("--model needs a value")?;
                options.models = v
                    .split(',')
                    .map(parse_model)
                    .collect::<Result<Vec<_>, _>>()?;
                if options.models.is_empty() {
                    return Err("--model needs at least one model".into());
                }
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                options.seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
            }
            "--stickiness" => {
                let v = it.next().ok_or("--stickiness needs a value")?;
                options.stickiness = v.parse().map_err(|_| format!("bad stickiness `{v}`"))?;
            }
            "--budget" => {
                let v = it.next().ok_or("--budget needs a value")?;
                options.budget = v.parse().map_err(|_| format!("bad budget `{v}`"))?;
            }
            "--workers" => {
                let v = it.next().ok_or("--workers needs a value")?;
                options.workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
            }
            "--cutover" => {
                let v = it.next().ok_or("--cutover needs a value")?;
                options.cutover = Some(v.parse().map_err(|_| format!("bad cutover `{v}`"))?);
            }
            "--parallel" => options.solver = SolverFlag::Parallel,
            "--solver" => {
                let v = it.next().ok_or("--solver needs a value")?;
                options.solver = match v.as_str() {
                    "seq" => SolverFlag::Sequential,
                    "par" => SolverFlag::Parallel,
                    "auto" => SolverFlag::Auto,
                    other => return Err(format!("unknown solver `{other}` (seq|par|auto)")),
                };
            }
            "--solve-timeout" => {
                let v = it
                    .next()
                    .ok_or("--solve-timeout needs a value in seconds")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad solve timeout `{v}`"))?;
                options.solve_timeout = Some(Duration::from_secs(secs));
            }
            "--sync-order" => options.sync_order = true,
            "--all-examples" => options.all_examples = true,
            "--examples-dir" => {
                let v = it.next().ok_or("--examples-dir needs a path")?;
                options.examples_dir = v.clone();
            }
            "--fuzz" => {
                let v = it.next().ok_or("--fuzz needs a case count")?;
                options.fuzz = v.parse().map_err(|_| format!("bad fuzz count `{v}`"))?;
            }
            "--chan-fuzz" => {
                let v = it.next().ok_or("--chan-fuzz needs a case count")?;
                options.chan_fuzz = v
                    .parse()
                    .map_err(|_| format!("bad chan-fuzz count `{v}`"))?;
            }
            "--atomic-fuzz" => {
                let v = it.next().ok_or("--atomic-fuzz needs a case count")?;
                options.atomic_fuzz = v
                    .parse()
                    .map_err(|_| format!("bad atomic-fuzz count `{v}`"))?;
            }
            "--fuzz-seed" => {
                let v = it.next().ok_or("--fuzz-seed needs a value")?;
                options.fuzz_seed = v.parse().map_err(|_| format!("bad fuzz seed `{v}`"))?;
            }
            "--max-preemptions" => {
                let v = it.next().ok_or("--max-preemptions needs a value")?;
                options.max_preemptions = v
                    .parse()
                    .map_err(|_| format!("bad preemption bound `{v}`"))?;
            }
            "--max-executions" => {
                let v = it.next().ok_or("--max-executions needs a value")?;
                options.max_executions =
                    v.parse().map_err(|_| format!("bad execution cap `{v}`"))?;
            }
            "--strict-record" => options.strict_record = true,
            "--shrink-out" => {
                let v = it.next().ok_or("--shrink-out needs a path")?;
                options.shrink_out = v.clone();
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a path")?;
                options.trace = Some(v.clone());
            }
            "--metrics" => {
                let v = it.next().ok_or("--metrics needs a path")?;
                options.metrics = Some(v.clone());
            }
            "--addr" => {
                let v = it.next().ok_or("--addr needs host:port")?;
                options.addr = v.clone();
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                options.queue_cap = v.parse().map_err(|_| format!("bad queue cap `{v}`"))?;
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a path")?;
                options.cache_dir = Some(v.clone());
            }
            "--wait" => options.wait = true,
            "--wait-timeout" => {
                let v = it.next().ok_or("--wait-timeout needs a value in seconds")?;
                let secs: u64 = v.parse().map_err(|_| format!("bad wait timeout `{v}`"))?;
                options.wait_timeout = Duration::from_secs(secs);
            }
            "--json" => options.json = true,
            "-v" | "--verbose" => options.verbose = true,
            other if !other.starts_with("--") && options.file.is_empty() => {
                options.file = other.to_owned();
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(options)
}

fn flush(observer: &Observer) {
    if let Err(e) = observer.flush() {
        eprintln!("clap-obs: failed to write sink: {e}");
    }
}

fn load(file: &str) -> Result<clap_ir::Program, String> {
    let source = std::fs::read_to_string(file).map_err(|e| format!("cannot read `{file}`: {e}"))?;
    clap_ir::parse(&source).map_err(|e| format!("{file}: {e}"))
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("missing command".into());
    };
    let options = parse_options(rest)?;
    match command.as_str() {
        "check" => return check(&options),
        "serve" => return serve(&options),
        "submit" => return submit(&options),
        "status" | "fetch" => return poll(command, &options),
        "shutdown" => {
            Client::new(options.addr.clone())
                .shutdown()
                .map_err(|e| e.to_string())?;
            println!("draining");
            return Ok(());
        }
        _ => {}
    }
    if options.file.is_empty() {
        return Err("missing program file".into());
    }
    let program = load(&options.file)?;
    match command.as_str() {
        "dump" => {
            print!("{}", clap_ir::pretty::program_to_string(&program));
            Ok(())
        }
        "run" => {
            let observer = options.observer();
            observer.install();
            let mut vm = Vm::new(&program, options.single_model()?);
            let mut sched = RandomScheduler::with_stickiness(options.seed, options.stickiness);
            let outcome = {
                let _s = clap_obs::span("run");
                vm.run(&mut sched, &mut NullMonitor)
            };
            let stats = vm.stats();
            clap_obs::add("run.instructions", stats.instructions);
            clap_obs::add("run.saps", stats.saps);
            flush(&observer);
            println!("outcome: {outcome:?}");
            println!(
                "stats: {} instructions, {} branches, {} SAPs, {} threads",
                stats.instructions, stats.branches, stats.saps, stats.threads
            );
            for (i, g) in program.globals.iter().enumerate() {
                if g.len.is_none() {
                    println!(
                        "  {} = {}",
                        g.name,
                        vm.read_global(clap_ir::GlobalId(i as u32), 0)
                    );
                }
            }
            Ok(())
        }
        "explore" => {
            let observer = options.observer();
            observer.install();
            let pipeline = Pipeline::new(program);
            let mut config = PipelineConfig::new(options.single_model()?);
            config.seed_budget = options.budget;
            config.explore_workers = options.workers;
            if let Some(n) = options.cutover {
                config.explore_cutover = ExploreCutover::Fixed(n);
            }
            let result = pipeline.record_failure(&config);
            flush(&observer);
            match result {
                Ok(recorded) => {
                    println!(
                        "failure: seed {} (stickiness {}) violates assert {} ({:?})",
                        recorded.seed,
                        recorded.stickiness,
                        recorded.assert.0,
                        pipeline.program().asserts[recorded.assert.index()].message
                    );
                    println!(
                        "recorded: {} SAPs, path log {} bytes",
                        recorded.stats.saps,
                        recorded.log.size_bytes()
                    );
                    Ok(())
                }
                Err(clap_core::PipelineError::NoFailureFound) => {
                    println!("no failure within the budget");
                    Ok(())
                }
                Err(e) => Err(e.to_string()),
            }
        }
        "reproduce" => {
            let pipeline = Pipeline::new(program);
            let mut config =
                PipelineConfig::new(options.single_model()?).with_observer(options.observer());
            config.seed_budget = options.budget;
            config.explore_workers = options.workers;
            if let Some(n) = options.cutover {
                config.explore_cutover = ExploreCutover::Fixed(n);
            }
            config.solver = match options.solver {
                SolverFlag::Sequential => SolverChoice::Sequential(SolverConfig {
                    timeout: options.solve_timeout,
                    ..SolverConfig::default()
                }),
                SolverFlag::Parallel => SolverChoice::Parallel(ParallelConfig {
                    timeout: options.solve_timeout,
                    ..ParallelConfig::default()
                }),
                SolverFlag::Auto => SolverChoice::Auto(AutoConfig {
                    solve_timeout: options.solve_timeout,
                    ..AutoConfig::default()
                }),
            };
            config.record_sync_order = options.sync_order;
            let report = pipeline.reproduce(&config).map_err(|e| e.to_string())?;
            if options.json {
                println!("{}", report.to_json());
                return Ok(());
            }
            println!("reproduced: {}", report.reproduced);
            println!(
                "trace: {} threads, {} instructions, {} branches, {} SAPs",
                report.threads, report.instructions, report.branches, report.saps
            );
            println!(
                "constraints: {} clauses / {} variables; path log {} bytes",
                report.constraints.total_clauses(),
                report.constraints.total_vars(),
                report.log_bytes
            );
            let p = &report.phases;
            println!(
                "times: record {:?}, decode {:?}, symex {:?}, constrain {:?}, solve {:?}, replay {:?} (total {:?})",
                p.record, p.decode, p.symex, p.constrain, p.solve, p.replay, p.total
            );
            for attempt in &report.portfolio.attempts {
                let bounds = match attempt.cs_bounds {
                    Some((lo, hi)) => format!(" cs {lo}..={hi}"),
                    None => String::new(),
                };
                println!(
                    "solver attempt: {}{bounds} -> {} in {:?}",
                    attempt.engine, attempt.outcome, attempt.wall
                );
            }
            match report.portfolio.winner {
                Some(winner) => println!("solver winner: {winner}"),
                None => println!("solver winner: none"),
            }
            println!(
                "schedule has {} preemptive switches (thread per position):",
                report.context_switches
            );
            println!("  {}", report.schedule_letters);
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// The `serve` subcommand: run the reproduction daemon until a client
/// posts `/shutdown`, then drain and flush the sinks.
fn serve(options: &Options) -> Result<(), String> {
    let observer = options.observer();
    if observer.is_active() {
        clap_obs::reset();
    }
    let server = Server::start(ServeConfig {
        addr: options.addr.clone(),
        workers: if options.workers == 0 {
            2
        } else {
            options.workers
        },
        queue_cap: options.queue_cap,
        cache_dir: options.cache_dir.clone().map(Into::into),
        observer,
    })
    .map_err(|e| e.to_string())?;
    println!("serving on {}", server.addr());
    server.join();
    println!("drained and stopped");
    Ok(())
}

fn submit_request(options: &Options) -> Result<SubmitRequest, String> {
    let source = std::fs::read_to_string(&options.file)
        .map_err(|e| format!("cannot read `{}`: {e}", options.file))?;
    let mut request = SubmitRequest::new(source);
    request.model = options.single_model()?;
    request.solver = match options.solver {
        SolverFlag::Sequential => SolverKind::Sequential,
        SolverFlag::Parallel => SolverKind::Parallel,
        SolverFlag::Auto => SolverKind::Auto,
    };
    request.seed_budget = Some(options.budget);
    request.sync_order = options.sync_order;
    Ok(request)
}

/// The `submit` subcommand: post a program to the daemon; with `--wait`,
/// poll until it finishes and print the schedule (or, with `--json`, the
/// raw report document). Every submission mints a trace id, sent in the
/// `X-Clap-Trace` header: the server stamps it into the job's per-job
/// sinks, and with `--trace`/`--metrics` the client writes its own
/// submit/wait/fetch spans under the same id, so one id stitches the
/// whole request path.
fn submit(options: &Options) -> Result<(), String> {
    if options.file.is_empty() {
        return Err("missing program file".into());
    }
    let request = submit_request(options)?;
    let trace_id = clap_serve::mint_trace_id();
    let client = Client::new(options.addr.clone()).with_trace_id(trace_id.clone());
    let observer = options.observer().with_trace_id(trace_id.clone());
    observer.install();
    // With --json, stdout carries only the report document; the job
    // lifecycle lines go to stderr so the output stays pipeable.
    let status_line = |line: String| {
        if options.json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };
    let result = (|| {
        let mut info = {
            let _s = clap_obs::span("client.submit");
            client.submit(&request).map_err(|e| e.to_string())?
        };
        status_line(format!("job: {}", info.job));
        status_line(format!("trace: {trace_id}"));
        if options.wait {
            let _s = clap_obs::span("client.wait");
            info = client
                .wait(info.job, options.wait_timeout)
                .map_err(|e| e.to_string())?;
        }
        status_line(format!("state: {}", info.state));
        status_line(format!("cached: {}", info.cached));
        match info.state {
            clap_serve::JobState::Done => {
                let report_json = {
                    let _s = clap_obs::span("client.fetch");
                    client.fetch(info.job).map_err(|e| e.to_string())?
                };
                if options.json {
                    println!("{report_json}");
                } else {
                    let report = ReproductionReport::from_json(&report_json)?;
                    println!("reproduced: {}", report.reproduced);
                    println!("schedule: {}", report.schedule_letters);
                }
                Ok(())
            }
            clap_serve::JobState::Failed => Err(format!(
                "job {} failed: {}",
                info.job,
                info.error.as_deref().unwrap_or("unknown error")
            )),
            _ => Ok(()),
        }
    })();
    flush(&observer);
    result
}

/// The `status`/`fetch` subcommands: look up one job by id.
fn poll(command: &str, options: &Options) -> Result<(), String> {
    let job: u64 = options
        .file
        .parse()
        .map_err(|_| format!("`{command}` needs a numeric job id"))?;
    let client = Client::new(options.addr.clone());
    match command {
        "status" => {
            let info = client.status(job).map_err(|e| e.to_string())?;
            println!("job: {}", info.job);
            println!("state: {}", info.state);
            println!("cached: {}", info.cached);
            if let Some(error) = &info.error {
                println!("error: {error}");
            }
        }
        _ => {
            let report_json = client.fetch(job).map_err(|e| e.to_string())?;
            if options.json {
                println!("{report_json}");
            } else {
                let report = ReproductionReport::from_json(&report_json)?;
                println!("reproduced: {}", report.reproduced);
                println!("schedule: {}", report.schedule_letters);
            }
        }
    }
    Ok(())
}

/// The differential `check` subcommand: every target program (explicit
/// file, the examples directory, seeded fuzz cases) is run through both
/// the bounded oracle and the full pipeline under every requested memory
/// model. Hard disagreements shrink the offending program, write it to
/// `--shrink-out`, and fail the command.
fn check(options: &Options) -> Result<(), String> {
    let observer = options.observer();
    observer.install();
    let mut config = DiffConfig::default()
        .with_models(if options.models.is_empty() {
            vec![MemModel::Sc]
        } else {
            options.models.clone()
        })
        .with_max_executions(options.max_executions);
    config.max_preemptions = options.max_preemptions;
    config.seed_budget = options.budget;
    config.strict_record = options.strict_record;
    config.solver = match options.solver {
        SolverFlag::Sequential => SolverChoice::Sequential(SolverConfig {
            timeout: options.solve_timeout,
            ..SolverConfig::default()
        }),
        SolverFlag::Parallel => SolverChoice::Parallel(ParallelConfig {
            timeout: options.solve_timeout,
            ..ParallelConfig::default()
        }),
        SolverFlag::Auto => SolverChoice::Auto(AutoConfig {
            solve_timeout: options.solve_timeout,
            ..AutoConfig::default()
        }),
    };

    // Collect targets: (name, source).
    let mut targets: Vec<(String, String)> = Vec::new();
    if !options.file.is_empty() {
        let source = std::fs::read_to_string(&options.file)
            .map_err(|e| format!("cannot read `{}`: {e}", options.file))?;
        targets.push((options.file.clone(), source));
    }
    if options.all_examples {
        let dir = &options.examples_dir;
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| format!("cannot read examples dir `{dir}`: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "clap"))
            .collect();
        paths.sort();
        for path in paths {
            let name = path.display().to_string();
            let source =
                std::fs::read_to_string(&path).map_err(|e| format!("cannot read `{name}`: {e}"))?;
            targets.push((name, source));
        }
    }
    for i in 0..options.fuzz {
        let seed = options.fuzz_seed.wrapping_add(i);
        let source = ProgramSpec::from_seed(seed).source();
        targets.push((format!("fuzz:{seed}"), source));
    }
    for i in 0..options.chan_fuzz {
        let seed = options.fuzz_seed.wrapping_add(i);
        let source = ChanSpec::from_seed(seed).source();
        targets.push((format!("chan-fuzz:{seed}"), source));
    }
    for i in 0..options.atomic_fuzz {
        let seed = options.fuzz_seed.wrapping_add(i);
        let source = AtomicSpec::from_seed(seed).source();
        targets.push((format!("atomic-fuzz:{seed}"), source));
    }
    if targets.is_empty() {
        return Err(
            "check: nothing to check (give a file, --all-examples, --fuzz N, \
             --chan-fuzz N, or --atomic-fuzz N)"
                .into(),
        );
    }

    let mut hard: Option<(String, String)> = None;
    let mut checked = 0usize;
    for (name, source) in &targets {
        let report =
            clap_check::diff_source(source, &config).map_err(|e| format!("{name}: {e}"))?;
        checked += 1;
        let ok = report.ok();
        let is_fuzz_target = name.starts_with("fuzz:")
            || name.starts_with("chan-fuzz:")
            || name.starts_with("atomic-fuzz:");
        if ok && is_fuzz_target && !options.verbose {
            continue; // keep fuzz output to failures only
        }
        println!("{name}:");
        for line in report.summary().lines() {
            println!("  {line}");
        }
        if !ok && hard.is_none() {
            hard = Some((name.clone(), source.clone()));
        }
    }
    flush(&observer);
    let Some((name, source)) = hard else {
        println!(
            "check: {checked} program(s) x {} model(s): no hard disagreements",
            config.models.len()
        );
        return Ok(());
    };

    // Shrink the first hard disagreement before failing, so the artifact
    // a CI run uploads is already minimal.
    eprintln!("check: hard disagreement in {name}; shrinking...");
    let shrink_config = config.clone();
    let shrunk = clap_check::shrink_source(source.as_str(), |candidate| {
        clap_check::diff_source(candidate, &shrink_config)
            .map(|r| !r.ok())
            .unwrap_or(false)
    })
    .unwrap_or_else(|| source.clone());
    std::fs::write(&options.shrink_out, &shrunk)
        .map_err(|e| format!("cannot write `{}`: {e}", options.shrink_out))?;
    eprintln!(
        "check: shrunk counterexample ({} bytes) written to {}",
        shrunk.len(),
        options.shrink_out
    );
    Err(format!("check: hard disagreement in {name}"))
}
