//! Deterministic bug replay: drives the VM so that the shared access
//! points execute in exactly the order of a computed
//! [`clap_constraints::Schedule`], reproducing the recorded failure.
//!
//! This is the reproduction's Tinertia-style application-level scheduler
//! (§5): before each SAP the executing thread checks whether it holds the
//! next position in the schedule and is otherwise *postponed*. Concretely
//! the [`ReplayScheduler`]:
//!
//! * lets threads execute **invisible** steps (pure computation,
//!   non-shared accesses, calls, passing asserts) freely — they commute;
//! * holds a **failing** assert that is not the expected one: such an
//!   assert lies beyond the recorded trace's horizon (the recorded run's
//!   failure stopped that thread first), so its operands are unpinned by
//!   the path constraints and letting it fire would end the run with the
//!   wrong failure;
//! * lets TSO/PSO threads **buffer** stores freely (buffering is
//!   invisible; the store's schedule position is its *drain*);
//! * releases a visible SAP (shared load, SC store, lock/unlock, fork,
//!   join, wait, signal) only when it is the globally next SAP;
//! * releases a buffered store's **drain** only at its position;
//! * holds a thread's final `return` (which flushes its buffer) until all
//!   of the thread's scheduled drains have happened.
//!
//! Threads are matched between the recorded trace and the replay run by
//! their canonical [`Lineage`].

use clap_constraints::Schedule;
use clap_ir::{AssertId, Program};
use clap_symex::{SapKind, SymTrace, ThreadIdx};
use clap_vm::{
    Action, Backend, CompiledProgram, Lineage, Monitor, NullMonitor, Outcome, Scheduler,
    SharedSpec, StepPreview, ThreadId, Vm,
};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// What a replay run produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayReport {
    /// The VM outcome of the replay run.
    pub outcome: Outcome,
    /// `true` when the expected assert fired (the bug was reproduced).
    pub reproduced: bool,
    /// Scheduler steps consumed.
    pub steps: u64,
    /// Schedule positions consumed before the failure fired.
    pub positions_consumed: usize,
}

/// Replay errors (a valid schedule never produces one).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The scheduler could make no progress toward the next position.
    Stuck {
        /// The schedule position that could not be released.
        position: usize,
    },
    /// The run ended in an unexpected way (deadlock, fault, completion
    /// without failure).
    Diverged {
        /// The outcome observed.
        outcome: Outcome,
    },
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Stuck { position } => {
                write!(f, "replay stuck before schedule position {position}")
            }
            ReplayError::Diverged { outcome } => {
                write!(f, "replay diverged with outcome {outcome:?}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

/// The schedule-enforcing scheduler.
pub struct ReplayScheduler<'t> {
    /// Per schedule position: (thread, per-thread SAP index, is-write).
    gates: Vec<(ThreadIdx, u64, bool)>,
    /// lineage → trace thread index.
    lineage_to_idx: HashMap<Lineage, ThreadIdx>,
    /// The assert the replay must reach; any *other* failing assert is
    /// beyond the recorded trace's horizon and must be held.
    expected_assert: AssertId,
    pos: usize,
    stuck_rounds: u32,
    /// Keeps the borrow honest: gates reference the trace's numbering.
    _trace: std::marker::PhantomData<&'t SymTrace>,
}

impl<'t> ReplayScheduler<'t> {
    /// Builds the scheduler for a schedule over `trace`, aiming for
    /// `expected_assert`.
    pub fn new(trace: &'t SymTrace, schedule: &Schedule, expected_assert: AssertId) -> Self {
        let gates: Vec<(ThreadIdx, u64, bool)> = schedule
            .order
            .iter()
            .map(|&s| {
                let sap = trace.sap(s);
                (
                    sap.thread,
                    sap.po,
                    matches!(sap.kind, SapKind::Write { .. }),
                )
            })
            .collect();
        ReplayScheduler {
            gates,
            expected_assert,
            lineage_to_idx: trace
                .lineages
                .iter()
                .enumerate()
                .map(|(i, l)| (l.clone(), ThreadIdx(i as u32)))
                .collect(),
            pos: 0,
            stuck_rounds: 0,
            _trace: std::marker::PhantomData,
        }
    }

    /// The number of schedule positions already released.
    pub fn positions_consumed(&self) -> usize {
        self.pos
    }

    /// `true` if the scheduler ever failed to find a step (diagnostic).
    pub fn is_stuck(&self) -> bool {
        self.stuck_rounds > 0
    }

    fn thread_idx(&self, vm: &Vm<'_>, t: ThreadId) -> Option<ThreadIdx> {
        self.lineage_to_idx.get(&vm.thread(t).lineage).copied()
    }
}

impl Scheduler for ReplayScheduler<'_> {
    fn pick(&mut self, vm: &Vm<'_>, actions: &[Action]) -> usize {
        let gate = self.gates.get(self.pos).copied();
        let mut fallback: Option<usize> = None;
        // An action that provably changes nothing (a step that would
        // block): the safe thing to return when the schedule is stuck.
        let mut blocked: Option<usize> = None;
        for (i, action) in actions.iter().enumerate() {
            match *action {
                Action::Step(t) => {
                    let Some(idx) = self.thread_idx(vm, t) else {
                        continue;
                    };
                    match vm.preview_step(t) {
                        StepPreview::Invisible => {
                            // Freely allowed; remember one as fallback.
                            fallback.get_or_insert(i);
                        }
                        StepPreview::AssertStep => {
                            // Passing asserts commute like any invisible
                            // step. A *failing* assert ends the run, and
                            // only the expected one may do that: a
                            // different failing assert was never executed
                            // in the recorded run (the failure stopped it
                            // first), so its operands are unpinned by the
                            // path constraints and the solver may have
                            // assigned values that flip it. Hold the
                            // thread instead of letting the wrong assert
                            // fire.
                            match vm.assert_preview(t) {
                                Some((id, false)) if id != self.expected_assert => {}
                                _ => {
                                    fallback.get_or_insert(i);
                                }
                            }
                        }
                        StepPreview::BufferedStore { .. } => {
                            // Buffering is invisible under TSO/PSO.
                            fallback.get_or_insert(i);
                        }
                        StepPreview::ThreadExit => {
                            // Hold the exit until the thread's scheduled
                            // drains are done (exit flushes the buffer).
                            if vm.buffered_store_count(t) == 0 {
                                fallback.get_or_insert(i);
                            }
                        }
                        StepPreview::Sap { po_index, .. } => {
                            // A gate is identified by (thread, po): under
                            // SC, write SAPs execute as steps; under
                            // TSO/PSO they appear as drains instead and
                            // never preview as `Sap`.
                            if let Some((gt, gpo, _)) = gate {
                                if gt == idx && gpo == po_index {
                                    self.pos += 1;
                                    return i;
                                }
                            }
                            // Not this SAP's turn: executing it would
                            // break determinism, so it is never a
                            // fallback.
                        }
                        StepPreview::WouldBlock => {
                            // Truly a no-op step: safe to burn when stuck.
                            blocked.get_or_insert(i);
                        }
                    }
                }
                Action::Drain(t, addr) => {
                    let Some(idx) = self.thread_idx(vm, t) else {
                        continue;
                    };
                    if let (Some((gt, gpo, _)), Some(po)) = (gate, vm.drain_preview(t, addr)) {
                        if gt == idx && gpo == po {
                            self.pos += 1;
                            return i;
                        }
                    }
                }
            }
        }
        if let Some(i) = fallback {
            return i;
        }
        // No invisible progress and no gate enabled: the schedule cannot
        // be followed. Latch the diagnosis and return a *blocked* step
        // (which changes nothing) when one exists, so the run terminates
        // via the step limit rather than executing an ungated SAP and
        // silently corrupting determinism.
        self.stuck_rounds += 1;
        blocked.unwrap_or(0)
    }
}

/// Replays `schedule` on a fresh VM under the given memory model and
/// checks that `expected_assert` fires.
///
/// # Errors
///
/// Returns [`ReplayError::Stuck`] when the schedule cannot be enforced and
/// [`ReplayError::Diverged`] when the run ends without the expected
/// failure.
pub fn replay(
    program: &Program,
    model: clap_vm::MemModel,
    shared: SharedSpec,
    trace: &SymTrace,
    schedule: &Schedule,
    expected_assert: AssertId,
) -> Result<ReplayReport, ReplayError> {
    replay_under(
        program,
        model,
        shared,
        trace,
        schedule,
        expected_assert,
        &mut NullMonitor,
    )
}

/// Full-control replay: explicit memory model and monitor.
///
/// # Errors
///
/// Returns [`ReplayError::Stuck`] when the schedule cannot be enforced and
/// [`ReplayError::Diverged`] when the run ends without the expected
/// failure.
pub fn replay_under(
    program: &Program,
    model: clap_vm::MemModel,
    shared: SharedSpec,
    trace: &SymTrace,
    schedule: &Schedule,
    expected_assert: AssertId,
    monitor: &mut dyn Monitor,
) -> Result<ReplayReport, ReplayError> {
    let vm = Vm::with_shared(program, model, shared);
    replay_on(vm, trace, schedule, expected_assert, monitor)
}

/// [`replay_under`] on pre-compiled bytecode: callers that already hold a
/// program's [`CompiledProgram`] (the pipeline compiles once at
/// construction) skip the per-replay lowering pass.
///
/// # Errors
///
/// Returns [`ReplayError::Stuck`] when the schedule cannot be enforced and
/// [`ReplayError::Diverged`] when the run ends without the expected
/// failure.
#[allow(clippy::too_many_arguments)]
pub fn replay_compiled(
    program: &Program,
    compiled: Arc<CompiledProgram>,
    model: clap_vm::MemModel,
    shared: SharedSpec,
    trace: &SymTrace,
    schedule: &Schedule,
    expected_assert: AssertId,
    monitor: &mut dyn Monitor,
) -> Result<ReplayReport, ReplayError> {
    let vm = Vm::with_compiled(program, compiled, model, shared, Backend::Bytecode);
    replay_on(vm, trace, schedule, expected_assert, monitor)
}

fn replay_on(
    mut vm: Vm<'_>,
    trace: &SymTrace,
    schedule: &Schedule,
    expected_assert: AssertId,
    monitor: &mut dyn Monitor,
) -> Result<ReplayReport, ReplayError> {
    // A generous fuse: replay performs O(instructions) steps; a stuck
    // scheduler burns steps on a blocked action until this fires.
    vm.set_step_limit(50_000_000);
    let mut sched = ReplayScheduler::new(trace, schedule, expected_assert);
    let outcome = vm.run(&mut sched, monitor);
    let steps = vm.stats().steps;
    let positions_consumed = sched.positions_consumed();
    clap_obs::add("replay.steps", steps);
    clap_obs::add("replay.scheduled_positions", positions_consumed as u64);
    if sched.is_stuck() {
        // The scheduler could not follow the schedule at some point; even
        // if an assert fired afterwards, the run was not the computed one.
        return Err(ReplayError::Stuck {
            position: positions_consumed,
        });
    }
    match &outcome {
        Outcome::AssertFailed { assert, .. } if *assert == expected_assert => Ok(ReplayReport {
            outcome,
            reproduced: true,
            steps,
            positions_consumed,
        }),
        _ => Err(ReplayError::Diverged { outcome }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clap_analysis::analyze;
    use clap_constraints::ConstraintSystem;
    use clap_ir::parse;
    use clap_profile::{decode_log, BlTables, PathRecorder};
    use clap_symex::{execute, FailureContext};
    use clap_vm::{MemModel, RandomScheduler};

    fn pipeline(src: &str, model: MemModel, max_seed: u64) -> ReplayReport {
        let program = parse(src).unwrap();
        let sharing = analyze(&program);
        let tables = BlTables::build(&program);
        let mut vm = Vm::with_shared(&program, model, sharing.shared_spec());
        for seed in 0..max_seed {
            vm.reset();
            let mut rec = PathRecorder::new(&tables);
            let outcome = vm.run(&mut RandomScheduler::new(seed), &mut rec);
            if let Outcome::AssertFailed { assert, .. } = outcome {
                let failure = FailureContext::from_vm(&vm);
                let paths = decode_log(&program, &tables, &rec.finish()).unwrap();
                let trace = execute(&program, &sharing.shared_spec(), &paths, &failure).unwrap();
                let sys = ConstraintSystem::build(&program, &trace, model);
                let solved =
                    clap_solver::solve(&program, &sys, clap_solver::SolverConfig::default());
                let solution = solved.solution().expect("solvable");
                return replay_under(
                    &program,
                    model,
                    sharing.shared_spec(),
                    &trace,
                    &solution.schedule,
                    assert,
                    &mut NullMonitor,
                )
                .expect("replay succeeds");
            }
        }
        panic!("no failing seed in 0..{max_seed}");
    }

    #[test]
    fn replays_lost_update_deterministically() {
        let report = pipeline(
            "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }",
            MemModel::Sc,
            500,
        );
        assert!(report.reproduced);
    }

    #[test]
    fn replays_locked_critical_sections() {
        let report = pipeline(
            "global int x = 0; mutex m;
             fn w() { lock(m); let v: int = x; unlock(m); yield; lock(m); x = v + 1; unlock(m); }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }",
            MemModel::Sc,
            2000,
        );
        assert!(report.reproduced);
    }

    #[test]
    fn replays_condvar_ordering() {
        let report = pipeline(
            "global int ready = 0; global int got = 0; mutex m; cond c;
             fn consumer() {
                 lock(m);
                 while (ready == 0) { wait(c, m); }
                 got = got + 1;
                 unlock(m);
             }
             fn main() {
                 let t: thread = fork consumer();
                 lock(m); ready = 1; signal(c); unlock(m);
                 join t;
                 let g: int = got;
                 assert(g == 0, \"consumer ran\");
             }",
            MemModel::Sc,
            500,
        );
        assert!(report.reproduced);
    }

    #[test]
    fn replays_tso_store_buffering() {
        let report = pipeline(
            "global int x = 0; global int y = 0;
             global int r1 = -1; global int r2 = -1;
             fn t1() { x = 1; r1 = y; }
             fn t2() { y = 1; r2 = x; }
             fn main() {
                 let a: thread = fork t1(); let b: thread = fork t2();
                 join a; join b;
                 assert(r1 + r2 > 0, \"SB\");
             }",
            MemModel::Tso,
            500,
        );
        assert!(report.reproduced);
    }

    #[test]
    fn replays_pso_write_reordering() {
        let report = pipeline(
            "global int data = 0; global int flag = 0; global int seen = -1;
             fn writer() { data = 1; flag = 1; }
             fn reader() { let f: int = flag; if (f == 1) { seen = data; } }
             fn main() {
                 let w: thread = fork writer(); let r: thread = fork reader();
                 join w; join r;
                 assert(seen != 0, \"MP\");
             }",
            MemModel::Pso,
            6000,
        );
        assert!(report.reproduced);
    }

    #[test]
    fn replays_c11_relaxed_publish() {
        // Message-passing with a relaxed flag publish: the two pending
        // atomic stores drain independently under C11, so the reader can
        // see the flag before the data. The whole pipeline — record,
        // symbolic execution over atomic SAPs, the C11 happens-before
        // encoding, solve, schedule-driven replay — must reproduce it.
        let report = pipeline(
            "atomic int data = 0; atomic int flag = 0; global int seen = -1;
             fn writer() { store(data, 1, relaxed); store(flag, 1, relaxed); }
             fn reader() {
                 let f: int = load(flag, acquire);
                 if (f == 1) { let d: int = load(data, acquire); seen = d; }
             }
             fn main() {
                 let w: thread = fork writer(); let r: thread = fork reader();
                 join w; join r;
                 assert(seen != 0, \"MP relaxation\");
             }",
            MemModel::C11,
            6000,
        );
        assert!(report.reproduced);
    }

    #[test]
    fn replays_c11_fetch_add_interleaving() {
        // Two relaxed fetch_adds against a plain snapshot read: the
        // failing interleaving (reader between the increments) must be
        // recomputed and replayed — RMW atomicity shows up as the RMW's
        // read being pinned to its modification-order predecessor.
        let report = pipeline(
            "atomic int n = 0; global int snap = -1;
             fn adder() { let o: int = fetch_add(n, 1, relaxed); }
             fn watcher() { let v: int = load(n, acquire); snap = v; }
             fn main() {
                 let a: thread = fork adder(); let b: thread = fork adder();
                 let c: thread = fork watcher();
                 join a; join b; join c;
                 assert(snap != 1, \"watcher saw the midpoint\");
             }",
            MemModel::C11,
            2000,
        );
        assert!(report.reproduced);
    }

    #[test]
    fn replay_is_repeatable() {
        // Replaying the same schedule twice gives the same reads-from and
        // the same failure.
        let src = "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }";
        let a = pipeline(src, MemModel::Sc, 500);
        let b = pipeline(src, MemModel::Sc, 500);
        assert_eq!(a.positions_consumed, b.positions_consumed);
        assert!(a.reproduced && b.reproduced);
    }

    #[test]
    fn wrong_schedule_diverges_not_panics() {
        // Build a valid trace, then replay a *reversed-workers* schedule
        // that cannot manifest the bug… construct by validating a serial
        // schedule (workers not interleaved) — replay must report
        // divergence rather than reproduce.
        let src = "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }";
        let program = parse(src).unwrap();
        let sharing = analyze(&program);
        let tables = BlTables::build(&program);
        for seed in 0..500 {
            let mut vm = Vm::with_shared(&program, MemModel::Sc, sharing.shared_spec());
            let mut rec = PathRecorder::new(&tables);
            let outcome = vm.run(&mut RandomScheduler::new(seed), &mut rec);
            if let Outcome::AssertFailed { assert, .. } = outcome {
                let failure = FailureContext::from_vm(&vm);
                let paths = decode_log(&program, &tables, &rec.finish()).unwrap();
                let trace = execute(&program, &sharing.shared_spec(), &paths, &failure).unwrap();
                // Serial schedule: main prefix, all of T1, all of T2,
                // main suffix — in per-thread po order.
                let mut order = Vec::new();
                let main_saps = &trace.per_thread[0];
                order.extend_from_slice(&main_saps[..2]); // fork, fork
                order.extend_from_slice(&trace.per_thread[1]);
                order.extend_from_slice(&trace.per_thread[2]);
                order.extend_from_slice(&main_saps[2..]);
                let schedule = Schedule::new(order, &trace);
                let err = replay_under(
                    &program,
                    MemModel::Sc,
                    sharing.shared_spec(),
                    &trace,
                    &schedule,
                    assert,
                    &mut NullMonitor,
                )
                .unwrap_err();
                assert!(matches!(err, ReplayError::Diverged { .. }), "{err}");
                return;
            }
        }
        panic!("no failing seed");
    }
}
