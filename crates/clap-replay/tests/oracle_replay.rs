//! Oracle-vs-replayer differential suite: every failing schedule the
//! bounded enumeration oracle finds must replay through the *production*
//! replayer and fire the assert.
//!
//! This closes the loop from the other side of `clap-check::diff`: the
//! diff harness checks pipeline-produced schedules against the oracle,
//! while this suite feeds oracle-produced schedules into the pipeline's
//! replayer. Silent replayer drift — a gating rule that diverges from VM
//! semantics, a drain misplaced relative to its fence — shows up here as
//! a schedule the oracle proved failing that the replayer can no longer
//! drive to the bug.
//!
//! Plumbing per failing execution: re-run the oracle's decision script
//! under a `ScriptScheduler` with the path recorder attached, decode and
//! symbolically re-execute that log into a `SymTrace`, convert the
//! script's visible-event order into a `Schedule` over the trace's SAP
//! ids, and hand it to `replay_under`.

use clap_analysis::analyze;
use clap_check::{enumerate_with_shared, schedule_of_choices, OracleConfig};
use clap_constraints::Schedule;
use clap_ir::Program;
use clap_profile::{decode_log, BlTables, PathRecorder};
use clap_replay::replay_under;
use clap_symex::{execute, FailureContext, SymTrace};
use clap_vm::{Lineage, MemModel, NullMonitor, Outcome, ScriptScheduler, Vm};

/// Maps the oracle's `(lineage, per-thread SAP index)` visibility order
/// onto the trace's `SapId` space.
fn schedule_from_pairs(trace: &SymTrace, pairs: &[(Lineage, u64)]) -> Schedule {
    let order = pairs
        .iter()
        .map(|(lineage, po)| {
            let idx = trace
                .lineages
                .iter()
                .position(|l| l == lineage)
                .unwrap_or_else(|| panic!("lineage {lineage:?} not in trace"));
            trace.per_thread[idx][*po as usize]
        })
        .collect();
    Schedule::new(order, trace)
}

/// Replays every oracle-enumerated failing execution of `src` under
/// `model` (up to `cap` schedules) and asserts each one reproduces.
/// Returns how many schedules were exercised.
fn replay_oracle_failures(src: &str, model: MemModel, cap: usize) -> usize {
    let program: Program = clap_ir::parse(src).expect("test program parses");
    let sharing = analyze(&program);
    let shared = sharing.shared_spec();
    let tables = BlTables::build(&program);
    let report = enumerate_with_shared(&program, shared.clone(), &OracleConfig::new(model));
    assert!(
        report.complete_within_bound(),
        "oracle truncated on a corpus-sized program"
    );
    for failing in report.failing.iter().take(cap) {
        // Re-execute the decision script with the recorder attached.
        let mut vm = Vm::with_shared(&program, model, shared.clone());
        let mut sched = ScriptScheduler::new(failing.choices.clone());
        let mut rec = PathRecorder::new(&tables);
        let outcome = vm.run(&mut sched, &mut rec);
        assert!(!sched.overran(), "script fits: {}", failing.letters);
        let Outcome::AssertFailed { assert, .. } = outcome else {
            panic!(
                "script must re-fail, got {outcome:?} for {}",
                failing.letters
            );
        };
        assert_eq!(assert, failing.assert);

        // Decode + symbolically re-execute into a trace, then build the
        // schedule from the oracle's visibility order.
        let failure = FailureContext::from_vm(&vm);
        let paths = decode_log(&program, &tables, &rec.finish()).expect("log decodes");
        let trace = execute(&program, &shared, &paths, &failure).expect("symex accepts");
        let (pairs, replay_outcome) =
            schedule_of_choices(&program, model, shared.clone(), &failing.choices);
        assert!(
            matches!(replay_outcome, Some(Outcome::AssertFailed { .. })),
            "schedule_of_choices re-execution diverged for {}",
            failing.letters
        );
        let schedule = schedule_from_pairs(&trace, &pairs);

        // The production replayer must drive this schedule to the bug.
        let report = replay_under(
            &program,
            model,
            shared.clone(),
            &trace,
            &schedule,
            assert,
            &mut NullMonitor,
        )
        .unwrap_or_else(|e| panic!("replay failed for {}: {e:?}", failing.letters));
        assert!(
            report.reproduced,
            "assert must fire for {}",
            failing.letters
        );
    }
    report.failing.len().min(cap)
}

const LOST_UPDATE: &str = "global int x = 0;
     fn w() { let v: int = x; yield; x = v + 1; }
     fn main() { let a: thread = fork w(); let b: thread = fork w();
                 join a; join b; assert(x == 2, \"lost\"); }";

const SB: &str = "global int x = 0; global int y = 0;
     global int r1 = -1; global int r2 = -1;
     fn t1() { x = 1; r1 = y; }
     fn t2() { y = 1; r2 = x; }
     fn main() {
         let a: thread = fork t1(); let b: thread = fork t2();
         join a; join b;
         assert(r1 + r2 > 0, \"SB\");
     }";

const MP: &str = "global int data = 0; global int flag = 0; global int seen = -1;
     fn writer() { data = 1; flag = 1; }
     fn reader() { let f: int = flag; if (f == 1) { seen = data; } }
     fn main() {
         let w: thread = fork writer(); let r: thread = fork reader();
         join w; join r;
         assert(seen != 0, \"MP\");
     }";

const HANDOFF: &str = "global int ready = 0; global int x = 0; mutex m; cond c;
     fn worker() {
         lock(m);
         while (ready == 0) { wait(c, m); }
         unlock(m);
         let v: int = x; yield; x = v + 1;
     }
     fn main() {
         let a: thread = fork worker(); let b: thread = fork worker();
         lock(m); ready = 1; broadcast(c); unlock(m);
         join a; join b;
         assert(x == 2, \"handoff race\");
     }";

#[test]
fn every_sc_lost_update_schedule_replays() {
    let n = replay_oracle_failures(LOST_UPDATE, MemModel::Sc, usize::MAX);
    assert!(n >= 5, "expected a rich failing set, got {n}");
}

#[test]
fn tso_store_buffering_schedules_replay() {
    let n = replay_oracle_failures(SB, MemModel::Tso, 12);
    assert!(n > 0, "TSO SB failures must exist");
}

#[test]
fn pso_message_passing_schedules_replay() {
    let n = replay_oracle_failures(MP, MemModel::Pso, 12);
    assert!(n > 0, "PSO MP failures must exist");
}

#[test]
fn condvar_handoff_schedules_replay() {
    let n = replay_oracle_failures(HANDOFF, MemModel::Sc, 8);
    assert!(n > 0, "handoff race failures must exist");
}
