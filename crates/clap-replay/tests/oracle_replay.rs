//! Oracle-vs-replayer differential suite: every failing schedule the
//! bounded enumeration oracle finds must replay through the *production*
//! replayer and fire the assert.
//!
//! This closes the loop from the other side of `clap-check::diff`: the
//! diff harness checks pipeline-produced schedules against the oracle,
//! while this suite feeds oracle-produced schedules into the pipeline's
//! replayer. Silent replayer drift — a gating rule that diverges from VM
//! semantics, a drain misplaced relative to its fence — shows up here as
//! a schedule the oracle proved failing that the replayer can no longer
//! drive to the bug.
//!
//! Plumbing per failing execution: re-run the oracle's decision script
//! under a `ScriptScheduler` with the path recorder attached, decode and
//! symbolically re-execute that log into a `SymTrace`, convert the
//! script's visible-event order into a `Schedule` over the trace's SAP
//! ids, and hand it to `replay_under`.

use clap_analysis::analyze;
use clap_check::{enumerate_with_shared, schedule_of_choices, OracleConfig};
use clap_constraints::Schedule;
use clap_ir::Program;
use clap_profile::{decode_log, BlTables, PathRecorder};
use clap_replay::replay_under;
use clap_symex::{execute, FailureContext, SymTrace};
use clap_vm::{Lineage, MemModel, NullMonitor, Outcome, ScriptScheduler, Vm};

/// Maps the oracle's `(lineage, per-thread SAP index)` visibility order
/// onto the trace's `SapId` space.
fn schedule_from_pairs(trace: &SymTrace, pairs: &[(Lineage, u64)]) -> Schedule {
    let order = pairs
        .iter()
        .map(|(lineage, po)| {
            let idx = trace
                .lineages
                .iter()
                .position(|l| l == lineage)
                .unwrap_or_else(|| panic!("lineage {lineage:?} not in trace"));
            trace.per_thread[idx][*po as usize]
        })
        .collect();
    Schedule::new(order, trace)
}

/// Replays every oracle-enumerated failing execution of `src` under
/// `model` (up to `cap` schedules) and asserts each one reproduces.
/// Returns how many schedules were exercised.
fn replay_oracle_failures(src: &str, model: MemModel, cap: usize) -> usize {
    let program: Program = clap_ir::parse(src).expect("test program parses");
    let sharing = analyze(&program);
    let shared = sharing.shared_spec();
    let tables = BlTables::build(&program);
    let report = enumerate_with_shared(&program, shared.clone(), &OracleConfig::new(model));
    assert!(
        report.complete_within_bound(),
        "oracle truncated on a corpus-sized program"
    );
    for failing in report.failing.iter().take(cap) {
        // Re-execute the decision script with the recorder attached.
        let mut vm = Vm::with_shared(&program, model, shared.clone());
        let mut sched = ScriptScheduler::new(failing.choices.clone());
        let mut rec = PathRecorder::new(&tables);
        let outcome = vm.run(&mut sched, &mut rec);
        assert!(!sched.overran(), "script fits: {}", failing.letters);
        let Outcome::AssertFailed { assert, .. } = outcome else {
            panic!(
                "script must re-fail, got {outcome:?} for {}",
                failing.letters
            );
        };
        assert_eq!(assert, failing.assert);

        // Decode + symbolically re-execute into a trace, then build the
        // schedule from the oracle's visibility order.
        let failure = FailureContext::from_vm(&vm);
        let paths = decode_log(&program, &tables, &rec.finish()).expect("log decodes");
        let trace = execute(&program, &shared, &paths, &failure).expect("symex accepts");
        let (pairs, replay_outcome) =
            schedule_of_choices(&program, model, shared.clone(), &failing.choices);
        assert!(
            matches!(replay_outcome, Some(Outcome::AssertFailed { .. })),
            "schedule_of_choices re-execution diverged for {}",
            failing.letters
        );
        let schedule = schedule_from_pairs(&trace, &pairs);

        // The production replayer must drive this schedule to the bug.
        let report = replay_under(
            &program,
            model,
            shared.clone(),
            &trace,
            &schedule,
            assert,
            &mut NullMonitor,
        )
        .unwrap_or_else(|e| panic!("replay failed for {}: {e:?}", failing.letters));
        assert!(
            report.reproduced,
            "assert must fire for {}",
            failing.letters
        );
    }
    report.failing.len().min(cap)
}

const LOST_UPDATE: &str = "global int x = 0;
     fn w() { let v: int = x; yield; x = v + 1; }
     fn main() { let a: thread = fork w(); let b: thread = fork w();
                 join a; join b; assert(x == 2, \"lost\"); }";

const SB: &str = "global int x = 0; global int y = 0;
     global int r1 = -1; global int r2 = -1;
     fn t1() { x = 1; r1 = y; }
     fn t2() { y = 1; r2 = x; }
     fn main() {
         let a: thread = fork t1(); let b: thread = fork t2();
         join a; join b;
         assert(r1 + r2 > 0, \"SB\");
     }";

const MP: &str = "global int data = 0; global int flag = 0; global int seen = -1;
     fn writer() { data = 1; flag = 1; }
     fn reader() { let f: int = flag; if (f == 1) { seen = data; } }
     fn main() {
         let w: thread = fork writer(); let r: thread = fork reader();
         join w; join r;
         assert(seen != 0, \"MP\");
     }";

const HANDOFF: &str = "global int ready = 0; global int x = 0; mutex m; cond c;
     fn worker() {
         lock(m);
         while (ready == 0) { wait(c, m); }
         unlock(m);
         let v: int = x; yield; x = v + 1;
     }
     fn main() {
         let a: thread = fork worker(); let b: thread = fork worker();
         lock(m); ready = 1; broadcast(c); unlock(m);
         join a; join b;
         assert(x == 2, \"handoff race\");
     }";

/// The lost-close race: main closes the channel concurrently with the
/// producer's sends, so closed-channel drops and drained `-1`s make the
/// full-delivery assert fail on some schedules.
const CHAN_LOST_CLOSE: &str = "global int sum = 0;
     chan ch(1);
     fn producer() { send(ch, 5); send(ch, 7); }
     fn consumer() {
         let a: int = recv(ch);
         let b: int = recv(ch);
         sum = a + b;
     }
     fn main() {
         let p: thread = fork producer();
         let c: thread = fork consumer();
         close(ch);
         join p; join c;
         assert(sum == 12, \"lost send\");
     }";

/// Load shedding: `try_send` into a cap-1 channel drops whenever the
/// consumer has not yet drained the slot, and the close race can strand
/// a value — the assert demands full delivery.
const CHAN_TRY_SHED: &str = "global int sum = 0;
     chan ch(1);
     fn producer() {
         let a: int = try_send(ch, 5);
         let b: int = try_send(ch, 7);
     }
     fn consumer() {
         let x: int = recv(ch);
         let y: int = recv(ch);
         sum = x + y;
     }
     fn main() {
         let p: thread = fork producer();
         let c: thread = fork consumer();
         close(ch);
         join p; join c;
         assert(sum == 12, \"shed work\");
     }";

/// Rendezvous handoff into a racy read-modify-write: the cap-0 sends
/// synchronize the handoff itself, but the unprotected increment after
/// it still loses updates.
const CHAN_RENDEZVOUS_RACE: &str = "global int x = 0;
     chan ch(0);
     fn worker() {
         let v: int = recv(ch);
         let t: int = x; yield; x = t + v;
     }
     fn main() {
         let a: thread = fork worker();
         let b: thread = fork worker();
         send(ch, 1);
         send(ch, 1);
         join a; join b;
         assert(x == 2, \"rendezvous lost update\");
     }";

/// Actor mailbox race: main snapshots the actor's output before joining
/// it, so the assert fails whenever the actor has not finished summing
/// its mailbox by the time main reads.
const ACTOR_MAILBOX_RACE: &str = "global int got = 0;
     fn act() {
         let a: int = mailbox_recv();
         let b: int = mailbox_recv();
         got = a + b;
     }
     fn main() {
         let h: thread = spawn_actor act();
         mailbox_send(h, 3);
         mailbox_send(h, 4);
         let snap: int = got;
         join h;
         assert(snap == 7, \"actor raced main\");
     }";

#[test]
fn every_sc_lost_update_schedule_replays() {
    let n = replay_oracle_failures(LOST_UPDATE, MemModel::Sc, usize::MAX);
    assert!(n >= 5, "expected a rich failing set, got {n}");
}

#[test]
fn tso_store_buffering_schedules_replay() {
    let n = replay_oracle_failures(SB, MemModel::Tso, 12);
    assert!(n > 0, "TSO SB failures must exist");
}

#[test]
fn pso_message_passing_schedules_replay() {
    let n = replay_oracle_failures(MP, MemModel::Pso, 12);
    assert!(n > 0, "PSO MP failures must exist");
}

#[test]
fn condvar_handoff_schedules_replay() {
    let n = replay_oracle_failures(HANDOFF, MemModel::Sc, 8);
    assert!(n > 0, "handoff race failures must exist");
}

#[test]
fn chan_lost_close_schedules_replay() {
    let n = replay_oracle_failures(CHAN_LOST_CLOSE, MemModel::Sc, 12);
    assert!(n > 0, "lost-close failures must exist");
}

#[test]
fn chan_lost_close_schedules_replay_under_tso() {
    let n = replay_oracle_failures(CHAN_LOST_CLOSE, MemModel::Tso, 12);
    assert!(n > 0, "lost-close failures must exist under TSO");
}

#[test]
fn chan_try_shed_schedules_replay() {
    let n = replay_oracle_failures(CHAN_TRY_SHED, MemModel::Sc, 12);
    assert!(n > 0, "try_send shedding failures must exist");
}

#[test]
fn chan_rendezvous_race_schedules_replay() {
    let n = replay_oracle_failures(CHAN_RENDEZVOUS_RACE, MemModel::Sc, 12);
    assert!(n > 0, "rendezvous lost-update failures must exist");
}

#[test]
fn actor_mailbox_race_schedules_replay() {
    let n = replay_oracle_failures(ACTOR_MAILBOX_RACE, MemModel::Sc, 12);
    assert!(n > 0, "actor/main race failures must exist");
}
