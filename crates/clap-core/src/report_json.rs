//! JSON encode/decode for [`ReproductionReport`] — the wire format the
//! reproduction service ships and caches, and the `--json` output of
//! `clap-reproduce reproduce`.
//!
//! The codec reuses the [`clap_obs::json`] value model (the workspace's
//! only JSON infrastructure) and is **round-trip stable**: for any report,
//! `to_json ∘ from_json ∘ to_json` is byte-identical, which is what lets
//! the service's content-addressed cache compare and journal reports as
//! strings. Durations are nanosecond integers; `i64` witness values that
//! do not fit a JSON `f64` exactly (beyond ±2^53) are encoded as decimal
//! strings, and the decoder accepts both encodings.

use crate::{
    AttemptOutcome, EngineKind, PhaseTimings, PortfolioAttempt, PortfolioReport, ReproductionReport,
};
use clap_constraints::{ConstraintStats, ReadSource, Schedule, Witness};
use clap_ir::AssertId;
use clap_obs::json::{self, Value};
use clap_replay::ReplayReport;
use clap_symex::SapId;
use clap_vm::{Outcome, ThreadId};
use std::time::Duration;

/// Largest integer magnitude a JSON number (f64) represents exactly.
const EXACT: i64 = 1 << 53;

fn nu(v: u64) -> Value {
    if v < EXACT as u64 {
        Value::Num(v as f64)
    } else {
        Value::Str(v.to_string())
    }
}

fn ni(v: i64) -> Value {
    if v > -EXACT && v < EXACT {
        Value::Num(v as f64)
    } else {
        Value::Str(v.to_string())
    }
}

fn ns(d: Duration) -> Value {
    nu(d.as_nanos().min(u128::from(u64::MAX)) as u64)
}

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_owned(), v))
            .collect(),
    )
}

fn get<'a>(v: &'a Value, key: &str) -> Result<&'a Value, String> {
    v.get(key).ok_or_else(|| format!("missing key `{key}`"))
}

fn get_u64(v: &Value, key: &str) -> Result<u64, String> {
    match get(v, key)? {
        Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Ok(*n as u64),
        Value::Str(s) => s.parse().map_err(|_| format!("bad integer in `{key}`")),
        _ => Err(format!("`{key}` is not an unsigned integer")),
    }
}

fn get_i64(v: &Value) -> Result<i64, String> {
    match v {
        Value::Num(n) if n.fract() == 0.0 => Ok(*n as i64),
        Value::Str(s) => s.parse().map_err(|_| "bad integer".to_owned()),
        _ => Err("not an integer".to_owned()),
    }
}

fn get_usize(v: &Value, key: &str) -> Result<usize, String> {
    usize::try_from(get_u64(v, key)?).map_err(|_| format!("`{key}` out of range"))
}

fn get_ns(v: &Value, key: &str) -> Result<Duration, String> {
    Ok(Duration::from_nanos(get_u64(v, key)?))
}

fn get_str<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    get(v, key)?
        .as_str()
        .ok_or_else(|| format!("`{key}` is not a string"))
}

fn get_bool(v: &Value, key: &str) -> Result<bool, String> {
    match get(v, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("`{key}` is not a bool")),
    }
}

fn get_arr<'a>(v: &'a Value, key: &str) -> Result<&'a [Value], String> {
    get(v, key)?
        .as_arr()
        .ok_or_else(|| format!("`{key}` is not an array"))
}

fn constraints_to_value(c: &ConstraintStats) -> Value {
    obj(vec![
        ("path_clauses", nu(c.path_clauses as u64)),
        ("rw_clauses", nu(c.rw_clauses as u64)),
        ("so_clauses", nu(c.so_clauses as u64)),
        ("mo_clauses", nu(c.mo_clauses as u64)),
        ("value_vars", nu(c.value_vars as u64)),
        ("order_vars", nu(c.order_vars as u64)),
        ("match_vars", nu(c.match_vars as u64)),
    ])
}

fn constraints_from_value(v: &Value) -> Result<ConstraintStats, String> {
    Ok(ConstraintStats {
        path_clauses: get_usize(v, "path_clauses")?,
        rw_clauses: get_usize(v, "rw_clauses")?,
        so_clauses: get_usize(v, "so_clauses")?,
        mo_clauses: get_usize(v, "mo_clauses")?,
        value_vars: get_usize(v, "value_vars")?,
        order_vars: get_usize(v, "order_vars")?,
        match_vars: get_usize(v, "match_vars")?,
    })
}

fn phases_to_value(p: &PhaseTimings) -> Value {
    obj(vec![
        ("record", ns(p.record)),
        ("decode", ns(p.decode)),
        ("symex", ns(p.symex)),
        ("constrain", ns(p.constrain)),
        ("solve", ns(p.solve)),
        ("replay", ns(p.replay)),
        ("total", ns(p.total)),
    ])
}

fn phases_from_value(v: &Value) -> Result<PhaseTimings, String> {
    Ok(PhaseTimings {
        record: get_ns(v, "record")?,
        decode: get_ns(v, "decode")?,
        symex: get_ns(v, "symex")?,
        constrain: get_ns(v, "constrain")?,
        solve: get_ns(v, "solve")?,
        replay: get_ns(v, "replay")?,
        total: get_ns(v, "total")?,
    })
}

fn witness_to_value(w: &Witness) -> Value {
    let reads_from = w
        .reads_from
        .iter()
        .map(|(sap, src)| {
            let src = match src {
                ReadSource::Init => Value::Null,
                ReadSource::Write(w) => nu(u64::from(w.0)),
            };
            Value::Arr(vec![nu(u64::from(sap.0)), src])
        })
        .collect();
    obj(vec![
        (
            "assignment",
            Value::Arr(w.assignment.iter().map(|&v| ni(v)).collect()),
        ),
        ("reads_from", Value::Arr(reads_from)),
    ])
}

fn witness_from_value(v: &Value) -> Result<Witness, String> {
    let assignment = get_arr(v, "assignment")?
        .iter()
        .map(get_i64)
        .collect::<Result<Vec<_>, _>>()?;
    let reads_from = get_arr(v, "reads_from")?
        .iter()
        .map(|pair| {
            let items = pair.as_arr().ok_or("reads_from entry is not a pair")?;
            let [sap, src] = items else {
                return Err("reads_from entry is not a pair".to_owned());
            };
            let sap = SapId(u32::try_from(get_i64(sap)?).map_err(|_| "bad SAP id")?);
            let src = match src {
                Value::Null => ReadSource::Init,
                other => ReadSource::Write(SapId(
                    u32::try_from(get_i64(other)?).map_err(|_| "bad SAP id")?,
                )),
            };
            Ok((sap, src))
        })
        .collect::<Result<Vec<_>, String>>()?;
    Ok(Witness {
        assignment,
        reads_from,
    })
}

fn engine_str(e: EngineKind) -> &'static str {
    match e {
        EngineKind::Parallel => "parallel",
        EngineKind::Sequential => "sequential",
    }
}

fn engine_from_str(s: &str) -> Result<EngineKind, String> {
    match s {
        "parallel" => Ok(EngineKind::Parallel),
        "sequential" => Ok(EngineKind::Sequential),
        other => Err(format!("unknown engine `{other}`")),
    }
}

fn attempt_outcome_from_str(s: &str) -> Result<AttemptOutcome, String> {
    Ok(match s {
        "found" => AttemptOutcome::Found,
        "exhausted" => AttemptOutcome::Exhausted,
        "budget" => AttemptOutcome::Budget,
        "unsat" => AttemptOutcome::Unsat,
        "timeout" => AttemptOutcome::Timeout,
        "cancelled" => AttemptOutcome::Cancelled,
        other => return Err(format!("unknown attempt outcome `{other}`")),
    })
}

fn portfolio_to_value(p: &PortfolioReport) -> Value {
    let attempts = p
        .attempts
        .iter()
        .map(|a| {
            obj(vec![
                ("engine", Value::Str(engine_str(a.engine).to_owned())),
                (
                    "cs_bounds",
                    match a.cs_bounds {
                        Some((lo, hi)) => Value::Arr(vec![nu(lo as u64), nu(hi as u64)]),
                        None => Value::Null,
                    },
                ),
                ("outcome", Value::Str(a.outcome.to_string())),
                ("wall_ns", ns(a.wall)),
            ])
        })
        .collect();
    obj(vec![
        ("attempts", Value::Arr(attempts)),
        (
            "winner",
            match p.winner {
                Some(e) => Value::Str(engine_str(e).to_owned()),
                None => Value::Null,
            },
        ),
    ])
}

fn portfolio_from_value(v: &Value) -> Result<PortfolioReport, String> {
    let attempts = get_arr(v, "attempts")?
        .iter()
        .map(|a| {
            let cs_bounds = match get(a, "cs_bounds")? {
                Value::Null => None,
                Value::Arr(items) => {
                    let [lo, hi] = items.as_slice() else {
                        return Err("cs_bounds is not a pair".to_owned());
                    };
                    Some((
                        usize::try_from(get_i64(lo)?).map_err(|_| "bad bound")?,
                        usize::try_from(get_i64(hi)?).map_err(|_| "bad bound")?,
                    ))
                }
                _ => return Err("cs_bounds is neither null nor a pair".to_owned()),
            };
            Ok(PortfolioAttempt {
                engine: engine_from_str(get_str(a, "engine")?)?,
                cs_bounds,
                outcome: attempt_outcome_from_str(get_str(a, "outcome")?)?,
                wall: get_ns(a, "wall_ns")?,
            })
        })
        .collect::<Result<Vec<_>, String>>()?;
    let winner = match get(v, "winner")? {
        Value::Null => None,
        Value::Str(s) => Some(engine_from_str(s)?),
        _ => return Err("winner is neither null nor a string".to_owned()),
    };
    Ok(PortfolioReport { attempts, winner })
}

fn outcome_to_value(o: &Outcome) -> Value {
    match o {
        Outcome::Completed => obj(vec![("kind", Value::Str("completed".to_owned()))]),
        Outcome::AssertFailed { assert, thread } => obj(vec![
            ("kind", Value::Str("assert_failed".to_owned())),
            ("assert", nu(u64::from(assert.0))),
            ("thread", nu(u64::from(thread.0))),
        ]),
        Outcome::Deadlock => obj(vec![("kind", Value::Str("deadlock".to_owned()))]),
        Outcome::StepLimit => obj(vec![("kind", Value::Str("step_limit".to_owned()))]),
        Outcome::Fault { thread, message } => obj(vec![
            ("kind", Value::Str("fault".to_owned())),
            ("thread", nu(u64::from(thread.0))),
            ("message", Value::Str(message.clone())),
        ]),
    }
}

fn outcome_from_value(v: &Value) -> Result<Outcome, String> {
    Ok(match get_str(v, "kind")? {
        "completed" => Outcome::Completed,
        "assert_failed" => Outcome::AssertFailed {
            assert: AssertId(u32::try_from(get_u64(v, "assert")?).map_err(|_| "bad assert id")?),
            thread: ThreadId(u32::try_from(get_u64(v, "thread")?).map_err(|_| "bad thread id")?),
        },
        "deadlock" => Outcome::Deadlock,
        "step_limit" => Outcome::StepLimit,
        "fault" => Outcome::Fault {
            thread: ThreadId(u32::try_from(get_u64(v, "thread")?).map_err(|_| "bad thread id")?),
            message: get_str(v, "message")?.to_owned(),
        },
        other => return Err(format!("unknown replay outcome `{other}`")),
    })
}

fn replay_to_value(r: &ReplayReport) -> Value {
    obj(vec![
        ("outcome", outcome_to_value(&r.outcome)),
        ("reproduced", Value::Bool(r.reproduced)),
        ("steps", nu(r.steps)),
        ("positions_consumed", nu(r.positions_consumed as u64)),
    ])
}

fn replay_from_value(v: &Value) -> Result<ReplayReport, String> {
    Ok(ReplayReport {
        outcome: outcome_from_value(get(v, "outcome")?)?,
        reproduced: get_bool(v, "reproduced")?,
        steps: get_u64(v, "steps")?,
        positions_consumed: get_usize(v, "positions_consumed")?,
    })
}

impl ReproductionReport {
    /// Encodes the report as a compact, deterministic JSON document.
    pub fn to_json(&self) -> String {
        obj(vec![
            ("version", nu(1)),
            ("threads", nu(self.threads as u64)),
            ("shared_vars", nu(self.shared_vars as u64)),
            ("instructions", nu(self.instructions)),
            ("branches", nu(self.branches)),
            ("saps", nu(self.saps as u64)),
            ("constraints", constraints_to_value(&self.constraints)),
            ("log_bytes", nu(self.log_bytes as u64)),
            ("time_symbolic_ns", ns(self.time_symbolic)),
            ("time_solve_ns", ns(self.time_solve)),
            ("phases_ns", phases_to_value(&self.phases)),
            (
                "schedule_letters",
                Value::Str(self.schedule_letters.clone()),
            ),
            ("context_switches", nu(self.context_switches as u64)),
            (
                "schedule",
                Value::Arr(
                    self.schedule
                        .order
                        .iter()
                        .map(|s| nu(u64::from(s.0)))
                        .collect(),
                ),
            ),
            ("witness", witness_to_value(&self.witness)),
            ("portfolio", portfolio_to_value(&self.portfolio)),
            ("replay", replay_to_value(&self.replay)),
            ("reproduced", Value::Bool(self.reproduced)),
            ("seed", nu(self.seed)),
        ])
        .render()
    }

    /// Decodes a report previously produced by [`Self::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural problem (malformed
    /// JSON, missing key, wrong type, unknown version).
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = json::parse(text)?;
        let version = get_u64(&v, "version")?;
        if version != 1 {
            return Err(format!("unsupported report version {version}"));
        }
        let order = get_arr(&v, "schedule")?
            .iter()
            .map(|s| Ok(SapId(u32::try_from(get_i64(s)?).map_err(|_| "bad SAP id")?)))
            .collect::<Result<Vec<_>, String>>()?;
        Ok(ReproductionReport {
            threads: get_usize(&v, "threads")?,
            shared_vars: get_usize(&v, "shared_vars")?,
            instructions: get_u64(&v, "instructions")?,
            branches: get_u64(&v, "branches")?,
            saps: get_usize(&v, "saps")?,
            constraints: constraints_from_value(get(&v, "constraints")?)?,
            log_bytes: get_usize(&v, "log_bytes")?,
            time_symbolic: get_ns(&v, "time_symbolic_ns")?,
            time_solve: get_ns(&v, "time_solve_ns")?,
            phases: phases_from_value(get(&v, "phases_ns")?)?,
            schedule_letters: get_str(&v, "schedule_letters")?.to_owned(),
            context_switches: get_usize(&v, "context_switches")?,
            schedule: Schedule { order },
            witness: witness_from_value(get(&v, "witness")?)?,
            portfolio: portfolio_from_value(get(&v, "portfolio")?)?,
            replay: replay_from_value(get(&v, "replay")?)?,
            reproduced: get_bool(&v, "reproduced")?,
            seed: get_u64(&v, "seed")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pipeline, PipelineConfig};
    use clap_vm::MemModel;

    const LOST_UPDATE: &str = "global int x = 0;
         fn w() { let v: int = x; yield; x = v + 1; }
         fn main() { let a: thread = fork w(); let b: thread = fork w();
                     join a; join b; assert(x == 2, \"lost\"); }";

    #[test]
    fn report_round_trips_through_json() {
        let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
        let report = pipeline
            .reproduce(&PipelineConfig::new(MemModel::Sc))
            .unwrap();
        let json1 = report.to_json();
        let decoded = ReproductionReport::from_json(&json1).unwrap();
        // Byte-identical re-encode: the stability the content-addressed
        // cache and journal rely on.
        assert_eq!(decoded.to_json(), json1);
        // And the decoded struct carries the same data.
        assert_eq!(decoded.threads, report.threads);
        assert_eq!(decoded.saps, report.saps);
        assert_eq!(decoded.schedule.order, report.schedule.order);
        assert_eq!(decoded.schedule_letters, report.schedule_letters);
        assert_eq!(decoded.witness.assignment, report.witness.assignment);
        assert_eq!(decoded.witness.reads_from, report.witness.reads_from);
        assert_eq!(decoded.reproduced, report.reproduced);
        assert_eq!(decoded.context_switches, report.context_switches);
        assert_eq!(decoded.phases, report.phases);
        assert_eq!(decoded.portfolio.winner, report.portfolio.winner);
        assert_eq!(
            decoded.portfolio.attempts.len(),
            report.portfolio.attempts.len()
        );
        assert_eq!(decoded.replay.reproduced, report.replay.reproduced);
        assert_eq!(decoded.seed, report.seed);
    }

    #[test]
    fn huge_witness_values_survive_the_f64_bottleneck() {
        let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
        let config = PipelineConfig::new(MemModel::Sc);
        let mut report = pipeline.reproduce(&config).unwrap();
        report.witness.assignment.push(i64::MIN);
        report.witness.assignment.push(i64::MAX);
        report.witness.assignment.push((1 << 53) + 1);
        let decoded = ReproductionReport::from_json(&report.to_json()).unwrap();
        assert_eq!(decoded.witness.assignment, report.witness.assignment);
    }

    #[test]
    fn decoder_rejects_malformed_documents() {
        assert!(ReproductionReport::from_json("not json").is_err());
        assert!(ReproductionReport::from_json("{}").is_err());
        assert!(ReproductionReport::from_json(r#"{"version":99}"#).is_err());
    }
}
