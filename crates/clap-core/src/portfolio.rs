//! The adaptive solver portfolio behind [`SolverChoice::Auto`].
//!
//! CLAP §4.2–4.3 motivates preemption-bounded search as an
//! *optimization*: most concurrency bugs reproduce within a handful of
//! preemptive context switches, so exhausting small bounds first finds
//! minimal-preemption schedules fast. But a bounded ladder that comes up
//! empty proves nothing — the schedule may simply need more preemptions
//! than the cap (pfscan is exactly this case). The portfolio therefore
//!
//! 1. starts the parallel generate-and-validate engine at a small
//!    preemption bound and, on clean exhaustion, **escalates** `max_cs`
//!    up a bounded ladder (each rung resumes at `min_cs` past the bounds
//!    already covered, so no level is enumerated twice);
//! 2. on ladder exhaustion or budget pressure **falls back to the
//!    sequential DPLL(T) solver**, the only engine here that can certify
//!    unsatisfiability (optionally *racing* it from the start with
//!    cooperative cancellation through a shared [`AtomicBool`]);
//! 3. slices one overall [`Duration`] budget across the attempts —
//!    each rung gets `remaining / attempts_left`, the fallback gets
//!    everything left — and records every attempt (engine, bounds,
//!    outcome, wall time) as `clap-obs` events plus the `portfolio`
//!    section of the reproduction report.
//!
//! [`SolverChoice::Auto`]: crate::SolverChoice::Auto

use clap_constraints::{ConstraintSystem, Schedule, Witness};
use clap_ir::Program;
use clap_parallel::{
    preemption_point_count, solve_parallel_cancellable, ParallelConfig, ParallelOutcome,
};
use clap_solver::{solve_cancellable, SolveOutcome, SolverConfig};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Portfolio configuration for [`SolverChoice::Auto`].
///
/// [`SolverChoice::Auto`]: crate::SolverChoice::Auto
#[derive(Debug, Clone)]
pub struct AutoConfig {
    /// The `max_cs` rungs the parallel engine escalates through, in
    /// increasing order. Each rung resumes where the previous one left
    /// off (`min_cs = previous + 1`), so the ladder as a whole covers
    /// `0..=last` exactly once.
    pub ladder: Vec<usize>,
    /// Overall wall-clock budget across every attempt, anchored when the
    /// solve phase starts (`None` = unbounded).
    pub solve_timeout: Option<Duration>,
    /// Race the sequential solver concurrently with the ladder instead
    /// of only falling back to it. First engine to find a schedule
    /// cancels the other through a shared stop flag. Racing trades the
    /// portfolio's run-to-run schedule determinism for latency.
    pub race_sequential: bool,
    /// Base knobs for the parallel engine (workers, per-level caps).
    /// `min_cs`/`max_cs`/`timeout` are overridden per rung.
    pub parallel: ParallelConfig,
    /// Base knobs for the sequential fallback. `timeout` is overridden
    /// with the remaining budget.
    pub sequential: SolverConfig,
}

impl Default for AutoConfig {
    fn default() -> Self {
        AutoConfig {
            ladder: vec![1, 3, 5, 8],
            solve_timeout: None,
            race_sequential: false,
            parallel: ParallelConfig::default(),
            sequential: SolverConfig::default(),
        }
    }
}

impl AutoConfig {
    /// Sets the overall solve budget.
    pub fn with_solve_timeout(mut self, timeout: Duration) -> Self {
        self.solve_timeout = Some(timeout);
        self
    }

    /// Enables racing the sequential solver against the ladder.
    pub fn with_racing(mut self) -> Self {
        self.race_sequential = true;
        self
    }
}

/// Which engine ran a portfolio attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The §4.3 parallel generate-and-validate engine.
    Parallel,
    /// The sequential DPLL(T) solver.
    Sequential,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Parallel => write!(f, "parallel"),
            EngineKind::Sequential => write!(f, "sequential"),
        }
    }
}

/// How one portfolio attempt ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// A bug-reproducing schedule was found.
    Found,
    /// The rung's preemption bounds were exhausted cleanly — no schedule
    /// within them, but no statement about larger bounds.
    Exhausted,
    /// A per-level cap or the attempt's time slice cut the search short.
    Budget,
    /// The sequential engine proved the constraints unsatisfiable (a
    /// complete-search certificate).
    Unsat,
    /// The attempt's time slice ran out.
    Timeout,
    /// The race partner won first and cancelled this attempt.
    Cancelled,
}

impl fmt::Display for AttemptOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AttemptOutcome::Found => "found",
            AttemptOutcome::Exhausted => "exhausted",
            AttemptOutcome::Budget => "budget",
            AttemptOutcome::Unsat => "unsat",
            AttemptOutcome::Timeout => "timeout",
            AttemptOutcome::Cancelled => "cancelled",
        };
        write!(f, "{s}")
    }
}

/// One recorded solve attempt.
#[derive(Debug, Clone)]
pub struct PortfolioAttempt {
    /// The engine that ran.
    pub engine: EngineKind,
    /// The preemption bounds `(min_cs, max_cs)` the attempt covered
    /// (parallel attempts only).
    pub cs_bounds: Option<(usize, usize)>,
    /// How the attempt ended.
    pub outcome: AttemptOutcome,
    /// Wall time the attempt consumed.
    pub wall: Duration,
}

/// The `portfolio` section of a [`crate::ReproductionReport`]: every
/// attempt in order, and the engine whose schedule won.
#[derive(Debug, Clone)]
pub struct PortfolioReport {
    /// Attempts in the order they were launched.
    pub attempts: Vec<PortfolioAttempt>,
    /// The engine that produced the schedule used by the pipeline
    /// (`None` when no attempt succeeded).
    pub winner: Option<EngineKind>,
}

impl PortfolioReport {
    /// A report for a non-portfolio run: one attempt, one winner.
    pub fn single(engine: EngineKind, outcome: AttemptOutcome, wall: Duration) -> Self {
        PortfolioReport {
            attempts: vec![PortfolioAttempt {
                engine,
                cs_bounds: None,
                outcome,
                wall,
            }],
            winner: (outcome == AttemptOutcome::Found).then_some(engine),
        }
    }
}

/// The result of a portfolio solve.
#[derive(Debug)]
pub enum PortfolioOutcome {
    /// Some attempt produced a validated bug-reproducing schedule.
    Found {
        /// The winning schedule.
        schedule: Schedule,
        /// Its witness.
        witness: Witness,
        /// The attempt log naming the winner.
        report: PortfolioReport,
    },
    /// The constraints are unsatisfiable, certified by a complete search
    /// (the sequential engine, or a parallel exhaustion that covered
    /// every preemption point).
    Unsat(PortfolioReport),
    /// Every attempt ran out of budget without a certificate either way.
    Budget(PortfolioReport),
}

/// What the escalation ladder concluded.
enum LadderResult {
    /// A rung produced a validated schedule.
    Found(Schedule, Witness),
    /// A rung exhausted cleanly at a bound covering every preemption
    /// point: a complete-search unsatisfiability certificate.
    CertifiedUnsat,
    /// The ladder ended without a verdict (exhausted below the
    /// completeness bound, hit budget, or was cancelled).
    NoVerdict,
}

/// Records one finished attempt in the report and the metrics stream.
fn record(report: &mut PortfolioReport, attempt: PortfolioAttempt) {
    clap_obs::add("portfolio.attempts", 1);
    let (cs_min, cs_max) = attempt.cs_bounds.unwrap_or((0, 0));
    clap_obs::event(
        "portfolio.attempt",
        &[
            ("engine", attempt.engine.to_string()),
            ("cs_min", cs_min.to_string()),
            ("cs_max", cs_max.to_string()),
            ("outcome", attempt.outcome.to_string()),
            ("wall_us", attempt.wall.as_micros().to_string()),
        ],
    );
    report.attempts.push(attempt);
}

fn record_winner(report: &mut PortfolioReport, engine: EngineKind) {
    report.winner = Some(engine);
    clap_obs::event("portfolio.winner", &[("engine", engine.to_string())]);
}

/// Runs the adaptive portfolio over one constraint system.
pub fn solve_auto(
    program: &Program,
    system: &ConstraintSystem<'_>,
    config: &AutoConfig,
) -> PortfolioOutcome {
    let _s = clap_obs::span("portfolio");
    let start = Instant::now();
    let mut report = PortfolioReport {
        attempts: Vec::new(),
        winner: None,
    };
    // Normalize the ladder: strictly increasing rungs.
    let mut ladder = config.ladder.clone();
    ladder.sort_unstable();
    ladder.dedup();
    // A rung reaching this many preemption points makes clean exhaustion a
    // complete-search certificate (every preemption placement covered).
    let points = preemption_point_count(system);

    let cancel = AtomicBool::new(false);
    let seq_slot: Mutex<Option<(SolveOutcome, Duration)>> = Mutex::new(None);
    let remaining = || {
        config
            .solve_timeout
            .map(|t| t.saturating_sub(start.elapsed()))
    };

    let ladder_result = std::thread::scope(|scope| {
        if config.race_sequential {
            scope.spawn(|| {
                let t0 = Instant::now();
                let seq_config = SolverConfig {
                    timeout: remaining(),
                    ..config.sequential
                };
                let outcome = solve_cancellable(program, system, seq_config, Some(&cancel));
                if matches!(outcome, SolveOutcome::Sat(_)) {
                    cancel.store(true, Ordering::Relaxed);
                }
                *seq_slot.lock().expect("seq slot") = Some((outcome, t0.elapsed()));
            });
        }

        let mut min_cs = 0usize;
        for (i, &max_cs) in ladder.iter().enumerate() {
            if cancel.load(Ordering::Relaxed) {
                break;
            }
            // Budget slicing: rungs left plus the sequential fallback.
            let attempts_left = (ladder.len() - i + 1) as u32;
            let slice = remaining().map(|r| r / attempts_left);
            if slice.is_some_and(|s| s.is_zero()) {
                break;
            }
            let rung_config = ParallelConfig {
                min_cs,
                max_cs,
                timeout: slice,
                ..config.parallel
            };
            let t0 = Instant::now();
            let outcome = solve_parallel_cancellable(program, system, rung_config, Some(&cancel));
            let wall = t0.elapsed();
            match outcome {
                ParallelOutcome::Found {
                    schedule, witness, ..
                } => {
                    cancel.store(true, Ordering::Relaxed);
                    record(
                        &mut report,
                        PortfolioAttempt {
                            engine: EngineKind::Parallel,
                            cs_bounds: Some((min_cs, max_cs)),
                            outcome: AttemptOutcome::Found,
                            wall,
                        },
                    );
                    return LadderResult::Found(schedule, witness);
                }
                ParallelOutcome::Exhausted(_) => {
                    record(
                        &mut report,
                        PortfolioAttempt {
                            engine: EngineKind::Parallel,
                            cs_bounds: Some((min_cs, max_cs)),
                            outcome: AttemptOutcome::Exhausted,
                            wall,
                        },
                    );
                    // Rungs escalate contiguously from 0, so a clean
                    // exhaustion at a bound covering every preemption
                    // point is a completeness certificate.
                    if max_cs >= points {
                        cancel.store(true, Ordering::Relaxed);
                        return LadderResult::CertifiedUnsat;
                    }
                    min_cs = max_cs + 1;
                }
                ParallelOutcome::Budget(_) => {
                    let was_cancelled = cancel.load(Ordering::Relaxed);
                    record(
                        &mut report,
                        PortfolioAttempt {
                            engine: EngineKind::Parallel,
                            cs_bounds: Some((min_cs, max_cs)),
                            outcome: if was_cancelled {
                                AttemptOutcome::Cancelled
                            } else {
                                AttemptOutcome::Budget
                            },
                            wall,
                        },
                    );
                    // Budget pressure: higher rungs only cost more, so
                    // hand the remaining budget to the fallback.
                    break;
                }
            }
        }
        LadderResult::NoVerdict
    });

    // The racing sequential thread (if any) has joined by now.
    let raced = seq_slot.into_inner().expect("seq slot");

    match ladder_result {
        LadderResult::Found(schedule, witness) => {
            // Record how the raced sequential attempt ended, for the log.
            if let Some((outcome, wall)) = raced {
                record(&mut report, seq_attempt(&outcome, wall, &cancel));
            }
            record_winner(&mut report, EngineKind::Parallel);
            return PortfolioOutcome::Found {
                schedule,
                witness,
                report,
            };
        }
        LadderResult::CertifiedUnsat => {
            if let Some((outcome, wall)) = raced {
                record(&mut report, seq_attempt(&outcome, wall, &cancel));
            }
            return PortfolioOutcome::Unsat(report);
        }
        LadderResult::NoVerdict => {}
    }

    // Ladder came up empty: the sequential engine decides. Either it
    // already ran as the race partner, or it runs now with all the
    // remaining budget.
    let (seq_outcome, seq_wall) = match raced {
        Some((outcome, wall)) => (outcome, wall),
        None => {
            let t0 = Instant::now();
            let seq_config = SolverConfig {
                timeout: remaining(),
                ..config.sequential
            };
            let outcome = solve_cancellable(program, system, seq_config, None);
            (outcome, t0.elapsed())
        }
    };
    record(&mut report, seq_attempt(&seq_outcome, seq_wall, &cancel));
    match seq_outcome {
        SolveOutcome::Sat(solution) => {
            record_winner(&mut report, EngineKind::Sequential);
            PortfolioOutcome::Found {
                schedule: solution.schedule,
                witness: solution.witness,
                report,
            }
        }
        SolveOutcome::Unsat(_) => PortfolioOutcome::Unsat(report),
        SolveOutcome::Timeout(_) => PortfolioOutcome::Budget(report),
    }
}

/// Classifies a sequential outcome as a portfolio attempt record.
fn seq_attempt(outcome: &SolveOutcome, wall: Duration, cancel: &AtomicBool) -> PortfolioAttempt {
    let outcome = match outcome {
        SolveOutcome::Sat(_) => AttemptOutcome::Found,
        SolveOutcome::Unsat(_) => AttemptOutcome::Unsat,
        // A cancelled solve surfaces as Timeout; attribute it to the race
        // partner when the shared flag is set.
        SolveOutcome::Timeout(_) if cancel.load(Ordering::Relaxed) => AttemptOutcome::Cancelled,
        SolveOutcome::Timeout(_) => AttemptOutcome::Timeout,
    };
    PortfolioAttempt {
        engine: EngineKind::Sequential,
        cs_bounds: None,
        outcome,
        wall,
    }
}
