//! The record-phase exploration engine: sweeps the (stickiness, seed)
//! grid of [`Pipeline::record_failure`] hunting a failing interleaving,
//! optionally fanning the sweep over a persistent worker pool.
//!
//! # Architecture
//!
//! One pool per sweep: [`record_failure`] opens a single thread scope
//! around the whole stickiness loop and starts the pool lazily, the first
//! time a level's plan goes parallel. Workers build their scratch VM once,
//! then park on a condvar between levels; each level is handed off by
//! bumping an epoch and publishing a [`LevelTask`] — no thread is spawned
//! or joined between levels. Seeds are claimed in *chunks* (one atomic
//! `fetch_add` claims a run of seeds) so the cross-thread coordination
//! cost amortizes across the chunk.
//!
//! Whether a level runs on the pool at all is decided *per level* by
//! [`plan_level`]: a short sequential calibration probe measures the
//! per-seed cost and failure density, estimates the remaining sequential
//! tail, and compares the parallel savings against the *measured* pool
//! startup cost (or the much cheaper handoff cost once the pool exists).
//! [`crate::ExploreCutover::Fixed`] replaces the estimate with an explicit
//! seed-budget threshold (`Fixed(0)` forces the pool on, which the tests
//! and the contention profiler use).
//!
//! # Determinism contract
//!
//! Parallel exploration returns **byte-identical** artifacts to the
//! sequential sweep, regardless of thread count, chunk width, or timing.
//! The invariants that make this hold:
//!
//! 1. The collector maintains a *watermark* — the length of the
//!    contiguous prefix of completed seeds — and only counts a failure as
//!    *finalized* once every smaller seed has completed. Early stop fires
//!    when [`CANDIDATES`] failures are finalized; at that point the
//!    `CANDIDATES` smallest failing seeds are all known.
//! 2. Before the stop fires, every claimed seed is run and reported, so
//!    completed seeds form a contiguous prefix of `0..budget` up to
//!    in-flight claims. *After* the stop fires a worker may abandon the
//!    rest of its chunk: the watermark can never pass an unreported seed,
//!    so every abandoned seed is above the watermark the stop decision
//!    looked at — above every seed selection can observe.
//! 3. After the level drains, failures are sorted by seed and truncated
//!    to [`CANDIDATES`] — exactly the candidate set the sequential loop
//!    collects — and the winner is the candidate minimizing
//!    `(saps, seed)`, which reproduces the sequential selection rule
//!    (strictly fewer SAPs wins, ties keep the earliest seed).
//!
//! Stickiness levels are explored strictly in order; the first level that
//! produces any failure is the last one explored, as in the sequential
//! sweep. The calibration probe is itself the first stretch of the
//! sequential sweep, so its failures are carried into the level result
//! whichever path the plan picks.
//!
//! # Telemetry
//!
//! The engine reports through [`clap_obs`] in two tiers. *Counters*
//! (`explore.levels`, `explore.failures`, `explore.seeds`) derive from the
//! canonical post-truncation candidate set, so they are byte-identical for
//! any worker count — the determinism contract extends to them. Runtime
//! shape that legitimately varies with thread timing (per-worker seed
//! counts and utilization, pool startup latency, early-stop drain latency,
//! attribution overrun) goes into histograms and gauges instead, and each
//! level emits an `explore.level.path` event naming the path it took and
//! why.

use crate::{ExploreCutover, Pipeline, PipelineConfig, PipelineError, RecordedFailure};
use clap_profile::{PathRecorder, SyncOrderRecorder};
use clap_symex::FailureContext;
use clap_vm::{Backend, MultiMonitor, Outcome, RandomScheduler, Vm};
use crossbeam::channel::{Receiver, Sender};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::Scope;
use std::time::{Duration, Instant};

/// Failing runs collected per stickiness level before selection.
pub(crate) const CANDIDATES: usize = 25;

/// Seeds the adaptive planner sweeps sequentially before deciding whether
/// the rest of the level is worth handing to the pool. The probe is not
/// overhead: it is the first stretch of the sequential sweep, and its
/// failures are carried into the level result.
const PROBE_SEEDS: u64 = 32;

/// Pool spawn-to-parked prior used before any pool has been measured in
/// this process. Deliberately pessimistic — the contention profiler showed
/// a whole small level (~2 ms) finishing before the pool finished
/// spawning, so that is the cost a sweep must amortize.
const STARTUP_PRIOR: Duration = Duration::from_millis(2);

/// Last measured pool startup latency (blended over sweeps),
/// process-global so later sweeps start from a calibrated figure instead
/// of the prior. Zero means "not measured yet".
static MEASURED_STARTUP_NANOS: AtomicU64 = AtomicU64::new(0);

fn startup_estimate() -> Duration {
    match MEASURED_STARTUP_NANOS.load(Ordering::Relaxed) {
        0 => STARTUP_PRIOR,
        n => Duration::from_nanos(n),
    }
}

fn record_pool_startup(measured: Duration) {
    let new = u64::try_from(measured.as_nanos())
        .unwrap_or(u64::MAX)
        .max(1);
    let old = MEASURED_STARTUP_NANOS.load(Ordering::Relaxed);
    let blended = if old == 0 { new } else { old / 2 + new / 2 };
    MEASURED_STARTUP_NANOS.store(blended.max(1), Ordering::Relaxed);
}

/// Handing a level to an already-parked pool costs a lock, a broadcast,
/// and per-worker wakeup latency — far below a cold start. Estimated as a
/// fraction of the measured startup, floored at the cost of a few context
/// switches.
fn handoff_estimate() -> Duration {
    (startup_estimate() / 16).max(Duration::from_micros(20))
}

fn available_cores() -> usize {
    // Cached: available_parallelism re-reads cgroup quota files on every
    // call (~10µs on some hosts), which would tax each level's plan.
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Resolves a worker-count request: `0` means one worker per available
/// core.
pub(crate) fn effective_workers(requested: usize) -> usize {
    if requested == 0 {
        available_cores()
    } else {
        requested
    }
}

/// Chunk width for one atomic seed claim: aim for ~64 claims per worker
/// so the `fetch_add` and wakeups amortize, capped so tail imbalance and
/// post-stop abandonment stay bounded.
fn chunk_size(remaining: u64, workers: usize) -> u64 {
    (remaining / (workers.max(1) as u64 * 64)).clamp(1, 1024)
}

/// Runs one (stickiness, seed) cell of the sweep on a reusable VM,
/// returning the recorded artifact when the run fails its assert.
///
/// [`Vm::reset`] rewinds the VM to its pristine state in place — no
/// snapshot round-trip, no reallocation — which is what makes the
/// per-seed reset equivalent to (and much cheaper than) constructing a
/// fresh VM.
///
/// With `attr` set the cell is profiled: the reset is timed into
/// [`WorkerAttribution::restore`], the run's enabled-action rebuild into
/// `rebuild`, and the rest of the run (scheduler picks, instruction
/// execution, recorder callbacks) into `step`.
fn run_seed(
    pipeline: &Pipeline,
    config: &PipelineConfig,
    stickiness: f64,
    seed: u64,
    vm: &mut Vm<'_>,
    mut attr: Option<&mut WorkerAttribution>,
) -> Option<RecordedFailure> {
    let t0 = attr.is_some().then(Instant::now);
    vm.reset();
    if let (Some(t0), Some(a)) = (t0, attr.as_deref_mut()) {
        a.restore += t0.elapsed();
        vm.enable_step_profile();
    }
    let t_run = attr.is_some().then(Instant::now);
    let mut recorder = PathRecorder::new(&pipeline.tables);
    let mut sync_recorder = config.record_sync_order.then(SyncOrderRecorder::new);
    let mut sched = RandomScheduler::with_stickiness(seed, stickiness);
    let outcome = match sync_recorder.as_mut() {
        Some(sync) => {
            let mut multi = MultiMonitor::new();
            multi.push(&mut recorder);
            multi.push(sync);
            vm.run(&mut sched, &mut multi)
        }
        None => vm.run(&mut sched, &mut recorder),
    };
    if let (Some(t_run), Some(a)) = (t_run, attr) {
        let total = t_run.elapsed();
        let prof = vm.take_step_profile().unwrap_or_default();
        a.rebuild += prof.rebuild;
        a.step += total.saturating_sub(prof.rebuild);
    }
    if let Outcome::AssertFailed { assert, .. } = outcome {
        Some(RecordedFailure {
            seed,
            stickiness,
            log: recorder.finish(),
            failure: FailureContext::from_vm(vm),
            assert,
            stats: *vm.stats(),
            sync_order: sync_recorder.map(SyncOrderRecorder::finish),
            record_time: Duration::ZERO,
        })
    } else {
        None
    }
}

fn pristine_vm<'p>(pipeline: &'p Pipeline, config: &PipelineConfig) -> Vm<'p> {
    let mut vm = Vm::with_compiled(
        &pipeline.program,
        std::sync::Arc::clone(pipeline.compiled()),
        config.model,
        pipeline.sharing.shared_spec(),
        Backend::Bytecode,
    );
    vm.set_step_limit(config.step_limit);
    vm
}

/// Continues the sequential sweep of one stickiness level from `start`,
/// carrying failures already collected (by the calibration probe), on the
/// caller's reusable scratch VM. Stops at [`CANDIDATES`] failures.
fn run_sequential<'p>(
    pipeline: &'p Pipeline,
    config: &PipelineConfig,
    stickiness: f64,
    scratch: &mut Option<Vm<'p>>,
    start: u64,
    mut failures: Vec<RecordedFailure>,
) -> Vec<RecordedFailure> {
    let vm = scratch.get_or_insert_with(|| pristine_vm(pipeline, config));
    for seed in start..config.seed_budget {
        if failures.len() >= CANDIDATES {
            break;
        }
        if let Some(found) = run_seed(pipeline, config, stickiness, seed, vm, None) {
            failures.push(found);
        }
    }
    failures
}

/// Where one parallel-sweep worker spent its wall time, measured by the
/// contention profiler ([`Pipeline::profile_contention`]). The taxonomy
/// follows ROADMAP item 2's suspect list so the profile is direct
/// evidence for (or against) each suspect:
///
/// - `claim`: the chunked `fetch_add` seed claim, the stop check, and the
///   result send to the watermark collector — all cross-thread
///   coordination;
/// - `restore`: [`Vm::reset`] rewinding the VM between seeds (the
///   "per-seed snapshot restore" suspect);
/// - `rebuild`: re-deriving the enabled-action set after every step
///   inside [`Vm::run`];
/// - `step`: the rest of the VM run — scheduler picks, instruction
///   execution, recorder callbacks;
/// - `idle`: wall time not accounted above — parked time between levels,
///   scheduling gaps, and the post-stop drain;
/// - `overrun`: the amount by which the measured categories *exceeded*
///   the wall clock. Timer skew can over-account; clamping `idle` at zero
///   hides that, so the clamped-away excess is kept here and surfaced in
///   the `explore.worker.attribution_overrun_us` histogram.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerAttribution {
    /// Worker index within the pool.
    pub worker: usize,
    /// Seeds this worker claimed and ran.
    pub seeds: u64,
    /// Total wall time this worker spent on the level (claim loop entry
    /// to drain).
    pub wall: Duration,
    /// Seed claiming + result send (cross-thread coordination).
    pub claim: Duration,
    /// Per-seed VM reset.
    pub restore: Duration,
    /// Enabled-action set rebuilds inside the VM step loop.
    pub rebuild: Duration,
    /// Scheduler picks + instruction execution + recorder callbacks.
    pub step: Duration,
    /// Unattributed remainder of `wall`, clamped at zero.
    pub idle: Duration,
    /// Over-accounting clamped away from `idle`: how far the measured
    /// categories exceeded `wall` (timer skew; zero when timers behave).
    pub overrun: Duration,
}

impl WorkerAttribution {
    /// Sum of the directly measured categories (everything but `idle`).
    pub fn accounted(&self) -> Duration {
        self.claim + self.restore + self.rebuild + self.step
    }
}

/// The category names of [`WorkerAttribution`], in table order.
pub const ATTRIBUTION_CATEGORIES: [&str; 5] = ["claim", "restore", "rebuild", "step", "idle"];

/// One stickiness level swept in profiled parallel mode: per-worker time
/// attribution plus the level's canonical failure count. Produced by
/// [`Pipeline::profile_contention`]; rendered by
/// [`ContentionProfile::render_table`].
#[derive(Debug, Clone)]
pub struct ContentionProfile {
    /// The stickiness level that was swept.
    pub stickiness: f64,
    /// The seed budget of the sweep.
    pub seed_budget: u64,
    /// Worker-pool size.
    pub requested_workers: usize,
    /// Canonical candidate count the level produced (deterministic).
    pub failures: usize,
    /// Per-worker attribution, sorted by worker index.
    pub workers: Vec<WorkerAttribution>,
    /// Whether production ([`Pipeline::record_failure`]) would run this
    /// level on the pool. The profiler itself always profiles the
    /// parallel path (a one-worker "contention" profile would answer
    /// nothing), so when this is `false` the profiled configuration
    /// diverges from what production would execute.
    pub production_parallel: bool,
    /// The planner's reason for the production path.
    pub production_reason: String,
}

impl ContentionProfile {
    /// Per-category totals across all workers, in
    /// [`ATTRIBUTION_CATEGORIES`] order.
    pub fn totals(&self) -> [(&'static str, Duration); 5] {
        let mut sums = [Duration::ZERO; 5];
        for w in &self.workers {
            for (slot, v) in sums
                .iter_mut()
                .zip([w.claim, w.restore, w.rebuild, w.step, w.idle])
            {
                *slot += v;
            }
        }
        [
            (ATTRIBUTION_CATEGORIES[0], sums[0]),
            (ATTRIBUTION_CATEGORIES[1], sums[1]),
            (ATTRIBUTION_CATEGORIES[2], sums[2]),
            (ATTRIBUTION_CATEGORIES[3], sums[3]),
            (ATTRIBUTION_CATEGORIES[4], sums[4]),
        ]
    }

    /// The category with the largest pool-wide total — the headline of
    /// the utilization table.
    pub fn dominant_category(&self) -> &'static str {
        self.totals()
            .into_iter()
            .max_by_key(|&(_, d)| d)
            .map(|(name, _)| name)
            .unwrap_or("idle")
    }

    /// Pool-wide wall time (sum over workers).
    pub fn total_wall(&self) -> Duration {
        self.workers.iter().map(|w| w.wall).sum()
    }

    /// Total attribution overrun across workers (timer skew clamped away
    /// from `idle`).
    pub fn total_overrun(&self) -> Duration {
        self.workers.iter().map(|w| w.overrun).sum()
    }

    /// The per-worker utilization table as aligned plain text: one row
    /// per worker with seed count, wall milliseconds, each category as a
    /// percentage of that worker's wall, and the attribution overrun in
    /// microseconds, plus a pool-total row. When the profiled parallel
    /// path diverges from the path production would take, a `NOTE:` line
    /// labels the table.
    pub fn render_table(&self) -> String {
        fn pct(part: Duration, whole: Duration) -> f64 {
            if whole.is_zero() {
                0.0
            } else {
                100.0 * part.as_secs_f64() / whole.as_secs_f64()
            }
        }
        let mut out = String::new();
        if !self.production_parallel {
            let _ = writeln!(
                out,
                "NOTE: profiled path diverges from production — record_failure would run \
                 this level sequentially ({}).",
                self.production_reason
            );
        }
        let _ = writeln!(
            out,
            "{:>6} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "worker",
            "seeds",
            "wall_ms",
            "claim%",
            "restore%",
            "rebuild%",
            "step%",
            "idle%",
            "over_us"
        );
        let mut rows: Vec<(String, u64, Duration, &WorkerAttribution)> = Vec::new();
        for w in &self.workers {
            rows.push((w.worker.to_string(), w.seeds, w.wall, w));
        }
        let total = WorkerAttribution {
            worker: 0,
            seeds: self.workers.iter().map(|w| w.seeds).sum(),
            wall: self.total_wall(),
            claim: self.workers.iter().map(|w| w.claim).sum(),
            restore: self.workers.iter().map(|w| w.restore).sum(),
            rebuild: self.workers.iter().map(|w| w.rebuild).sum(),
            step: self.workers.iter().map(|w| w.step).sum(),
            idle: self.workers.iter().map(|w| w.idle).sum(),
            overrun: self.total_overrun(),
        };
        rows.push(("total".into(), total.seeds, total.wall, &total));
        for (name, seeds, wall, w) in &rows {
            let _ = writeln!(
                out,
                "{:>6} {:>7} {:>9.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8}",
                name,
                seeds,
                wall.as_secs_f64() * 1e3,
                pct(w.claim, *wall),
                pct(w.restore, *wall),
                pct(w.rebuild, *wall),
                pct(w.step, *wall),
                pct(w.idle, *wall),
                w.overrun.as_micros(),
            );
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// One stickiness level handed to the pool. Workers claim chunks of
/// `next..budget`, report every completed seed on `tx`, and finish with a
/// [`WorkerMsg::Done`] carrying their attribution.
struct LevelTask {
    stickiness: f64,
    budget: u64,
    chunk: u64,
    next: AtomicU64,
    stop: AtomicBool,
    profiled: bool,
    tx: Sender<WorkerMsg>,
}

enum WorkerMsg {
    Seed(u64, Option<RecordedFailure>),
    Done(WorkerAttribution),
}

struct PoolState {
    epoch: u64,
    task: Option<Arc<LevelTask>>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    cv: Condvar,
}

/// A pool of parked worker threads that lives for one `record_failure`
/// sweep (or one profiler run). Threads are spawned exactly once; levels
/// are handed off by bumping the epoch, and level completion is detected
/// by counting per-worker [`WorkerMsg::Done`] messages — the channel is
/// never relied on to close.
struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

impl WorkerPool {
    fn post(&self, task: Arc<LevelTask>) {
        let mut st = self.shared.state.lock().expect("pool lock");
        st.epoch += 1;
        st.task = Some(task);
        drop(st);
        self.shared.cv.notify_all();
    }

    /// Parks no more: wakes every worker for exit and records how many
    /// threads this sweep spawned in total (the pool-reuse contract —
    /// `explore.pool.spawned` equals the worker count, not
    /// `levels × workers`).
    fn shutdown(&self) {
        let mut st = self.shared.state.lock().expect("pool lock");
        st.shutdown = true;
        st.task = None;
        drop(st);
        self.shared.cv.notify_all();
        clap_obs::gauge("explore.pool.spawned", self.workers as i64);
    }
}

/// Spawns the pool inside the caller's scope and blocks until every
/// worker has built its scratch VM and parked. The measured
/// spawn-to-parked latency is exactly the cost a sweep pays before the
/// pool can contribute, so it is what the adaptive cutover amortizes.
fn start_pool<'scope, 'env>(
    scope: &'scope Scope<'scope, 'env>,
    pipeline: &'env Pipeline,
    config: &'env PipelineConfig,
    workers: usize,
) -> WorkerPool {
    let t0 = Instant::now();
    let shared = Arc::new(PoolShared {
        state: Mutex::new(PoolState {
            epoch: 0,
            task: None,
            shutdown: false,
        }),
        cv: Condvar::new(),
    });
    let ready = Arc::new(AtomicUsize::new(0));
    for index in 0..workers {
        let shared = Arc::clone(&shared);
        let ready = Arc::clone(&ready);
        scope.spawn(move || {
            let _worker_span = clap_obs::span("explore.worker");
            // Scratch survives every level of the sweep: the VM (heap
            // snapshot, action buffers, recorder tables) is built once
            // here and merely reset per seed from then on.
            let mut vm = pristine_vm(pipeline, config);
            ready.fetch_add(1, Ordering::Release);
            let mut seen_epoch = 0u64;
            loop {
                let task = {
                    let mut st = shared.state.lock().expect("pool lock");
                    loop {
                        if st.shutdown {
                            return;
                        }
                        if st.epoch != seen_epoch {
                            seen_epoch = st.epoch;
                            break Arc::clone(st.task.as_ref().expect("epoch implies task"));
                        }
                        st = shared.cv.wait(st).expect("pool lock");
                    }
                };
                run_level_worker(pipeline, config, index, &task, &mut vm);
            }
        });
    }
    while ready.load(Ordering::Acquire) < workers {
        std::thread::yield_now();
    }
    let startup = t0.elapsed();
    record_pool_startup(startup);
    clap_obs::gauge(
        "explore.pool.startup_ns",
        i64::try_from(startup.as_nanos()).unwrap_or(i64::MAX),
    );
    WorkerPool { shared, workers }
}

/// One worker's share of one level: claim chunks, run seeds, report, and
/// finish with a `Done` message carrying the attribution.
fn run_level_worker(
    pipeline: &Pipeline,
    config: &PipelineConfig,
    index: usize,
    task: &LevelTask,
    vm: &mut Vm<'_>,
) {
    let worker_start = Instant::now();
    let mut busy = Duration::ZERO;
    let mut attr = WorkerAttribution {
        worker: index,
        ..WorkerAttribution::default()
    };
    let profiled = task.profiled;
    'claim: loop {
        let t_claim = profiled.then(Instant::now);
        if task.stop.load(Ordering::Relaxed) {
            break;
        }
        let first = task.next.fetch_add(task.chunk, Ordering::Relaxed);
        if first >= task.budget {
            break;
        }
        let end = first.saturating_add(task.chunk).min(task.budget);
        if let Some(t) = t_claim {
            attr.claim += t.elapsed();
        }
        for seed in first..end {
            // Abandoning the rest of a claimed chunk is safe once the
            // stop flag is up: the watermark never passes an unreported
            // seed, so everything abandoned here sits above every seed
            // the stop decision (and therefore selection) looked at.
            if seed > first && task.stop.load(Ordering::Relaxed) {
                break 'claim;
            }
            let t = Instant::now();
            let found = run_seed(
                pipeline,
                config,
                task.stickiness,
                seed,
                vm,
                profiled.then_some(&mut attr),
            );
            busy += t.elapsed();
            attr.seeds += 1;
            let t_send = profiled.then(Instant::now);
            if task.tx.send(WorkerMsg::Seed(seed, found)).is_err() {
                break 'claim;
            }
            if let Some(t) = t_send {
                attr.claim += t.elapsed();
            }
        }
    }
    clap_obs::observe("explore.worker.seeds", attr.seeds);
    attr.wall = worker_start.elapsed();
    let busy_pct = 100 * busy.as_nanos() as u64 / attr.wall.as_nanos().max(1) as u64;
    clap_obs::observe("explore.worker.busy_pct", busy_pct);
    // Clamp idle at zero but keep the evidence: timer skew where the
    // categories over-account the wall is recorded as `overrun` and
    // surfaced through the histogram instead of being silently discarded.
    let accounted = attr.accounted();
    attr.idle = attr.wall.saturating_sub(accounted);
    attr.overrun = accounted.saturating_sub(attr.wall);
    if profiled && !attr.overrun.is_zero() {
        clap_obs::observe(
            "explore.worker.attribution_overrun_us",
            u64::try_from(attr.overrun.as_micros()).unwrap_or(u64::MAX),
        );
    }
    let _ = task.tx.send(WorkerMsg::Done(attr));
}

/// Hands one level to the pool and collects it: failures carried in from
/// the calibration probe (all below `start`, hence finalized from the
/// outset) plus everything the workers report for `start..budget`.
fn run_level_on_pool(
    pool: &WorkerPool,
    stickiness: f64,
    budget: u64,
    start: u64,
    carried: Vec<RecordedFailure>,
    profile: Option<&mut Vec<WorkerAttribution>>,
) -> Vec<RecordedFailure> {
    let (tx, rx) = crossbeam::channel::unbounded::<WorkerMsg>();
    let task = Arc::new(LevelTask {
        stickiness,
        budget,
        chunk: chunk_size(budget.saturating_sub(start), pool.workers),
        next: AtomicU64::new(start),
        stop: AtomicBool::new(false),
        profiled: profile.is_some(),
        tx,
    });
    pool.post(Arc::clone(&task));
    collect_level(&rx, &task, pool.workers, carried, start, profile)
}

/// The level collector: counts failures as finalized only once all
/// smaller seeds have completed (watermark), fires the early stop at
/// [`CANDIDATES`] finalized failures, and returns once every worker has
/// sent its `Done` for this level.
fn collect_level(
    rx: &Receiver<WorkerMsg>,
    task: &LevelTask,
    workers: usize,
    mut failures: Vec<RecordedFailure>,
    start: u64,
    mut profile: Option<&mut Vec<WorkerAttribution>>,
) -> Vec<RecordedFailure> {
    let mut completed = Watermark::starting_at(start);
    let mut stopped_at: Option<Instant> = None;
    let mut done = 0usize;
    while done < workers {
        match rx.recv().expect("pool workers outlive the level") {
            WorkerMsg::Seed(seed, found) => {
                completed.complete(seed);
                if let Some(failure) = found {
                    failures.push(failure);
                }
                if !task.stop.load(Ordering::Relaxed) {
                    let watermark = completed.watermark();
                    let finalized = failures.iter().filter(|f| f.seed < watermark).count();
                    if finalized >= CANDIDATES {
                        task.stop.store(true, Ordering::Relaxed);
                        stopped_at = Some(Instant::now());
                    }
                }
            }
            WorkerMsg::Done(attr) => {
                done += 1;
                if let Some(list) = profile.as_deref_mut() {
                    list.push(attr);
                }
            }
        }
    }
    // How long the pool took to drain after the early stop fired — the
    // latency cost of finishing in-flight seeds and waking stragglers.
    if let Some(at) = stopped_at {
        clap_obs::gauge(
            "explore.early_stop_ns",
            i64::try_from(at.elapsed().as_nanos()).unwrap_or(i64::MAX),
        );
    }
    failures
}

// ---------------------------------------------------------------------------
// Per-level planning (adaptive cutover)
// ---------------------------------------------------------------------------

/// The path a level takes (or would take), with the planner's reason —
/// reported in the `explore.level.path` event and by the contention
/// profiler's production-path label.
#[derive(Debug, Clone)]
struct LevelPath {
    parallel: bool,
    reason: String,
}

impl LevelPath {
    fn sequential(reason: impl Into<String>) -> Self {
        LevelPath {
            parallel: false,
            reason: reason.into(),
        }
    }

    fn parallel(reason: impl Into<String>) -> Self {
        LevelPath {
            parallel: true,
            reason: reason.into(),
        }
    }
}

/// What [`plan_level`] decided for a level.
enum LevelPlan {
    /// The level completed entirely during planning (the calibration
    /// probe filled it, or the budget fit inside the probe).
    Done(Vec<RecordedFailure>),
    /// Run (or finish) the level sequentially from `start`, carrying the
    /// probe's failures.
    Sequential {
        start: u64,
        carried: Vec<RecordedFailure>,
    },
    /// Hand `start..budget` to the pool (of `workers` threads), carrying
    /// the probe's failures.
    Parallel {
        start: u64,
        carried: Vec<RecordedFailure>,
        workers: usize,
    },
}

/// Decides, per level, whether the remaining sweep is worth a worker
/// pool. This runs fresh for every stickiness level — late levels of a
/// sweep whose early levels were cheap can still choose differently, and
/// the pool-exists discount means only the *first* parallel level pays
/// startup.
///
/// The adaptive policy sweeps a short sequential calibration probe, then
/// compares the estimated remaining sequential tail against the measured
/// pool cost: go parallel iff
/// `tail × (1 − 1/usable_cores) > 2 × pool_cost` (the factor 2 keeps
/// noisy probes near the boundary sequential). The probe is carried into
/// the level either way, so nothing is re-run.
fn plan_level<'p>(
    pipeline: &'p Pipeline,
    config: &PipelineConfig,
    stickiness: f64,
    requested: usize,
    pool_started: bool,
    scratch: &mut Option<Vm<'p>>,
) -> (LevelPlan, LevelPath) {
    let budget = config.seed_budget;
    if requested <= 1 {
        return (
            LevelPlan::Sequential {
                start: 0,
                carried: Vec::new(),
            },
            LevelPath::sequential("one worker requested"),
        );
    }
    match config.explore_cutover {
        ExploreCutover::Fixed(cutover) => {
            if budget < cutover {
                (
                    LevelPlan::Sequential {
                        start: 0,
                        carried: Vec::new(),
                    },
                    LevelPath::sequential(format!(
                        "seed budget {budget} below fixed cutover {cutover}"
                    )),
                )
            } else {
                (
                    LevelPlan::Parallel {
                        start: 0,
                        carried: Vec::new(),
                        workers: requested,
                    },
                    LevelPath::parallel(format!(
                        "seed budget {budget} at/above fixed cutover {cutover}"
                    )),
                )
            }
        }
        ExploreCutover::Adaptive => {
            let usable = requested.min(available_cores());
            if usable <= 1 {
                return (
                    LevelPlan::Sequential {
                        start: 0,
                        carried: Vec::new(),
                    },
                    LevelPath::sequential("single usable core"),
                );
            }
            let probe_n = PROBE_SEEDS.min(budget);
            if probe_n == 0 {
                return (
                    LevelPlan::Done(Vec::new()),
                    LevelPath::sequential("empty seed budget"),
                );
            }
            let t0 = Instant::now();
            let mut failures = Vec::new();
            let mut filled = false;
            {
                let vm = scratch.get_or_insert_with(|| pristine_vm(pipeline, config));
                for seed in 0..probe_n {
                    if let Some(found) = run_seed(pipeline, config, stickiness, seed, vm, None) {
                        failures.push(found);
                        if failures.len() >= CANDIDATES {
                            filled = true;
                            break;
                        }
                    }
                }
            }
            let probe_time = t0.elapsed();
            if filled || probe_n >= budget {
                return (
                    LevelPlan::Done(failures),
                    LevelPath::sequential("level completed inside the calibration probe"),
                );
            }
            let per_seed = probe_time / probe_n as u32;
            // Seeds the sequential sweep would still run: with f probe
            // failures, CANDIDATES failures arrive around seed
            // CANDIDATES·probe_n/f; with none, assume the whole budget.
            let expected_total = if failures.is_empty() {
                budget
            } else {
                (CANDIDATES as u64 * probe_n / failures.len() as u64).min(budget)
            };
            let remaining = expected_total.saturating_sub(probe_n);
            let tail = per_seed.mul_f64(remaining as f64);
            let pool_cost = if pool_started {
                handoff_estimate()
            } else {
                startup_estimate()
            };
            let savings = tail.mul_f64(1.0 - 1.0 / usable as f64);
            if savings > pool_cost.saturating_mul(2) {
                (
                    LevelPlan::Parallel {
                        start: probe_n,
                        carried: failures,
                        workers: usable,
                    },
                    LevelPath::parallel(format!(
                        "estimated sequential tail {:.2}ms amortizes pool cost {:.3}ms \
                         across {usable} cores",
                        tail.as_secs_f64() * 1e3,
                        pool_cost.as_secs_f64() * 1e3,
                    )),
                )
            } else {
                (
                    LevelPlan::Sequential {
                        start: probe_n,
                        carried: failures,
                    },
                    LevelPath::sequential(format!(
                        "estimated sequential tail {:.2}ms does not amortize pool cost \
                         {:.3}ms",
                        tail.as_secs_f64() * 1e3,
                        pool_cost.as_secs_f64() * 1e3,
                    )),
                )
            }
        }
    }
}

/// Plans and executes one stickiness level, starting the pool lazily on
/// the first parallel plan of the sweep and reusing it afterwards.
fn explore_level<'scope, 'env>(
    scope: &'scope Scope<'scope, 'env>,
    pipeline: &'env Pipeline,
    config: &'env PipelineConfig,
    stickiness: f64,
    requested: usize,
    pool: &mut Option<WorkerPool>,
    scratch: &mut Option<Vm<'env>>,
) -> Vec<RecordedFailure> {
    let (plan, path) = plan_level(
        pipeline,
        config,
        stickiness,
        requested,
        pool.is_some(),
        scratch,
    );
    clap_obs::event(
        "explore.level.path",
        &[
            ("stickiness", format!("{stickiness}")),
            (
                "path",
                if path.parallel {
                    "parallel".into()
                } else {
                    "sequential".into()
                },
            ),
            ("reason", path.reason.clone()),
        ],
    );
    match plan {
        LevelPlan::Done(failures) => failures,
        LevelPlan::Sequential { start, carried } => {
            run_sequential(pipeline, config, stickiness, scratch, start, carried)
        }
        LevelPlan::Parallel {
            start,
            carried,
            workers,
        } => {
            let pool = pool.get_or_insert_with(|| start_pool(scope, pipeline, config, workers));
            run_level_on_pool(pool, stickiness, config.seed_budget, start, carried, None)
        }
    }
}

/// Sweeps one stickiness level with the worker pool in profiled mode —
/// the pool path is always profiled (a one-worker "contention" profile
/// would answer nothing), but the profile *reports* which path production
/// would actually take, and [`ContentionProfile::render_table`] labels
/// the table when the two diverge.
pub(crate) fn profile_contention(
    pipeline: &Pipeline,
    config: &PipelineConfig,
    stickiness: f64,
) -> ContentionProfile {
    let requested = effective_workers(config.explore_workers);
    let workers = requested.max(2);
    // Ask the production planner (including its calibration probe) what
    // record_failure would do with this configuration.
    let production = {
        let mut scratch: Option<Vm<'_>> = None;
        let (_plan, path) =
            plan_level(pipeline, config, stickiness, requested, false, &mut scratch);
        path
    };
    let mut attributions: Vec<WorkerAttribution> = Vec::new();
    let failures = std::thread::scope(|scope| {
        let pool = start_pool(scope, pipeline, config, workers);
        let failures = run_level_on_pool(
            &pool,
            stickiness,
            config.seed_budget,
            0,
            Vec::new(),
            Some(&mut attributions),
        );
        pool.shutdown();
        failures
    });
    attributions.sort_by_key(|a| a.worker);
    ContentionProfile {
        stickiness,
        seed_budget: config.seed_budget,
        requested_workers: workers,
        failures: canonical_candidates(failures).len(),
        workers: attributions,
        production_parallel: production.parallel,
        production_reason: production.reason,
    }
}

/// Tracks the contiguous prefix of completed seeds: `watermark()` is the
/// smallest seed that has *not* completed yet, so every failure with
/// `seed < watermark()` is finalized (no smaller seed can still appear).
#[derive(Default)]
struct Watermark {
    next: u64,
    pending: BinaryHeap<Reverse<u64>>,
}

impl Watermark {
    /// A watermark whose contiguous prefix already covers `0..start` —
    /// used when the calibration probe completed those seeds before the
    /// pool took over.
    fn starting_at(start: u64) -> Self {
        Watermark {
            next: start,
            pending: BinaryHeap::new(),
        }
    }

    fn complete(&mut self, seed: u64) {
        self.pending.push(Reverse(seed));
        while self.pending.peek() == Some(&Reverse(self.next)) {
            self.pending.pop();
            self.next += 1;
        }
    }

    fn watermark(&self) -> u64 {
        self.next
    }
}

/// Reduces a level's failures to the canonical candidate set — the
/// [`CANDIDATES`] earliest failing seeds, sorted — which is identical for
/// any worker count.
fn canonical_candidates(mut failures: Vec<RecordedFailure>) -> Vec<RecordedFailure> {
    failures.sort_by_key(|f| f.seed);
    failures.truncate(CANDIDATES);
    failures
}

/// Applies the sequential selection rule to a canonical candidate set:
/// pick the candidate with the fewest SAPs (earliest seed on ties).
fn select(candidates: Vec<RecordedFailure>) -> Option<RecordedFailure> {
    candidates
        .into_iter()
        .min_by_key(|f| (f.stats.saps, f.seed))
}

/// Emits the deterministic per-level counters, derived purely from the
/// canonical candidate set and the configured budget so that any worker
/// count produces identical values. `explore.seeds` is the number of
/// seeds the *sequential* sweep runs for this level: up to the last
/// candidate when the level filled, the whole budget otherwise (parallel
/// overshoot past the stop point is deliberately not counted here — it
/// shows up in the `explore.worker.seeds` histogram instead).
fn emit_level_counters(config: &PipelineConfig, candidates: &[RecordedFailure]) {
    clap_obs::add("explore.levels", 1);
    clap_obs::add("explore.failures", candidates.len() as u64);
    let seeds = if candidates.len() == CANDIDATES {
        candidates.last().map_or(0, |f| f.seed + 1)
    } else {
        config.seed_budget
    };
    clap_obs::add("explore.seeds", seeds);
}

/// The engine entry point backing [`Pipeline::record_failure`]. One
/// thread scope spans the whole stickiness loop: the pool (if any level
/// goes parallel) is spawned once, parked between levels, and shut down
/// on the way out — never respawned per level.
pub(crate) fn record_failure(
    pipeline: &Pipeline,
    config: &PipelineConfig,
) -> Result<RecordedFailure, PipelineError> {
    let _span = clap_obs::span("record");
    let start = Instant::now();
    let requested = effective_workers(config.explore_workers);
    std::thread::scope(|scope| {
        let mut pool: Option<WorkerPool> = None;
        let mut scratch: Option<Vm<'_>> = None;
        let mut result = Err(PipelineError::NoFailureFound);
        for &stickiness in &config.stickiness {
            let failures = explore_level(
                scope,
                pipeline,
                config,
                stickiness,
                requested,
                &mut pool,
                &mut scratch,
            );
            let candidates = canonical_candidates(failures);
            emit_level_counters(config, &candidates);
            if let Some(mut best) = select(candidates) {
                best.record_time = start.elapsed();
                result = Ok(best);
                break;
            }
        }
        if let Some(pool) = &pool {
            pool.shutdown();
        }
        result
    })
}

#[cfg(test)]
mod tests {
    use super::{chunk_size, Watermark};

    #[test]
    fn profile_contention_covers_worker_wall_and_renders() {
        let pipeline = crate::Pipeline::from_source(
            "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost update\"); }",
        )
        .unwrap();
        let mut config = crate::PipelineConfig::new(clap_vm::MemModel::Sc);
        config.seed_budget = 500;
        config.explore_workers = 2;
        let profile = super::profile_contention(&pipeline, &config, 1.0);
        assert_eq!(profile.requested_workers, 2);
        assert_eq!(profile.workers.len(), 2);
        for w in &profile.workers {
            // The five categories must reconstruct the worker's wall time:
            // idle is the clamped remainder and overrun the clamped-away
            // excess, so accounted + idle ≥ wall with the overrun bounding
            // how far it exceeds it.
            let sum = w.accounted() + w.idle;
            assert!(
                sum >= w.wall,
                "worker {}: categories sum {sum:?} vs wall {:?}",
                w.worker,
                w.wall
            );
            assert_eq!(
                sum,
                w.wall + w.overrun,
                "overrun must be exactly the over-accounted excess"
            );
        }
        assert!(!profile.production_reason.is_empty());
        let table = profile.render_table();
        assert!(table.contains("worker"), "header row: {table}");
        assert!(table.contains("total"), "total row: {table}");
        assert!(table.contains("over_us"), "overrun column: {table}");
        if !profile.production_parallel {
            assert!(
                table.contains("NOTE: profiled path diverges"),
                "divergence label: {table}"
            );
        }
        assert!(!profile.dominant_category().is_empty());
    }

    #[test]
    fn watermark_tracks_contiguous_prefix() {
        let mut w = Watermark::default();
        assert_eq!(w.watermark(), 0);
        w.complete(1);
        w.complete(2);
        assert_eq!(w.watermark(), 0, "seed 0 still in flight");
        w.complete(0);
        assert_eq!(w.watermark(), 3);
        w.complete(5);
        assert_eq!(w.watermark(), 3);
        w.complete(4);
        w.complete(3);
        assert_eq!(w.watermark(), 6);
    }

    #[test]
    fn watermark_starting_at_skips_probe_prefix() {
        let mut w = Watermark::starting_at(32);
        assert_eq!(w.watermark(), 32);
        w.complete(33);
        assert_eq!(w.watermark(), 32);
        w.complete(32);
        assert_eq!(w.watermark(), 34);
    }

    #[test]
    fn chunk_size_adapts_to_budget_and_workers() {
        assert_eq!(chunk_size(0, 4), 1, "empty budget still claims minimally");
        assert_eq!(chunk_size(100, 4), 1, "small budgets stay fine-grained");
        assert_eq!(chunk_size(100_000, 4), 390);
        assert_eq!(chunk_size(1_000_000, 4), 1024, "capped for tail balance");
    }
}
