//! The record-phase exploration engine: sweeps the (stickiness, seed)
//! grid of [`Pipeline::record_failure`] hunting a failing interleaving,
//! optionally fanning the sweep over a worker pool.
//!
//! # Determinism contract
//!
//! Parallel exploration returns **byte-identical** artifacts to the
//! sequential sweep, regardless of thread count or timing. The invariants
//! that make this hold:
//!
//! 1. Workers claim seeds with an atomic `fetch_add` and *always* run and
//!    report a claimed seed (the stop check happens before the claim, not
//!    after), so completed seeds form a contiguous prefix of `0..budget`.
//! 2. The collector maintains a *watermark* — the length of that
//!    contiguous completed prefix — and only counts a failure as
//!    *finalized* once every smaller seed has completed. Early stop fires
//!    when [`CANDIDATES`] failures are finalized; at that point the
//!    `CANDIDATES` smallest failing seeds are all known.
//! 3. After the pool drains, failures are sorted by seed and truncated to
//!    [`CANDIDATES`] — exactly the candidate set the sequential loop
//!    collects — and the winner is the candidate minimizing
//!    `(saps, seed)`, which reproduces the sequential selection rule
//!    (strictly fewer SAPs wins, ties keep the earliest seed).
//!
//! Stickiness levels are explored strictly in order; the first level that
//! produces any failure is the last one explored, as in the sequential
//! sweep.
//!
//! # Telemetry
//!
//! The engine reports through [`clap_obs`] in two tiers. *Counters*
//! (`explore.levels`, `explore.failures`, `explore.seeds`) derive from the
//! canonical post-truncation candidate set, so they are byte-identical for
//! any worker count — the determinism contract extends to them. Runtime
//! shape that legitimately varies with thread timing (per-worker seed
//! counts and utilization, early-stop drain latency, parallel overshoot)
//! goes into histograms and gauges instead.

use crate::{Pipeline, PipelineConfig, PipelineError, RecordedFailure};
use clap_profile::{PathRecorder, SyncOrderRecorder};
use clap_symex::FailureContext;
use clap_vm::{Backend, MultiMonitor, Outcome, RandomScheduler, Vm};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Failing runs collected per stickiness level before selection.
pub(crate) const CANDIDATES: usize = 25;

/// Seed budgets below this run the level sequentially even when a worker
/// pool was requested: spawning threads, cloning channels, and draining
/// the pool costs more than sweeping a few thousand seeds on one core.
/// The determinism contract makes the cutover unobservable — sequential
/// and parallel sweeps return byte-identical artifacts by construction.
pub(crate) const SEQUENTIAL_CUTOVER: u64 = 2048;

/// Resolves a worker-count request: `0` means one worker per available
/// core.
pub(crate) fn effective_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Runs one (stickiness, seed) cell of the sweep on a reusable VM,
/// returning the recorded artifact when the run fails its assert.
///
/// [`Vm::reset`] rewinds the VM to its pristine state in place — no
/// snapshot round-trip, no reallocation — which is what makes the
/// per-seed reset equivalent to (and much cheaper than) constructing a
/// fresh VM.
///
/// With `attr` set the cell is profiled: the reset is timed into
/// [`WorkerAttribution::restore`], the run's enabled-action rebuild into
/// `rebuild`, and the rest of the run (scheduler picks, instruction
/// execution, recorder callbacks) into `step`.
fn run_seed(
    pipeline: &Pipeline,
    config: &PipelineConfig,
    stickiness: f64,
    seed: u64,
    vm: &mut Vm<'_>,
    mut attr: Option<&mut WorkerAttribution>,
) -> Option<RecordedFailure> {
    let t0 = attr.is_some().then(Instant::now);
    vm.reset();
    if let (Some(t0), Some(a)) = (t0, attr.as_deref_mut()) {
        a.restore += t0.elapsed();
        vm.enable_step_profile();
    }
    let t_run = attr.is_some().then(Instant::now);
    let mut recorder = PathRecorder::new(&pipeline.tables);
    let mut sync_recorder = config.record_sync_order.then(SyncOrderRecorder::new);
    let mut sched = RandomScheduler::with_stickiness(seed, stickiness);
    let outcome = match sync_recorder.as_mut() {
        Some(sync) => {
            let mut multi = MultiMonitor::new();
            multi.push(&mut recorder);
            multi.push(sync);
            vm.run(&mut sched, &mut multi)
        }
        None => vm.run(&mut sched, &mut recorder),
    };
    if let (Some(t_run), Some(a)) = (t_run, attr) {
        let total = t_run.elapsed();
        let prof = vm.take_step_profile().unwrap_or_default();
        a.rebuild += prof.rebuild;
        a.step += total.saturating_sub(prof.rebuild);
    }
    if let Outcome::AssertFailed { assert, .. } = outcome {
        Some(RecordedFailure {
            seed,
            stickiness,
            log: recorder.finish(),
            failure: FailureContext::from_vm(vm),
            assert,
            stats: *vm.stats(),
            sync_order: sync_recorder.map(SyncOrderRecorder::finish),
            record_time: Duration::ZERO,
        })
    } else {
        None
    }
}

fn pristine_vm<'p>(pipeline: &'p Pipeline, config: &PipelineConfig) -> Vm<'p> {
    let mut vm = Vm::with_compiled(
        &pipeline.program,
        std::sync::Arc::clone(pipeline.compiled()),
        config.model,
        pipeline.sharing.shared_spec(),
        Backend::Bytecode,
    );
    vm.set_step_limit(config.step_limit);
    vm
}

/// The sequential sweep of one stickiness level: seeds in order, stopping
/// at [`CANDIDATES`] failures.
fn explore_level_sequential(
    pipeline: &Pipeline,
    config: &PipelineConfig,
    stickiness: f64,
) -> Vec<RecordedFailure> {
    let mut vm = pristine_vm(pipeline, config);
    let mut failures = Vec::new();
    for seed in 0..config.seed_budget {
        if let Some(found) = run_seed(pipeline, config, stickiness, seed, &mut vm, None) {
            failures.push(found);
            if failures.len() >= CANDIDATES {
                break;
            }
        }
    }
    failures
}

/// Where one parallel-sweep worker spent its wall time, measured by the
/// contention profiler ([`Pipeline::profile_contention`]). The taxonomy
/// follows ROADMAP item 2's suspect list so the profile is direct
/// evidence for (or against) each suspect:
///
/// - `claim`: the atomic `fetch_add` seed claim, the stop check, and the
///   result send to the watermark collector — all cross-thread
///   coordination;
/// - `restore`: [`Vm::reset`] rewinding the VM between seeds (the
///   "per-seed snapshot restore" suspect);
/// - `rebuild`: re-deriving the enabled-action set after every step
///   inside [`Vm::run`];
/// - `step`: the rest of the VM run — scheduler picks, instruction
///   execution, recorder callbacks;
/// - `idle`: wall time not accounted above — thread start/stop, VM
///   construction, scheduling gaps, and the post-stop drain.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerAttribution {
    /// Worker index within the pool.
    pub worker: usize,
    /// Seeds this worker claimed and ran.
    pub seeds: u64,
    /// Total wall time from pool start to worker exit.
    pub wall: Duration,
    /// Seed claiming + result send (cross-thread coordination).
    pub claim: Duration,
    /// Per-seed VM reset.
    pub restore: Duration,
    /// Enabled-action set rebuilds inside the VM step loop.
    pub rebuild: Duration,
    /// Scheduler picks + instruction execution + recorder callbacks.
    pub step: Duration,
    /// Unattributed remainder of `wall`.
    pub idle: Duration,
}

impl WorkerAttribution {
    /// Sum of the directly measured categories (everything but `idle`).
    pub fn accounted(&self) -> Duration {
        self.claim + self.restore + self.rebuild + self.step
    }
}

/// The category names of [`WorkerAttribution`], in table order.
pub const ATTRIBUTION_CATEGORIES: [&str; 5] = ["claim", "restore", "rebuild", "step", "idle"];

/// One stickiness level swept in profiled parallel mode: per-worker time
/// attribution plus the level's canonical failure count. Produced by
/// [`Pipeline::profile_contention`]; rendered by
/// [`ContentionProfile::render_table`].
#[derive(Debug, Clone)]
pub struct ContentionProfile {
    /// The stickiness level that was swept.
    pub stickiness: f64,
    /// The seed budget of the sweep.
    pub seed_budget: u64,
    /// Worker-pool size.
    pub requested_workers: usize,
    /// Canonical candidate count the level produced (deterministic).
    pub failures: usize,
    /// Per-worker attribution, sorted by worker index.
    pub workers: Vec<WorkerAttribution>,
}

impl ContentionProfile {
    /// Per-category totals across all workers, in
    /// [`ATTRIBUTION_CATEGORIES`] order.
    pub fn totals(&self) -> [(&'static str, Duration); 5] {
        let mut sums = [Duration::ZERO; 5];
        for w in &self.workers {
            for (slot, v) in sums
                .iter_mut()
                .zip([w.claim, w.restore, w.rebuild, w.step, w.idle])
            {
                *slot += v;
            }
        }
        [
            (ATTRIBUTION_CATEGORIES[0], sums[0]),
            (ATTRIBUTION_CATEGORIES[1], sums[1]),
            (ATTRIBUTION_CATEGORIES[2], sums[2]),
            (ATTRIBUTION_CATEGORIES[3], sums[3]),
            (ATTRIBUTION_CATEGORIES[4], sums[4]),
        ]
    }

    /// The category with the largest pool-wide total — the headline of
    /// the utilization table.
    pub fn dominant_category(&self) -> &'static str {
        self.totals()
            .into_iter()
            .max_by_key(|&(_, d)| d)
            .map(|(name, _)| name)
            .unwrap_or("idle")
    }

    /// Pool-wide wall time (sum over workers).
    pub fn total_wall(&self) -> Duration {
        self.workers.iter().map(|w| w.wall).sum()
    }

    /// The per-worker utilization table as aligned plain text: one row
    /// per worker with seed count, wall milliseconds, and each category
    /// as a percentage of that worker's wall, plus a pool-total row.
    pub fn render_table(&self) -> String {
        fn pct(part: Duration, whole: Duration) -> f64 {
            if whole.is_zero() {
                0.0
            } else {
                100.0 * part.as_secs_f64() / whole.as_secs_f64()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>6} {:>7} {:>9} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "worker", "seeds", "wall_ms", "claim%", "restore%", "rebuild%", "step%", "idle%"
        );
        let mut rows: Vec<(String, u64, Duration, &WorkerAttribution)> = Vec::new();
        for w in &self.workers {
            rows.push((w.worker.to_string(), w.seeds, w.wall, w));
        }
        let total = WorkerAttribution {
            worker: 0,
            seeds: self.workers.iter().map(|w| w.seeds).sum(),
            wall: self.total_wall(),
            claim: self.workers.iter().map(|w| w.claim).sum(),
            restore: self.workers.iter().map(|w| w.restore).sum(),
            rebuild: self.workers.iter().map(|w| w.rebuild).sum(),
            step: self.workers.iter().map(|w| w.step).sum(),
            idle: self.workers.iter().map(|w| w.idle).sum(),
        };
        rows.push(("total".into(), total.seeds, total.wall, &total));
        for (name, seeds, wall, w) in &rows {
            let _ = writeln!(
                out,
                "{:>6} {:>7} {:>9.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1} {:>8.1}",
                name,
                seeds,
                wall.as_secs_f64() * 1e3,
                pct(w.claim, *wall),
                pct(w.restore, *wall),
                pct(w.rebuild, *wall),
                pct(w.step, *wall),
                pct(w.idle, *wall),
            );
        }
        out
    }
}

/// Sweeps one stickiness level with the worker pool in profiled mode —
/// always parallel, ignoring [`SEQUENTIAL_CUTOVER`] (a one-worker
/// "contention" profile would answer nothing).
pub(crate) fn profile_contention(
    pipeline: &Pipeline,
    config: &PipelineConfig,
    stickiness: f64,
) -> ContentionProfile {
    let workers = effective_workers(config.explore_workers).max(2);
    let attributions = Mutex::new(Vec::new());
    let failures =
        explore_level_parallel(pipeline, config, stickiness, workers, Some(&attributions));
    let mut per_worker = attributions.into_inner().expect("attribution lock");
    per_worker.sort_by_key(|a| a.worker);
    ContentionProfile {
        stickiness,
        seed_budget: config.seed_budget,
        requested_workers: workers,
        failures: canonical_candidates(failures).len(),
        workers: per_worker,
    }
}

/// Tracks the contiguous prefix of completed seeds: `watermark()` is the
/// smallest seed that has *not* completed yet, so every failure with
/// `seed < watermark()` is finalized (no smaller seed can still appear).
#[derive(Default)]
struct Watermark {
    next: u64,
    pending: BinaryHeap<Reverse<u64>>,
}

impl Watermark {
    fn complete(&mut self, seed: u64) {
        self.pending.push(Reverse(seed));
        while self.pending.peek() == Some(&Reverse(self.next)) {
            self.pending.pop();
            self.next += 1;
        }
    }

    fn watermark(&self) -> u64 {
        self.next
    }
}

/// The parallel sweep of one stickiness level. Returns every failure
/// reported by the pool; the caller's sort-and-truncate reduces that to
/// the sequential candidate set (see the module docs for why).
///
/// With `attributions` set, every worker keeps a [`WorkerAttribution`]
/// and pushes it there on exit — the contention-profiler mode behind
/// [`Pipeline::profile_contention`]. The extra timer reads only happen in
/// that mode; the plain sweep pays one `Option` test per seed.
fn explore_level_parallel(
    pipeline: &Pipeline,
    config: &PipelineConfig,
    stickiness: f64,
    workers: usize,
    attributions: Option<&Mutex<Vec<WorkerAttribution>>>,
) -> Vec<RecordedFailure> {
    let next = AtomicU64::new(0);
    let stop = AtomicBool::new(false);
    let (tx, rx) = crossbeam::channel::unbounded::<(u64, Option<RecordedFailure>)>();

    std::thread::scope(|scope| {
        for index in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let stop = &stop;
            scope.spawn(move || {
                let _worker_span = clap_obs::span("explore.worker");
                let worker_start = Instant::now();
                let mut busy = Duration::ZERO;
                let mut seeds_run: u64 = 0;
                let mut attr = attributions.map(|_| WorkerAttribution {
                    worker: index,
                    ..WorkerAttribution::default()
                });
                let mut vm = pristine_vm(pipeline, config);
                loop {
                    // The stop check precedes the claim: a claimed seed is
                    // always run and reported, which keeps completed seeds
                    // a contiguous prefix (the determinism invariant).
                    let t_claim = attr.is_some().then(Instant::now);
                    if stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let seed = next.fetch_add(1, Ordering::Relaxed);
                    if seed >= config.seed_budget {
                        break;
                    }
                    if let (Some(t), Some(a)) = (t_claim, attr.as_mut()) {
                        a.claim += t.elapsed();
                    }
                    let t = Instant::now();
                    let found =
                        run_seed(pipeline, config, stickiness, seed, &mut vm, attr.as_mut());
                    busy += t.elapsed();
                    seeds_run += 1;
                    let t_send = attr.is_some().then(Instant::now);
                    if tx.send((seed, found)).is_err() {
                        break;
                    }
                    if let (Some(t), Some(a)) = (t_send, attr.as_mut()) {
                        a.claim += t.elapsed();
                    }
                }
                clap_obs::observe("explore.worker.seeds", seeds_run);
                let wall = worker_start.elapsed();
                let busy_pct = 100 * busy.as_nanos() as u64 / wall.as_nanos().max(1) as u64;
                clap_obs::observe("explore.worker.busy_pct", busy_pct);
                if let (Some(list), Some(mut a)) = (attributions, attr) {
                    a.seeds = seeds_run;
                    a.wall = wall;
                    a.idle = wall.saturating_sub(a.accounted());
                    list.lock().expect("attribution lock").push(a);
                }
            });
        }
        drop(tx);

        // Collector: count failures as finalized only once all smaller
        // seeds have completed, fire the early stop at CANDIDATES
        // finalized failures, then drain everything still in flight.
        let mut failures: Vec<RecordedFailure> = Vec::new();
        let mut completed = Watermark::default();
        let mut stopped_at: Option<Instant> = None;
        while let Ok((seed, found)) = rx.recv() {
            completed.complete(seed);
            if let Some(failure) = found {
                failures.push(failure);
            }
            if !stop.load(Ordering::Relaxed) {
                let watermark = completed.watermark();
                let finalized = failures.iter().filter(|f| f.seed < watermark).count();
                if finalized >= CANDIDATES {
                    stop.store(true, Ordering::Relaxed);
                    stopped_at = Some(Instant::now());
                }
            }
        }
        // How long the pool took to drain after the early stop fired —
        // the latency cost of invariant 1 (claimed seeds always finish).
        if let Some(at) = stopped_at {
            clap_obs::gauge(
                "explore.early_stop_ns",
                i64::try_from(at.elapsed().as_nanos()).unwrap_or(i64::MAX),
            );
        }
        failures
    })
}

/// Reduces a level's failures to the canonical candidate set — the
/// [`CANDIDATES`] earliest failing seeds, sorted — which is identical for
/// any worker count.
fn canonical_candidates(mut failures: Vec<RecordedFailure>) -> Vec<RecordedFailure> {
    failures.sort_by_key(|f| f.seed);
    failures.truncate(CANDIDATES);
    failures
}

/// Applies the sequential selection rule to a canonical candidate set:
/// pick the candidate with the fewest SAPs (earliest seed on ties).
fn select(candidates: Vec<RecordedFailure>) -> Option<RecordedFailure> {
    candidates
        .into_iter()
        .min_by_key(|f| (f.stats.saps, f.seed))
}

/// Emits the deterministic per-level counters, derived purely from the
/// canonical candidate set and the configured budget so that any worker
/// count produces identical values. `explore.seeds` is the number of
/// seeds the *sequential* sweep runs for this level: up to the last
/// candidate when the level filled, the whole budget otherwise (parallel
/// overshoot past the stop point is deliberately not counted here — it
/// shows up in the `explore.worker.seeds` histogram instead).
fn emit_level_counters(config: &PipelineConfig, candidates: &[RecordedFailure]) {
    clap_obs::add("explore.levels", 1);
    clap_obs::add("explore.failures", candidates.len() as u64);
    let seeds = if candidates.len() == CANDIDATES {
        candidates.last().map_or(0, |f| f.seed + 1)
    } else {
        config.seed_budget
    };
    clap_obs::add("explore.seeds", seeds);
}

/// The engine entry point backing [`Pipeline::record_failure`].
pub(crate) fn record_failure(
    pipeline: &Pipeline,
    config: &PipelineConfig,
) -> Result<RecordedFailure, PipelineError> {
    let _span = clap_obs::span("record");
    let start = Instant::now();
    // Small budgets finish before a worker pool would spin up; force the
    // sequential path below the cutover (see [`SEQUENTIAL_CUTOVER`]). The
    // candidate set is byte-identical either way.
    let workers = if config.seed_budget < SEQUENTIAL_CUTOVER {
        1
    } else {
        effective_workers(config.explore_workers)
    };
    for &stickiness in &config.stickiness {
        let failures = if workers <= 1 {
            explore_level_sequential(pipeline, config, stickiness)
        } else {
            explore_level_parallel(pipeline, config, stickiness, workers, None)
        };
        let candidates = canonical_candidates(failures);
        emit_level_counters(config, &candidates);
        if let Some(mut best) = select(candidates) {
            best.record_time = start.elapsed();
            return Ok(best);
        }
    }
    Err(PipelineError::NoFailureFound)
}

#[cfg(test)]
mod tests {
    use super::Watermark;

    #[test]
    fn profile_contention_covers_worker_wall_and_renders() {
        let pipeline = crate::Pipeline::from_source(
            "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost update\"); }",
        )
        .unwrap();
        let mut config = crate::PipelineConfig::new(clap_vm::MemModel::Sc);
        config.seed_budget = 500;
        config.explore_workers = 2;
        let profile = super::profile_contention(&pipeline, &config, 1.0);
        assert_eq!(profile.requested_workers, 2);
        assert_eq!(profile.workers.len(), 2);
        for w in &profile.workers {
            // The five categories must reconstruct the worker's wall time:
            // idle is the saturating remainder, so the sum can only exceed
            // the wall by timer noise, never undershoot it.
            let sum = w.accounted() + w.idle;
            assert!(
                sum >= w.wall && sum.as_secs_f64() <= w.wall.as_secs_f64() * 1.1,
                "worker {}: categories sum {sum:?} vs wall {:?}",
                w.worker,
                w.wall
            );
        }
        let table = profile.render_table();
        assert!(table.contains("worker"), "header row: {table}");
        assert!(table.contains("total"), "total row: {table}");
        assert!(!profile.dominant_category().is_empty());
    }

    #[test]
    fn watermark_tracks_contiguous_prefix() {
        let mut w = Watermark::default();
        assert_eq!(w.watermark(), 0);
        w.complete(1);
        w.complete(2);
        assert_eq!(w.watermark(), 0, "seed 0 still in flight");
        w.complete(0);
        assert_eq!(w.watermark(), 3);
        w.complete(5);
        assert_eq!(w.watermark(), 3);
        w.complete(4);
        w.complete(3);
        assert_eq!(w.watermark(), 6);
    }
}
