//! The end-to-end CLAP pipeline: **record → decode → symbolically execute
//! → constrain → solve → replay**, as one library call.
//!
//! This is the facade a downstream user adopts: feed it a program (or DSL
//! source) whose assert can fail under some interleaving, and get back a
//! [`ReproductionReport`] containing the bug-reproducing schedule, its
//! witness values, the constraint-system statistics (Table 1 columns) and
//! per-phase timings.
//!
//! # Example
//!
//! ```
//! use clap_core::{Pipeline, PipelineConfig};
//! use clap_vm::MemModel;
//!
//! let pipeline = Pipeline::from_source(
//!     "global int x = 0;
//!      fn w() { let v: int = x; yield; x = v + 1; }
//!      fn main() { let a: thread = fork w(); let b: thread = fork w();
//!                  join a; join b; assert(x == 2, \"lost update\"); }",
//! )?;
//! let report = pipeline.reproduce(&PipelineConfig::new(MemModel::Sc))?;
//! assert!(report.reproduced);
//! assert!(report.context_switches <= 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use clap_analysis::{analyze, SharingAnalysis};
use clap_constraints::{count, ConstraintStats, ConstraintSystem, Schedule, Witness};
use clap_ir::{AssertId, Program};
use clap_obs::Observer;
use clap_parallel::{solve_parallel, ParallelConfig, ParallelOutcome};
use clap_profile::{decode_log, BlTables, DecodeError, PathLog, SyncOrderLog};
use clap_replay::{ReplayError, ReplayReport};
use clap_solver::{solve, SolveOutcome, SolverConfig};
use clap_symex::{execute, FailureContext, SymTrace, SymexError};
use clap_vm::{CompiledProgram, ExecStats, MemModel, Monitor};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

mod explore;
mod portfolio;
mod report_json;

pub use explore::{ContentionProfile, WorkerAttribution, ATTRIBUTION_CATEGORIES};
pub use portfolio::{
    solve_auto, AttemptOutcome, AutoConfig, EngineKind, PortfolioAttempt, PortfolioOutcome,
    PortfolioReport,
};

/// Which offline solver reconstructs the schedule.
#[derive(Debug, Clone)]
pub enum SolverChoice {
    /// The sequential DPLL(T)-style search ([`clap_solver`]).
    Sequential(SolverConfig),
    /// The §4.3 parallel generate-and-validate engine
    /// ([`clap_parallel`]); finds minimal-context-switch schedules.
    Parallel(ParallelConfig),
    /// The adaptive portfolio ([`solve_auto`]): escalates the parallel
    /// engine up a preemption-bound ladder, then falls back to (or races)
    /// the sequential solver. The only choice that is both fast on
    /// few-preemption bugs and complete on the rest.
    Auto(AutoConfig),
}

/// How [`Pipeline::record_failure`] decides, per stickiness level,
/// whether the seed sweep runs on the persistent worker pool or stays
/// sequential. The determinism contract makes the choice unobservable in
/// the artifact — sequential and parallel sweeps return byte-identical
/// results by construction — so this is purely a performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreCutover {
    /// Decide per level from a short sequential calibration probe: go
    /// parallel only when the estimated remaining sequential tail
    /// amortizes the *measured* pool startup (or handoff) cost on the
    /// usable cores. The default.
    Adaptive,
    /// Explicit seed-budget threshold: levels whose budget is below the
    /// value run sequentially, everything else goes to the pool.
    /// `Fixed(0)` forces the pool on for every level (used by tests and
    /// the contention profiler).
    Fixed(u64),
}

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Memory model of the production run (and the replay).
    pub model: MemModel,
    /// Seeds to sweep per stickiness when hunting the failure.
    pub seed_budget: u64,
    /// Random-scheduler stickiness values to sweep.
    pub stickiness: Vec<f64>,
    /// Step limit per exploration run.
    pub step_limit: u64,
    /// The offline solver.
    pub solver: SolverChoice,
    /// Also record the global synchronization order (§6.4 variant): pays
    /// a little recording synchronization to collapse the locking and
    /// wait/signal constraints into hard edges.
    pub record_sync_order: bool,
    /// Worker threads for the record-phase seed sweep (0 = one per
    /// available core). Any value returns the same artifact as `1`: the
    /// exploration engine selects candidates deterministically regardless
    /// of thread timing.
    pub explore_workers: usize,
    /// Sequential/parallel cutover policy for the record-phase sweep,
    /// re-evaluated for every stickiness level (see [`ExploreCutover`]).
    pub explore_cutover: ExploreCutover,
    /// Observability sinks for this run. When any sink is configured,
    /// [`Pipeline::reproduce`] installs the global [`clap_obs`] collector
    /// before the record phase and flushes the sinks afterwards; the
    /// default (no sinks) leaves the collector untouched, so all
    /// instrumentation stays a no-op.
    pub observer: Observer,
}

impl PipelineConfig {
    /// A sensible default configuration for `model` using the sequential
    /// solver.
    pub fn new(model: MemModel) -> Self {
        PipelineConfig {
            model,
            seed_budget: 20_000,
            stickiness: vec![0.9, 0.7, 0.5, 0.3],
            step_limit: 2_000_000,
            solver: SolverChoice::Sequential(SolverConfig::default()),
            record_sync_order: false,
            explore_workers: 0,
            explore_cutover: ExploreCutover::Adaptive,
            observer: Observer::none(),
        }
    }

    /// Enables §6.4 synchronization-order recording.
    pub fn with_sync_order_recording(mut self) -> Self {
        self.record_sync_order = true;
        self
    }

    /// Switches to the parallel generate-and-validate solver.
    pub fn with_parallel_solver(mut self, config: ParallelConfig) -> Self {
        self.solver = SolverChoice::Parallel(config);
        self
    }

    /// Switches to the adaptive solver portfolio.
    pub fn with_auto_solver(mut self, config: AutoConfig) -> Self {
        self.solver = SolverChoice::Auto(config);
        self
    }

    /// Overrides the exploration budget.
    pub fn with_seed_budget(mut self, budget: u64) -> Self {
        self.seed_budget = budget;
        self
    }

    /// Overrides the record-phase worker count (0 = one per core).
    pub fn with_explore_workers(mut self, workers: usize) -> Self {
        self.explore_workers = workers;
        self
    }

    /// Overrides the sequential/parallel cutover policy for the
    /// record-phase sweep.
    pub fn with_explore_cutover(mut self, cutover: ExploreCutover) -> Self {
        self.explore_cutover = cutover;
        self
    }

    /// Attaches observability sinks (trace/metrics files, stderr summary)
    /// to this pipeline run.
    pub fn with_observer(mut self, observer: Observer) -> Self {
        self.observer = observer;
        self
    }
}

/// Pipeline failures.
#[derive(Debug)]
pub enum PipelineError {
    /// The DSL source did not parse/check.
    Frontend(clap_ir::Error),
    /// No explored seed manifested a failure.
    NoFailureFound,
    /// The recorded log did not decode against the program.
    Decode(DecodeError),
    /// Symbolic execution rejected the trace.
    Symex(SymexError),
    /// The constraints are unsatisfiable, *certified by a complete
    /// search* (should not happen for a recorded failure — it indicates a
    /// modeling gap).
    Unsat,
    /// A bounded schedule search exhausted its preemption bounds without
    /// finding a schedule — and without covering the full schedule space,
    /// so this is **not** an unsatisfiability verdict. Retry with larger
    /// bounds, or use [`SolverChoice::Auto`], which escalates and falls
    /// back to a complete engine on its own.
    SearchExhausted,
    /// The solver ran out of budget.
    SolverBudget,
    /// The computed schedule did not replay.
    Replay(ReplayError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Frontend(e) => write!(f, "front end: {e}"),
            PipelineError::NoFailureFound => write!(f, "no failing interleaving found"),
            PipelineError::Decode(e) => write!(f, "log decoding: {e}"),
            PipelineError::Symex(e) => write!(f, "symbolic execution: {e}"),
            PipelineError::Unsat => write!(f, "constraints unsatisfiable"),
            PipelineError::SearchExhausted => write!(
                f,
                "bounded schedule search exhausted without certifying \
                 unsatisfiability (try larger bounds or the auto solver)"
            ),
            PipelineError::SolverBudget => write!(f, "solver budget exhausted"),
            PipelineError::Replay(e) => write!(f, "replay: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// A recorded failing execution: what CLAP ships out of production.
#[derive(Debug)]
pub struct RecordedFailure {
    /// The seed/stickiness that triggered it (exploration detail, not
    /// part of the paper's artifact).
    pub seed: u64,
    /// Stickiness used.
    pub stickiness: f64,
    /// The thread-local path log.
    pub log: PathLog,
    /// The crash context.
    pub failure: FailureContext,
    /// The failing assert site.
    pub assert: AssertId,
    /// Execution statistics of the recorded run.
    pub stats: ExecStats,
    /// The synchronization-order log, when §6.4 recording was enabled.
    pub sync_order: Option<SyncOrderLog>,
    /// Wall time the recording sweep spent finding this failure.
    pub record_time: Duration,
}

/// Per-phase wall-time accounting for one reproduction: the six pipeline
/// phases plus the end-to-end total. The same durations are exported as a
/// root span tree through [`clap_obs`] when a collector is installed, and
/// the phases are guaranteed to sum to within a few percent of `total`
/// (the remainder is report assembly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimings {
    /// Record phase: the exploration sweep that found the failure.
    pub record: Duration,
    /// Log decoding.
    pub decode: Duration,
    /// Path-directed symbolic execution.
    pub symex: Duration,
    /// Constraint generation (including §6.4 sync-order application and
    /// statistics counting).
    pub constrain: Duration,
    /// Offline solving (sequential or parallel).
    pub solve: Duration,
    /// Schedule-enforced replay.
    pub replay: Duration,
    /// End-to-end wall time of the reproduction.
    pub total: Duration,
}

impl PhaseTimings {
    /// Sum of the six phase durations.
    pub fn phase_sum(&self) -> Duration {
        self.record + self.decode + self.symex + self.constrain + self.solve + self.replay
    }
}

/// The end-to-end result.
#[derive(Debug)]
pub struct ReproductionReport {
    /// Threads in the recorded execution.
    pub threads: usize,
    /// Shared variables found by the static analysis (`#SV`).
    pub shared_vars: usize,
    /// Instructions executed in the recorded run (`#Inst`).
    pub instructions: u64,
    /// Conditional branches executed (`#Br`).
    pub branches: u64,
    /// Shared access points in the trace (`#SAPs`).
    pub saps: usize,
    /// Constraint-system size (`#Constraints`, `#Variables`).
    pub constraints: ConstraintStats,
    /// Path-log size in bytes (Table 2 space column).
    pub log_bytes: usize,
    /// Time spent decoding + symbolically executing + building
    /// constraints (`Time-symbolic`). Always equals
    /// `phases.decode + phases.symex + phases.constrain`.
    pub time_symbolic: Duration,
    /// Time spent solving (`Time-solve`). Always equals `phases.solve`.
    pub time_solve: Duration,
    /// Per-phase wall-time breakdown (record/decode/symex/constrain/
    /// solve/replay + total).
    pub phases: PhaseTimings,
    /// The schedule rendered as one letter per position (`M`, `A`, `B`,
    /// …) — the compact preemption-structure view, precomputed here so
    /// report consumers need not re-derive the symbolic trace.
    pub schedule_letters: String,
    /// Preemptive context switches of the computed schedule (`#cs`).
    pub context_switches: usize,
    /// The computed schedule.
    pub schedule: Schedule,
    /// Concrete witness (values + reads-from).
    pub witness: Witness,
    /// The solver attempts that produced the schedule, and which engine
    /// won. Single-entry for [`SolverChoice::Sequential`]/
    /// [`SolverChoice::Parallel`]; the full attempt ladder for
    /// [`SolverChoice::Auto`].
    pub portfolio: PortfolioReport,
    /// The replay verification.
    pub replay: ReplayReport,
    /// `true` when replay fired the recorded assert.
    pub reproduced: bool,
    /// The failing seed the recording phase used.
    pub seed: u64,
}

/// A prepared pipeline over one program.
#[derive(Debug)]
pub struct Pipeline {
    program: Program,
    sharing: SharingAnalysis,
    tables: BlTables,
    compiled: Arc<CompiledProgram>,
}

impl Pipeline {
    /// Builds the pipeline from a lowered program.
    pub fn new(program: Program) -> Self {
        let sharing = analyze(&program);
        let tables = BlTables::build(&program);
        let compiled = Arc::new(CompiledProgram::new(&program));
        Pipeline {
            program,
            sharing,
            tables,
            compiled,
        }
    }

    /// Builds the pipeline from DSL source.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Frontend`] on parse/check errors.
    pub fn from_source(source: &str) -> Result<Self, PipelineError> {
        let program = clap_ir::parse(source).map_err(PipelineError::Frontend)?;
        Ok(Pipeline::new(program))
    }

    /// The lowered program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The sharing analysis result.
    pub fn sharing(&self) -> &SharingAnalysis {
        &self.sharing
    }

    /// The program lowered to flat bytecode, compiled once at
    /// construction and shared by every VM the pipeline spins up.
    pub fn compiled(&self) -> &Arc<CompiledProgram> {
        &self.compiled
    }

    /// Phase 1: explores seeded schedules *with the CLAP recorder
    /// attached* until an assert fails, returning the recorded artifact.
    ///
    /// Several failing runs (up to 25) are collected and the one with the
    /// fewest shared access points is kept: for store-buffer bugs the
    /// cleanest failing run is near-sequential with delayed drains, and a
    /// small trace is what keeps the offline search tractable (the paper
    /// triggers failures with carefully placed timing delays, which has
    /// the same minimal-perturbation effect).
    ///
    /// With [`PipelineConfig::explore_workers`] ≠ 1 the sweep fans out
    /// over a worker pool; the exploration engine guarantees the returned
    /// artifact is identical to the sequential sweep's.
    ///
    /// # Errors
    ///
    /// [`PipelineError::NoFailureFound`] when the budget is exhausted.
    pub fn record_failure(
        &self,
        config: &PipelineConfig,
    ) -> Result<RecordedFailure, PipelineError> {
        explore::record_failure(self, config)
    }

    /// Sweeps one stickiness level with the exploration worker pool in
    /// *profiled* mode, attributing each worker's wall time across seed
    /// claiming, VM restore, enabled-action rebuild, VM stepping and idle
    /// (see [`WorkerAttribution`]). Always profiles the parallel engine —
    /// a one-worker "contention" profile would answer nothing — but the
    /// returned profile reports which path production would actually take
    /// under the configured [`ExploreCutover`], and the rendered table is
    /// labelled when the two diverge. The `dbgcontend` probe in
    /// `clap-bench` renders the result as a utilization table.
    pub fn profile_contention(
        &self,
        config: &PipelineConfig,
        stickiness: f64,
    ) -> ContentionProfile {
        explore::profile_contention(self, config, stickiness)
    }

    /// Phase 2a: decodes the log and symbolically executes the paths.
    ///
    /// # Errors
    ///
    /// Decoding or symbolic-execution mismatches (corrupt artifacts).
    pub fn symbolic_trace(&self, recorded: &RecordedFailure) -> Result<SymTrace, PipelineError> {
        let paths = decode_log(&self.program, &self.tables, &recorded.log)
            .map_err(PipelineError::Decode)?;
        execute(
            &self.program,
            &self.sharing.shared_spec(),
            &paths,
            &recorded.failure,
        )
        .map_err(PipelineError::Symex)
    }

    /// Phase 2b+3: builds constraints, solves, and replays. The full
    /// offline side given a recorded failure.
    ///
    /// # Errors
    ///
    /// Solver/replay failures as the respective [`PipelineError`]s.
    pub fn reproduce_from(
        &self,
        config: &PipelineConfig,
        recorded: &RecordedFailure,
    ) -> Result<ReproductionReport, PipelineError> {
        let mut phases = PhaseTimings {
            record: recorded.record_time,
            ..PhaseTimings::default()
        };
        let offline_start = Instant::now();

        let t = Instant::now();
        let paths = {
            let _s = clap_obs::span("decode");
            decode_log(&self.program, &self.tables, &recorded.log).map_err(PipelineError::Decode)?
        };
        phases.decode = t.elapsed();

        let t = Instant::now();
        let trace = {
            let _s = clap_obs::span("symex");
            execute(
                &self.program,
                &self.sharing.shared_spec(),
                &paths,
                &recorded.failure,
            )
            .map_err(PipelineError::Symex)?
        };
        phases.symex = t.elapsed();

        let t = Instant::now();
        let (system, stats) = {
            let _s = clap_obs::span("constrain");
            let mut system = ConstraintSystem::build(&self.program, &trace, config.model);
            if let Some(sync_order) = &recorded.sync_order {
                system
                    .apply_sync_order(sync_order)
                    .map_err(|e| PipelineError::Symex(clap_symex::SymexError(e.to_string())))?;
            }
            let stats = count(&system);
            (system, stats)
        };
        phases.constrain = t.elapsed();

        let t = Instant::now();
        let (schedule, witness, portfolio) = {
            let _s = clap_obs::span("solve");
            match &config.solver {
                SolverChoice::Sequential(solver_config) => {
                    let outcome = solve(&self.program, &system, *solver_config);
                    let report =
                        |o| PortfolioReport::single(EngineKind::Sequential, o, t.elapsed());
                    match outcome {
                        SolveOutcome::Sat(solution) => (
                            solution.schedule,
                            solution.witness,
                            report(AttemptOutcome::Found),
                        ),
                        // The sequential search is complete: Unsat here is
                        // a certificate.
                        SolveOutcome::Unsat(_) => return Err(PipelineError::Unsat),
                        SolveOutcome::Timeout(_) => return Err(PipelineError::SolverBudget),
                    }
                }
                SolverChoice::Parallel(parallel_config) => {
                    match solve_parallel(&self.program, &system, *parallel_config) {
                        ParallelOutcome::Found {
                            schedule, witness, ..
                        } => {
                            let report = PortfolioReport::single(
                                EngineKind::Parallel,
                                AttemptOutcome::Found,
                                t.elapsed(),
                            );
                            (schedule, witness, report)
                        }
                        // A bounded search that came up empty is only an
                        // unsatisfiability proof when the engine certifies
                        // it covered the whole schedule space — and the
                        // channel/mailbox encoding is incomplete, so
                        // traces with channel ops never certify Unsat.
                        ParallelOutcome::Exhausted(stats) if stats.complete => {
                            if trace.has_channel_ops() || trace.has_atomic_ops() {
                                return Err(PipelineError::SearchExhausted);
                            }
                            return Err(PipelineError::Unsat);
                        }
                        ParallelOutcome::Exhausted(_) => {
                            return Err(PipelineError::SearchExhausted)
                        }
                        ParallelOutcome::Budget(_) => return Err(PipelineError::SolverBudget),
                    }
                }
                SolverChoice::Auto(auto_config) => {
                    match solve_auto(&self.program, &system, auto_config) {
                        PortfolioOutcome::Found {
                            schedule,
                            witness,
                            report,
                        } => (schedule, witness, report),
                        PortfolioOutcome::Unsat(_) => {
                            if trace.has_channel_ops() || trace.has_atomic_ops() {
                                return Err(PipelineError::SolverBudget);
                            }
                            return Err(PipelineError::Unsat);
                        }
                        PortfolioOutcome::Budget(_) => return Err(PipelineError::SolverBudget),
                    }
                }
            }
        };
        phases.solve = t.elapsed();

        let t = Instant::now();
        let replay_report = {
            let _s = clap_obs::span("replay");
            clap_replay::replay_compiled(
                &self.program,
                Arc::clone(&self.compiled),
                config.model,
                self.sharing.shared_spec(),
                &trace,
                &schedule,
                recorded.assert,
                &mut clap_vm::NullMonitor,
            )
            .map_err(PipelineError::Replay)?
        };
        phases.replay = t.elapsed();

        let context_switches = schedule.context_switches(&trace);
        clap_obs::gauge(
            "replay.context_switches",
            i64::try_from(context_switches).unwrap_or(i64::MAX),
        );
        phases.total = phases.record + offline_start.elapsed();
        Ok(ReproductionReport {
            threads: trace.thread_count(),
            shared_vars: self.sharing.shared_count(),
            instructions: recorded.stats.instructions,
            branches: recorded.stats.branches,
            saps: trace.sap_count(),
            constraints: stats,
            log_bytes: recorded.log.size_bytes(),
            time_symbolic: phases.decode + phases.symex + phases.constrain,
            time_solve: phases.solve,
            phases,
            context_switches,
            schedule_letters: schedule.thread_letters(&trace),
            schedule,
            witness,
            portfolio,
            reproduced: replay_report.reproduced,
            replay: replay_report,
            seed: recorded.seed,
        })
    }

    /// Re-replays an already-computed schedule for `recorded` with an
    /// arbitrary [`Monitor`] attached.
    ///
    /// This is the differential-checking entry point: an external oracle
    /// (`clap-check`) replays the pipeline's schedule under its own
    /// event-fingerprinting monitor and compares the observed execution
    /// against its exhaustively enumerated failing set — certifying the
    /// schedule against something other than the pipeline's own replayer.
    ///
    /// # Errors
    ///
    /// Decode/symex errors for a corrupt artifact, or
    /// [`PipelineError::Replay`] when the schedule does not replay.
    pub fn replay_with_monitor(
        &self,
        config: &PipelineConfig,
        recorded: &RecordedFailure,
        schedule: &Schedule,
        monitor: &mut dyn Monitor,
    ) -> Result<ReplayReport, PipelineError> {
        let trace = self.symbolic_trace(recorded)?;
        clap_replay::replay_compiled(
            &self.program,
            Arc::clone(&self.compiled),
            config.model,
            self.sharing.shared_spec(),
            &trace,
            schedule,
            recorded.assert,
            monitor,
        )
        .map_err(PipelineError::Replay)
    }

    /// The whole pipeline in one call.
    ///
    /// When [`PipelineConfig::observer`] has any sink configured, the
    /// global [`clap_obs`] collector is installed for the duration of the
    /// run and the sinks are flushed before returning (on both success
    /// and failure); sink I/O errors go to stderr rather than failing the
    /// reproduction.
    ///
    /// # Errors
    ///
    /// Any phase's [`PipelineError`].
    pub fn reproduce(&self, config: &PipelineConfig) -> Result<ReproductionReport, PipelineError> {
        config.observer.install();
        let result = self.reproduce_inner(config);
        if let Err(e) = config.observer.flush() {
            eprintln!("clap-obs: failed to write sink: {e}");
        }
        result
    }

    fn reproduce_inner(
        &self,
        config: &PipelineConfig,
    ) -> Result<ReproductionReport, PipelineError> {
        let t0 = Instant::now();
        let recorded = self.record_failure(config)?;
        let mut report = self.reproduce_from(config, &recorded)?;
        report.phases.total = t0.elapsed();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOST_UPDATE: &str = "global int x = 0;
         fn w() { let v: int = x; yield; x = v + 1; }
         fn main() { let a: thread = fork w(); let b: thread = fork w();
                     join a; join b; assert(x == 2, \"lost\"); }";

    #[test]
    fn end_to_end_sequential() {
        let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
        let report = pipeline
            .reproduce(&PipelineConfig::new(MemModel::Sc))
            .unwrap();
        assert!(report.reproduced);
        assert_eq!(report.threads, 3);
        assert_eq!(report.shared_vars, 1);
        assert!(report.saps >= 9);
        assert!(report.constraints.total_clauses() > 0);
        assert!(report.log_bytes > 0);
    }

    #[test]
    fn end_to_end_parallel_gets_minimal_cs() {
        let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
        let config =
            PipelineConfig::new(MemModel::Sc).with_parallel_solver(ParallelConfig::default());
        let report = pipeline.reproduce(&config).unwrap();
        assert!(report.reproduced);
        assert_eq!(report.context_switches, 1, "minimal preemption count");
    }

    #[test]
    fn pso_pipeline_round_trips() {
        let pipeline = Pipeline::from_source(
            "global int data = 0; global int flag = 0; global int seen = -1;
             fn writer() { data = 1; flag = 1; }
             fn reader() { let f: int = flag; if (f == 1) { seen = data; } }
             fn main() {
                 let w: thread = fork writer(); let r: thread = fork reader();
                 join w; join r;
                 assert(seen != 0, \"MP\");
             }",
        )
        .unwrap();
        let mut config = PipelineConfig::new(MemModel::Pso);
        config.stickiness = vec![0.5, 0.3, 0.7];
        let report = pipeline.reproduce(&config).unwrap();
        assert!(report.reproduced);
    }

    #[test]
    fn no_failure_reported_for_correct_program() {
        let pipeline = Pipeline::from_source(
            "global int x = 0; mutex m;
             fn w() { lock(m); x = x + 1; unlock(m); }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2); }",
        )
        .unwrap();
        let config = PipelineConfig::new(MemModel::Sc).with_seed_budget(50);
        assert!(matches!(
            pipeline.reproduce(&config),
            Err(PipelineError::NoFailureFound)
        ));
    }

    #[test]
    fn sync_order_recording_round_trips() {
        // §6.4 variant: same bug, sync order recorded; the pipeline must
        // still reproduce, and the recorded orders must appear as extra
        // hard edges in the constraint system.
        let src = "global int x = 0; mutex m;
             fn w() { lock(m); let v: int = x; unlock(m); yield; lock(m); x = v + 1; unlock(m); }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }";
        let pipeline = Pipeline::from_source(src).unwrap();
        let config = PipelineConfig::new(MemModel::Sc).with_sync_order_recording();
        let recorded = pipeline.record_failure(&config).unwrap();
        let sync = recorded.sync_order.as_ref().expect("sync order recorded");
        assert!(
            sync.event_count() >= 8,
            "4 critical sections = 8 mutex events"
        );
        let report = pipeline.reproduce_from(&config, &recorded).unwrap();
        assert!(report.reproduced);

        // The sync-order chains are extra hard edges vs the plain system.
        let trace = pipeline.symbolic_trace(&recorded).unwrap();
        let plain = ConstraintSystem::build(pipeline.program(), &trace, MemModel::Sc);
        let mut chained = plain.clone();
        let added = chained.apply_sync_order(sync).unwrap();
        assert!(added > 0);
        assert_eq!(chained.hard_edges.len(), plain.hard_edges.len() + added);
    }

    #[test]
    fn capped_exhaustion_is_not_unsat() {
        // A parallel search that exhausts a bound too small to reach the
        // bug must report SearchExhausted — never Unsat, which is a
        // completeness claim the capped engine cannot make.
        let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
        let config = PipelineConfig::new(MemModel::Sc);
        let recorded = pipeline.record_failure(&config).unwrap();
        let capped = PipelineConfig::new(MemModel::Sc).with_parallel_solver(ParallelConfig {
            max_cs: 0,
            ..ParallelConfig::default()
        });
        let err = pipeline.reproduce_from(&capped, &recorded).unwrap_err();
        assert!(matches!(err, PipelineError::SearchExhausted), "got {err:?}");
    }

    #[test]
    fn zero_timeout_is_solver_budget() {
        let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
        let config = PipelineConfig::new(MemModel::Sc);
        let recorded = pipeline.record_failure(&config).unwrap();
        let starved = PipelineConfig::new(MemModel::Sc).with_parallel_solver(ParallelConfig {
            timeout: Some(Duration::ZERO),
            ..ParallelConfig::default()
        });
        let err = pipeline.reproduce_from(&starved, &recorded).unwrap_err();
        assert!(matches!(err, PipelineError::SolverBudget), "got {err:?}");
    }

    #[test]
    fn auto_certifies_genuine_unsat() {
        // Rewrite a real failing trace's bug predicate to `false`: the
        // portfolio must certify unsatisfiability (Unsat, not Budget) —
        // either through a ladder that cleanly covered every preemption
        // point, or through the complete sequential fallback.
        let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
        let config = PipelineConfig::new(MemModel::Sc);
        let recorded = pipeline.record_failure(&config).unwrap();
        let mut trace = pipeline.symbolic_trace(&recorded).unwrap();
        trace.bug = trace.arena.constant(0);
        let system = ConstraintSystem::build(pipeline.program(), &trace, MemModel::Sc);
        let outcome = solve_auto(pipeline.program(), &system, &AutoConfig::default());
        let PortfolioOutcome::Unsat(report) = outcome else {
            panic!("expected a certified unsat, got {outcome:?}")
        };
        let last = report.attempts.last().expect("attempts on record");
        assert!(
            matches!(
                last.outcome,
                AttemptOutcome::Unsat | AttemptOutcome::Exhausted
            ),
            "the certifying attempt must be on record: {report:?}"
        );
        assert_eq!(report.winner, None);
    }

    #[test]
    fn auto_pipeline_reproduces_and_names_winner() {
        let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
        let config = PipelineConfig::new(MemModel::Sc).with_auto_solver(AutoConfig::default());
        let report = pipeline.reproduce(&config).unwrap();
        assert!(report.reproduced);
        assert!(
            report.portfolio.winner.is_some(),
            "the winning engine must be named: {:?}",
            report.portfolio
        );
        assert!(!report.portfolio.attempts.is_empty());
    }

    #[test]
    fn auto_portfolio_is_deterministic_without_racing() {
        // Racing disabled + one validator worker makes every attempt
        // deterministic, so the same recording must yield the same
        // schedule on repeated solves.
        let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
        let config = PipelineConfig::new(MemModel::Sc);
        let recorded = pipeline.record_failure(&config).unwrap();
        let trace = pipeline.symbolic_trace(&recorded).unwrap();
        let system = ConstraintSystem::build(pipeline.program(), &trace, MemModel::Sc);
        let auto = AutoConfig {
            parallel: ParallelConfig {
                workers: 1,
                ..ParallelConfig::default()
            },
            ..AutoConfig::default()
        };
        let solve_once = || match solve_auto(pipeline.program(), &system, &auto) {
            PortfolioOutcome::Found {
                schedule, report, ..
            } => (schedule, report),
            other => panic!("expected a schedule, got {other:?}"),
        };
        let (schedule_a, report_a) = solve_once();
        let (schedule_b, report_b) = solve_once();
        assert_eq!(schedule_a.order, schedule_b.order);
        assert_eq!(report_a.winner, report_b.winner);
        assert_eq!(report_a.attempts.len(), report_b.attempts.len());
    }

    #[test]
    fn racing_portfolio_still_finds_a_schedule() {
        // With racing enabled the sequential solver runs concurrently
        // with the ladder and the loser is cancelled; whichever engine
        // wins, the result must be a validated schedule and the raced
        // attempt must appear in the report.
        let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
        let config = PipelineConfig::new(MemModel::Sc);
        let recorded = pipeline.record_failure(&config).unwrap();
        let trace = pipeline.symbolic_trace(&recorded).unwrap();
        let system = ConstraintSystem::build(pipeline.program(), &trace, MemModel::Sc);
        let auto = AutoConfig::default().with_racing();
        let outcome = solve_auto(pipeline.program(), &system, &auto);
        let PortfolioOutcome::Found {
            schedule, report, ..
        } = outcome
        else {
            panic!("expected a schedule, got {outcome:?}")
        };
        clap_constraints::validate(pipeline.program(), &system, &schedule).unwrap();
        assert!(report.winner.is_some());
        assert!(
            report
                .attempts
                .iter()
                .any(|a| a.engine == EngineKind::Sequential),
            "the raced sequential attempt must be on record: {report:?}"
        );
    }

    #[test]
    fn recorded_artifact_is_reusable() {
        // One recording, two solves (both solvers agree).
        let pipeline = Pipeline::from_source(LOST_UPDATE).unwrap();
        let config = PipelineConfig::new(MemModel::Sc);
        let recorded = pipeline.record_failure(&config).unwrap();
        let seq = pipeline.reproduce_from(&config, &recorded).unwrap();
        let par_config =
            PipelineConfig::new(MemModel::Sc).with_parallel_solver(ParallelConfig::default());
        let par = pipeline.reproduce_from(&par_config, &recorded).unwrap();
        assert!(seq.reproduced && par.reproduced);
        assert_eq!(seq.saps, par.saps);
    }
}
