//! Path-directed symbolic execution (the reproduction's KLEE, adapted as
//! §5 describes): each thread is re-executed along its decoded block walk,
//! every shared load returns a fresh symbolic value, branch outcomes become
//! path conditions, and the failing assert becomes the bug predicate.
//!
//! Threads are processed in creation order so fork-argument expressions
//! flow from parent to child; otherwise threads are independent — there is
//! exactly one memory state per thread, never a path search.

use crate::expr::{ExprArena, ExprId, SymVarId};
use crate::trace::{PathCond, Sap, SapId, SapKind, SymAddr, SymTrace, SymVarOrigin, ThreadIdx};
use clap_ir::ast::BinOp;
use clap_ir::{AssertId, GlobalId, Instr, Operand, Program, Rvalue, Terminator};
use clap_profile::{ActivationPath, ThreadPath};
use clap_vm::{Lineage, SharedSpec, Status, Vm};
use std::collections::HashMap;
use std::fmt;

/// Where each still-live thread stopped when the bug fired — the crash
/// context. The paper gets the equivalent information from the core dump /
/// runtime assertion site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureContext {
    /// The failing assert site.
    pub assert: AssertId,
    /// The thread that executed the failing assert.
    pub failing: Lineage,
    /// Per still-live thread: the instruction offsets of every frame
    /// (outermost first) and whether the thread had completed the release
    /// phase of a `wait`.
    pub stops: HashMap<Lineage, ThreadStop>,
}

/// One live thread's stop position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadStop {
    /// Instruction offset of each frame, outermost first. The offset is
    /// the index of the *next unexecuted* instruction of that frame's
    /// current block (for the failing thread's top frame: the assert
    /// itself).
    pub frame_ips: Vec<usize>,
    /// `true` when the thread is parked in a `wait` whose mutex-release
    /// phase already happened (so the release SAP is part of the trace).
    pub wait_released: bool,
}

impl FailureContext {
    /// Builds the context from a VM that stopped with
    /// [`clap_vm::Outcome::AssertFailed`].
    ///
    /// # Panics
    ///
    /// Panics if the VM did not stop at an assert failure.
    pub fn from_vm(vm: &Vm<'_>) -> Self {
        let Some(clap_vm::Outcome::AssertFailed { assert, thread }) = vm.outcome().cloned() else {
            panic!("FailureContext requires an assert-failed outcome");
        };
        let failing = vm.thread(thread).lineage.clone();
        let mut stops = HashMap::new();
        for t in vm.threads() {
            if t.status == Status::Exited {
                continue;
            }
            stops.insert(
                t.lineage.clone(),
                ThreadStop {
                    frame_ips: t.frames.iter().map(|f| f.ip).collect(),
                    wait_released: t.waiting_reacquire.is_some(),
                },
            );
        }
        FailureContext {
            assert,
            failing,
            stops,
        }
    }
}

/// Errors when the log, the program and the failure context disagree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymexError(pub String);

impl fmt::Display for SymexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "symbolic execution failed: {}", self.0)
    }
}

impl std::error::Error for SymexError {}

/// Runs path-directed symbolic execution over decoded thread paths.
///
/// `shared` decides which globals produce SAPs and symbolic values;
/// everything else stays concrete (or symbolically thread-local).
///
/// # Errors
///
/// Returns [`SymexError`] when the paths cannot be walked against the
/// program (corrupt logs or a mismatched failure context).
pub fn execute(
    program: &Program,
    shared: &SharedSpec,
    paths: &[ThreadPath],
    failure: &FailureContext,
) -> Result<SymTrace, SymexError> {
    let mut exec = Executor {
        program,
        shared,
        failure,
        arena: ExprArena::new(),
        saps: Vec::new(),
        per_thread: vec![Vec::new(); paths.len()],
        path_conds: Vec::new(),
        sym_vars: Vec::new(),
        bug: None,
        lineage_to_idx: paths
            .iter()
            .enumerate()
            .map(|(i, p)| (p.lineage.clone(), ThreadIdx(i as u32)))
            .collect(),
        pending_args: HashMap::new(),
        nonshared: HashMap::new(),
        instrs: 0,
    };
    // Main takes no arguments.
    exec.pending_args.insert(Lineage::main(), Vec::new());
    for (i, path) in paths.iter().enumerate() {
        exec.run_thread(ThreadIdx(i as u32), path)?;
    }
    clap_obs::add("symex.instructions", exec.instrs);
    clap_obs::add("symex.saps", exec.saps.len() as u64);
    clap_obs::add("symex.expr_nodes", exec.arena.len() as u64);
    let bug = exec
        .bug
        .ok_or_else(|| SymexError("failing assert never reached on the recorded path".into()))?;
    Ok(SymTrace {
        arena: exec.arena,
        saps: exec.saps,
        per_thread: exec.per_thread,
        lineages: paths.iter().map(|p| p.lineage.clone()).collect(),
        path_conds: exec.path_conds,
        bug,
        sym_vars: exec.sym_vars,
    })
}

struct Executor<'a> {
    program: &'a Program,
    shared: &'a SharedSpec,
    failure: &'a FailureContext,
    arena: ExprArena,
    saps: Vec<Sap>,
    per_thread: Vec<Vec<SapId>>,
    path_conds: Vec<PathCond>,
    sym_vars: Vec<SymVarOrigin>,
    bug: Option<ExprId>,
    lineage_to_idx: HashMap<Lineage, ThreadIdx>,
    /// Entry arguments for threads not yet executed (set by parent forks).
    pending_args: HashMap<Lineage, Vec<ExprId>>,
    /// Symbolic images of non-shared global cells, keyed by (global, cell).
    nonshared: HashMap<(GlobalId, usize), ExprId>,
    /// Instructions symbolically executed, across all threads.
    instrs: u64,
}

/// Per-thread execution bookkeeping.
struct ThreadCtx<'p> {
    idx: ThreadIdx,
    lineage: Lineage,
    po: u64,
    forks: u32,
    /// Remaining frame stop offsets (outermost first) for truncated
    /// activations.
    stops: &'p [usize],
    wait_released: bool,
    is_failing: bool,
}

impl<'a> Executor<'a> {
    fn err(&self, msg: impl Into<String>) -> SymexError {
        SymexError(msg.into())
    }

    fn run_thread(&mut self, idx: ThreadIdx, path: &ThreadPath) -> Result<(), SymexError> {
        let args = self
            .pending_args
            .remove(&path.lineage)
            .ok_or_else(|| self.err(format!("thread {} was never forked", path.lineage)))?;
        let stop = self.failure.stops.get(&path.lineage);
        let stops: Vec<usize> = stop.map(|s| s.frame_ips.clone()).unwrap_or_default();
        let mut ctx = ThreadCtx {
            idx,
            lineage: path.lineage.clone(),
            po: 0,
            forks: 0,
            stops: &stops,
            wait_released: stop.map(|s| s.wait_released).unwrap_or(false),
            is_failing: path.lineage == self.failure.failing,
        };
        self.run_activation(&mut ctx, &path.root, args)?;
        Ok(())
    }

    fn push_sap(&mut self, ctx: &mut ThreadCtx<'_>, kind: SapKind) -> SapId {
        let id = SapId(self.saps.len() as u32);
        self.saps.push(Sap {
            thread: ctx.idx,
            po: ctx.po,
            kind,
        });
        self.per_thread[ctx.idx.index()].push(id);
        ctx.po += 1;
        id
    }

    fn operand(&mut self, locals: &[ExprId], op: Operand) -> ExprId {
        match op {
            Operand::Local(l) => locals[l.index()],
            Operand::Const(c) => self.arena.constant(c),
        }
    }

    /// Executes one activation; returns its return-value expression.
    fn run_activation(
        &mut self,
        ctx: &mut ThreadCtx<'_>,
        act: &ActivationPath,
        args: Vec<ExprId>,
    ) -> Result<Option<ExprId>, SymexError> {
        let func = self.program.function(act.func);
        let zero = self.arena.constant(0);
        let mut locals = vec![zero; func.locals.len()];
        locals[..args.len()].copy_from_slice(&args);

        // Truncated activations consume the next frame stop offset.
        let my_stop = if act.completed {
            None
        } else {
            let Some((&ip, rest)) = ctx.stops.split_first() else {
                return Err(self.err(format!(
                    "truncated activation of `{}` without a stop offset",
                    func.name
                )));
            };
            ctx.stops = rest;
            Some(ip)
        };

        if act.blocks.first() != Some(&func.entry) {
            return Err(self.err(format!(
                "activation of `{}` does not start at entry",
                func.name
            )));
        }

        let mut call_iter = act.calls.iter();
        for (bi, &block_id) in act.blocks.iter().enumerate() {
            let block = func.block(block_id);
            let is_last = bi + 1 == act.blocks.len();
            let limit = match (is_last, my_stop) {
                (true, Some(ip)) => ip,
                _ => block.instrs.len(),
            };
            self.instrs += limit as u64;
            if limit > block.instrs.len() {
                return Err(self.err("stop offset beyond block length"));
            }
            for instr in &block.instrs[..limit] {
                self.exec_instr(ctx, instr, &mut locals, &mut call_iter)?;
            }
            if is_last {
                if let Some(ip) = my_stop {
                    // The failing thread stops *at* its assert: evaluate it
                    // as the bug predicate.
                    if ctx.is_failing && ctx.stops.is_empty() {
                        let Some(Instr::Assert { cond, id }) = block.instrs.get(ip) else {
                            return Err(self.err(format!(
                                "failing thread stops at a non-assert in `{}`",
                                func.name
                            )));
                        };
                        if *id != self.failure.assert {
                            return Err(self.err("stopped at a different assert site"));
                        }
                        let c = self.operand(&locals, *cond);
                        let bug = self.arena.not(c);
                        self.bug = Some(bug);
                    } else if ctx.wait_released && ctx.stops.is_empty() {
                        // Parked in a wait whose release phase executed:
                        // the release SAP is part of the trace.
                        if let Some(Instr::Wait { mutex, .. }) = block.instrs.get(ip) {
                            self.push_sap(ctx, SapKind::Unlock(*mutex));
                        } else {
                            return Err(self.err("wait_released but not stopped at a wait"));
                        }
                    }
                    return Ok(None);
                }
                // Completed activation: the final block must return.
                let Terminator::Return(v) = &block.term else {
                    return Err(self.err(format!(
                        "activation of `{}` ends without a return",
                        func.name
                    )));
                };
                return Ok(v.map(|op| self.operand(&locals, op)));
            }
            // Interior block: derive the path condition from the edge taken.
            let next = act.blocks[bi + 1];
            match &block.term {
                Terminator::Goto(t) => {
                    if *t != next {
                        return Err(self.err("goto does not match recorded path"));
                    }
                }
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.operand(&locals, *cond);
                    let taken_then = next == *then_bb;
                    if !taken_then && next != *else_bb {
                        return Err(self.err("branch target does not match recorded path"));
                    }
                    let constraint = if taken_then {
                        self.arena.truthy(c)
                    } else {
                        self.arena.not(c)
                    };
                    // Concrete conditions fold to 1 and carry no information.
                    if self.arena.as_const(constraint) != Some(1) {
                        self.path_conds.push(PathCond {
                            thread: ctx.idx,
                            expr: constraint,
                        });
                    }
                    if self.arena.as_const(constraint) == Some(0) {
                        return Err(self.err("recorded path contradicts concrete branch"));
                    }
                }
                Terminator::Return(_) => {
                    return Err(self.err("return in the middle of a recorded path"));
                }
            }
        }
        Err(self.err("activation with no blocks"))
    }

    fn exec_instr<'c>(
        &mut self,
        ctx: &mut ThreadCtx<'_>,
        instr: &Instr,
        locals: &mut [ExprId],
        call_iter: &mut impl Iterator<Item = &'c ActivationPath>,
    ) -> Result<(), SymexError> {
        match instr {
            Instr::Assign { dst, rv } => {
                let v = match rv {
                    Rvalue::Use(op) => self.operand(locals, *op),
                    Rvalue::Unary(op, a) => {
                        let a = self.operand(locals, *a);
                        self.arena.unary(*op, a)
                    }
                    Rvalue::Binary(op, a, b) => {
                        let a = self.operand(locals, *a);
                        let b = self.operand(locals, *b);
                        self.arena.binary(*op, a, b)
                    }
                };
                locals[dst.index()] = v;
            }
            Instr::Load { dst, global, index } => {
                let idx = index.map(|op| self.operand(locals, op));
                if self.shared.contains(*global) {
                    let var = SymVarId(self.sym_vars.len() as u32);
                    let sap = self.push_sap(
                        ctx,
                        SapKind::Read {
                            addr: SymAddr {
                                global: *global,
                                index: idx,
                            },
                            var,
                        },
                    );
                    self.sym_vars.push(SymVarOrigin { read: sap });
                    locals[dst.index()] = self.arena.sym(var);
                } else {
                    locals[dst.index()] = self.read_nonshared(*global, idx)?;
                }
            }
            Instr::Store { global, index, src } => {
                let idx = index.map(|op| self.operand(locals, op));
                let value = self.operand(locals, *src);
                if self.shared.contains(*global) {
                    self.push_sap(
                        ctx,
                        SapKind::Write {
                            addr: SymAddr {
                                global: *global,
                                index: idx,
                            },
                            value,
                        },
                    );
                } else {
                    self.write_nonshared(*global, idx, value)?;
                }
            }
            Instr::Lock(m) => {
                self.push_sap(ctx, SapKind::Lock(*m));
            }
            Instr::Unlock(m) => {
                self.push_sap(ctx, SapKind::Unlock(*m));
            }
            Instr::Fork { dst, func, args } => {
                ctx.forks += 1;
                let child_lineage = ctx.lineage.child(ctx.forks);
                let child = *self
                    .lineage_to_idx
                    .get(&child_lineage)
                    .ok_or_else(|| self.err(format!("no path log for thread {child_lineage}")))?;
                let argv: Vec<ExprId> = args.iter().map(|a| self.operand(locals, *a)).collect();
                // The child's entry function must match the fork target.
                let _ = func;
                self.pending_args.insert(child_lineage, argv);
                self.push_sap(ctx, SapKind::Fork { child });
                locals[dst.index()] = self.arena.constant(child.0 as i64);
            }
            Instr::Join { handle } => {
                let h = self.operand(locals, *handle);
                let Some(child) = self.arena.as_const(h) else {
                    return Err(self.err("join handle is not concrete"));
                };
                if child < 0 || child as usize >= self.per_thread.len() {
                    return Err(self.err(format!("join of unknown thread {child}")));
                }
                self.push_sap(
                    ctx,
                    SapKind::Join {
                        child: ThreadIdx(child as u32),
                    },
                );
            }
            Instr::Wait { cond, mutex } => {
                // A completed wait contributes both phases: the release
                // (an unlock) and the completion (reacquire + match with a
                // signal).
                self.push_sap(ctx, SapKind::Unlock(*mutex));
                self.push_sap(
                    ctx,
                    SapKind::Wait {
                        cond: *cond,
                        mutex: *mutex,
                    },
                );
            }
            Instr::Signal(c) => {
                self.push_sap(ctx, SapKind::Signal(*c));
            }
            Instr::Broadcast(c) => {
                self.push_sap(ctx, SapKind::Broadcast(*c));
            }
            Instr::Send { chan, src } => {
                let value = self.operand(locals, *src);
                self.push_sap(ctx, SapKind::Send { chan: *chan, value });
            }
            Instr::Recv { dst, chan } => {
                // The received value depends on the schedule: fresh
                // symbolic, resolved by the send-matching constraints.
                let var = SymVarId(self.sym_vars.len() as u32);
                let sap = self.push_sap(ctx, SapKind::Recv { chan: *chan, var });
                self.sym_vars.push(SymVarOrigin { read: sap });
                locals[dst.index()] = self.arena.sym(var);
            }
            Instr::TrySend { dst, chan, src } => {
                let value = self.operand(locals, *src);
                let var = SymVarId(self.sym_vars.len() as u32);
                let sap = self.push_sap(
                    ctx,
                    SapKind::TrySend {
                        chan: *chan,
                        value,
                        var,
                    },
                );
                self.sym_vars.push(SymVarOrigin { read: sap });
                locals[dst.index()] = self.arena.sym(var);
            }
            Instr::TryRecv { dst, chan } => {
                let var = SymVarId(self.sym_vars.len() as u32);
                let sap = self.push_sap(ctx, SapKind::TryRecv { chan: *chan, var });
                self.sym_vars.push(SymVarOrigin { read: sap });
                locals[dst.index()] = self.arena.sym(var);
            }
            Instr::ChanClose(c) => {
                self.push_sap(ctx, SapKind::ChanClose(*c));
            }
            Instr::SpawnActor { dst, func, args } => {
                ctx.forks += 1;
                let child_lineage = ctx.lineage.child(ctx.forks);
                let child = *self
                    .lineage_to_idx
                    .get(&child_lineage)
                    .ok_or_else(|| self.err(format!("no path log for actor {child_lineage}")))?;
                let argv: Vec<ExprId> = args.iter().map(|a| self.operand(locals, *a)).collect();
                let _ = func;
                self.pending_args.insert(child_lineage, argv);
                self.push_sap(ctx, SapKind::SpawnActor { child });
                locals[dst.index()] = self.arena.constant(child.0 as i64);
            }
            Instr::MailboxSend { target, src } => {
                let h = self.operand(locals, *target);
                let Some(target) = self.arena.as_const(h) else {
                    return Err(self.err("mailbox_send target is not concrete"));
                };
                if target < 0 || target as usize >= self.per_thread.len() {
                    return Err(self.err(format!("mailbox_send to unknown thread {target}")));
                }
                let value = self.operand(locals, *src);
                self.push_sap(
                    ctx,
                    SapKind::MailboxSend {
                        target: ThreadIdx(target as u32),
                        value,
                    },
                );
            }
            Instr::MailboxRecv { dst } => {
                let var = SymVarId(self.sym_vars.len() as u32);
                let sap = self.push_sap(ctx, SapKind::MailboxRecv { var });
                self.sym_vars.push(SymVarOrigin { read: sap });
                locals[dst.index()] = self.arena.sym(var);
            }
            Instr::AtomicLoad { dst, global, ord } => {
                // Like a shared read: the observed value depends on the
                // schedule, so it is a fresh symbolic resolved by the
                // modification-order constraints.
                let var = SymVarId(self.sym_vars.len() as u32);
                let sap = self.push_sap(
                    ctx,
                    SapKind::AtomicLoad {
                        global: *global,
                        ord: *ord,
                        var,
                    },
                );
                self.sym_vars.push(SymVarOrigin { read: sap });
                locals[dst.index()] = self.arena.sym(var);
            }
            Instr::AtomicStore { global, src, ord } => {
                let value = self.operand(locals, *src);
                self.push_sap(
                    ctx,
                    SapKind::AtomicStore {
                        global: *global,
                        ord: *ord,
                        value,
                    },
                );
            }
            Instr::AtomicRmw {
                dst,
                global,
                src,
                ord,
            } => {
                // One indivisible read-modify-write: the old value is a
                // fresh symbolic, the written value is `old + delta`.
                let delta = self.operand(locals, *src);
                let var = SymVarId(self.sym_vars.len() as u32);
                let old = self.arena.sym(var);
                let value = self.arena.binary(BinOp::Add, old, delta);
                let sap = self.push_sap(
                    ctx,
                    SapKind::AtomicRmw {
                        global: *global,
                        ord: *ord,
                        var,
                        value,
                    },
                );
                self.sym_vars.push(SymVarOrigin { read: sap });
                locals[dst.index()] = old;
            }
            Instr::AtomicCas {
                dst,
                global,
                expected,
                desired,
                ord,
            } => {
                // Modelled as an unconditional write of
                // `ite(old == expected, desired, old)`: a failed CAS
                // rewrites the old value, keeping every CAS in the
                // modification order without a success flag.
                let expected = self.operand(locals, *expected);
                let desired = self.operand(locals, *desired);
                let var = SymVarId(self.sym_vars.len() as u32);
                let old = self.arena.sym(var);
                let eq = self.arena.binary(BinOp::Eq, old, expected);
                let value = self.arena.ite(eq, desired, old);
                let sap = self.push_sap(
                    ctx,
                    SapKind::AtomicCas {
                        global: *global,
                        ord: *ord,
                        var,
                        expected,
                        value,
                    },
                );
                self.sym_vars.push(SymVarOrigin { read: sap });
                locals[dst.index()] = old;
            }
            Instr::Yield => {}
            Instr::Assert { cond, id } => {
                // Asserts on the executed path passed: that is part of the
                // observed behaviour (the failing assert is handled at the
                // stop offset, never here).
                let _ = id;
                let c = self.operand(locals, *cond);
                let constraint = self.arena.truthy(c);
                if self.arena.as_const(constraint) != Some(1) {
                    self.path_conds.push(PathCond {
                        thread: ctx.idx,
                        expr: constraint,
                    });
                }
            }
            Instr::Call { dst, func, args } => {
                let argv: Vec<ExprId> = args.iter().map(|a| self.operand(locals, *a)).collect();
                let callee = call_iter
                    .next()
                    .ok_or_else(|| self.err("call without a recorded activation"))?;
                if callee.func != *func {
                    return Err(self.err(format!(
                        "recorded activation is `{}`, call targets `{}`",
                        self.program.function(callee.func).name,
                        self.program.function(*func).name
                    )));
                }
                let ret = self.run_activation(ctx, callee, argv)?;
                if let (Some(d), Some(v)) = (dst, ret) {
                    locals[d.index()] = v;
                }
            }
        }
        Ok(())
    }

    /// Reads a thread-local global cell, building an ITE chain when the
    /// index is symbolic (the ordered-write-list treatment of §5, applied
    /// to the thread-local image).
    fn read_nonshared(
        &mut self,
        global: GlobalId,
        idx: Option<ExprId>,
    ) -> Result<ExprId, SymexError> {
        let decl = &self.program.globals[global.index()];
        let cells = decl.cells();
        let init = if decl.len.is_some() { 0 } else { decl.init };
        let cell_value = |this: &mut Self, c: usize| {
            this.nonshared
                .get(&(global, c))
                .copied()
                .unwrap_or_else(|| this.arena.constant(init))
        };
        match idx {
            None => Ok(cell_value(self, 0)),
            Some(i) => {
                if let Some(c) = self.arena.as_const(i) {
                    if c < 0 || c as usize >= cells {
                        return Err(self.err(format!("index {c} out of bounds for {}", decl.name)));
                    }
                    return Ok(cell_value(self, c as usize));
                }
                // Symbolic index: fold an ITE over all cells.
                let mut result = self.arena.constant(init);
                for c in 0..cells {
                    let cv = cell_value(self, c);
                    let cc = self.arena.constant(c as i64);
                    let eq = self.arena.binary(BinOp::Eq, i, cc);
                    result = self.arena.ite(eq, cv, result);
                }
                Ok(result)
            }
        }
    }

    fn write_nonshared(
        &mut self,
        global: GlobalId,
        idx: Option<ExprId>,
        value: ExprId,
    ) -> Result<(), SymexError> {
        let decl = &self.program.globals[global.index()];
        let cells = decl.cells();
        match idx {
            None => {
                self.nonshared.insert((global, 0), value);
            }
            Some(i) => {
                if let Some(c) = self.arena.as_const(i) {
                    if c < 0 || c as usize >= cells {
                        return Err(self.err(format!("index {c} out of bounds for {}", decl.name)));
                    }
                    self.nonshared.insert((global, c as usize), value);
                } else {
                    // Symbolic index: every cell conditionally updates.
                    let init = if decl.len.is_some() { 0 } else { decl.init };
                    for c in 0..cells {
                        let old = self
                            .nonshared
                            .get(&(global, c))
                            .copied()
                            .unwrap_or_else(|| self.arena.constant(init));
                        let cc = self.arena.constant(c as i64);
                        let eq = self.arena.binary(BinOp::Eq, i, cc);
                        let nv = self.arena.ite(eq, value, old);
                        self.nonshared.insert((global, c), nv);
                    }
                }
            }
        }
        Ok(())
    }
}
