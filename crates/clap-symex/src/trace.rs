//! The symbolic trace: shared access points (SAPs), path conditions and
//! the bug predicate — the inputs to constraint generation (§3).

use crate::expr::{ExprArena, ExprId, SymVarId};
use clap_ir::{AtomicOrd, ChanId, CondId, GlobalId, MutexId, Program};
use clap_vm::Lineage;
use std::fmt;

/// Index of a thread within a [`SymTrace`] (creation order of the recorded
/// run).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadIdx(pub u32);

impl ThreadIdx {
    /// Underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ThreadIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// Identifies one SAP in the trace. Every SAP gets one order variable `O`
/// in the constraint system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SapId(pub u32);

impl SapId {
    /// Underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SapId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A (possibly symbolic) memory location: a global plus an optional
/// element index expression. Scalars have `index == None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymAddr {
    /// The accessed global.
    pub global: GlobalId,
    /// Element index (may be symbolic); `None` for scalars.
    pub index: Option<ExprId>,
}

/// What a SAP does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SapKind {
    /// A shared load; its unknown result is `var`.
    Read {
        /// Location read.
        addr: SymAddr,
        /// The fresh symbolic value it returned.
        var: SymVarId,
    },
    /// A shared store of a (possibly symbolic) value.
    Write {
        /// Location written.
        addr: SymAddr,
        /// Value expression.
        value: ExprId,
    },
    /// Mutex acquisition.
    Lock(MutexId),
    /// Mutex release (also emitted for the release phase of `wait`).
    Unlock(MutexId),
    /// Thread creation; `child` is the new thread.
    Fork {
        /// The created thread.
        child: ThreadIdx,
    },
    /// Join completion on `child`.
    Join {
        /// The joined thread.
        child: ThreadIdx,
    },
    /// Cond-wait completion (mutex reacquired after a signal).
    Wait {
        /// The condition variable.
        cond: CondId,
        /// The reacquired mutex.
        mutex: MutexId,
    },
    /// Signal (wakes at most one wait).
    Signal(CondId),
    /// Broadcast (wakes every parked wait).
    Broadcast(CondId),
    /// Channel send of a (possibly symbolic) value.
    Send {
        /// Destination channel.
        chan: ChanId,
        /// Value expression.
        value: ExprId,
    },
    /// Channel receive; its schedule-dependent result is `var`.
    Recv {
        /// Source channel.
        chan: ChanId,
        /// The fresh symbolic value it returned (`-1` when the channel was
        /// closed and drained).
        var: SymVarId,
    },
    /// Non-blocking channel send; its schedule-dependent 0/1 result is
    /// `var`.
    TrySend {
        /// Destination channel.
        chan: ChanId,
        /// Value expression.
        value: ExprId,
        /// The fresh symbolic success flag.
        var: SymVarId,
    },
    /// Non-blocking channel receive; its schedule-dependent result is
    /// `var` (`-1` when nothing was available).
    TryRecv {
        /// Source channel.
        chan: ChanId,
        /// The fresh symbolic value it returned.
        var: SymVarId,
    },
    /// Channel close.
    ChanClose(ChanId),
    /// Actor spawn; `child` is the new thread.
    SpawnActor {
        /// The created actor thread.
        child: ThreadIdx,
    },
    /// Mailbox append to another thread (concrete target).
    MailboxSend {
        /// The receiving thread.
        target: ThreadIdx,
        /// Value expression.
        value: ExprId,
    },
    /// Mailbox dequeue; its schedule-dependent result is `var`.
    MailboxRecv {
        /// The fresh symbolic value it returned.
        var: SymVarId,
    },
    /// Atomic load; its schedule-dependent result is `var`.
    AtomicLoad {
        /// The atomic location (always a scalar global).
        global: GlobalId,
        /// Memory ordering annotation.
        ord: AtomicOrd,
        /// The fresh symbolic value it returned.
        var: SymVarId,
    },
    /// Atomic store of a (possibly symbolic) value.
    AtomicStore {
        /// The atomic location.
        global: GlobalId,
        /// Memory ordering annotation.
        ord: AtomicOrd,
        /// Value expression.
        value: ExprId,
    },
    /// Atomic fetch-add: reads `var` (the schedule-dependent old value)
    /// and writes `value` (`var + delta`) in one indivisible step.
    AtomicRmw {
        /// The atomic location.
        global: GlobalId,
        /// Memory ordering annotation.
        ord: AtomicOrd,
        /// The fresh symbolic old value it returned.
        var: SymVarId,
        /// The written value expression (`var + delta`).
        value: ExprId,
    },
    /// Atomic compare-and-swap: reads `var` and writes `value`
    /// (`ite(var == expected, desired, var)` — a failed CAS rewrites the
    /// old value, which keeps every CAS a write in the modification
    /// order without a separate success variable).
    AtomicCas {
        /// The atomic location.
        global: GlobalId,
        /// Memory ordering annotation.
        ord: AtomicOrd,
        /// The fresh symbolic old value it returned.
        var: SymVarId,
        /// The compared expression.
        expected: ExprId,
        /// The written value expression.
        value: ExprId,
    },
}

impl SapKind {
    /// `true` for reads/writes (memory SAPs), atomics included.
    pub fn is_memory(&self) -> bool {
        matches!(self, SapKind::Read { .. } | SapKind::Write { .. }) || self.is_atomic()
    }

    /// `true` for C11 atomic operations.
    pub fn is_atomic(&self) -> bool {
        matches!(
            self,
            SapKind::AtomicLoad { .. }
                | SapKind::AtomicStore { .. }
                | SapKind::AtomicRmw { .. }
                | SapKind::AtomicCas { .. }
        )
    }

    /// `true` for synchronization SAPs.
    pub fn is_sync(&self) -> bool {
        !self.is_memory()
    }
}

/// One shared access point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sap {
    /// Executing thread.
    pub thread: ThreadIdx,
    /// Program-order index among the thread's SAPs (matches the VM's
    /// `next_sap_index` numbering exactly).
    pub po: u64,
    /// What the SAP does.
    pub kind: SapKind,
}

/// Where a fresh symbolic variable came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymVarOrigin {
    /// The read SAP that produced it.
    pub read: SapId,
}

/// A per-thread path condition: `expr` must be truthy for the thread to
/// follow its recorded path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathCond {
    /// The constrained thread.
    pub thread: ThreadIdx,
    /// Boolean-valued expression that must hold.
    pub expr: ExprId,
}

/// Everything the offline phase extracts from the recorded paths.
#[derive(Debug, Clone)]
pub struct SymTrace {
    /// Expression store.
    pub arena: ExprArena,
    /// All SAPs; [`SapId`] indexes into this.
    pub saps: Vec<Sap>,
    /// SAP ids per thread, in program order.
    pub per_thread: Vec<Vec<SapId>>,
    /// Thread lineages, indexed by [`ThreadIdx`].
    pub lineages: Vec<Lineage>,
    /// Path conditions (`F_path`), including passing asserts.
    pub path_conds: Vec<PathCond>,
    /// The bug predicate (`F_bug`): truthy iff the failure manifests.
    pub bug: ExprId,
    /// Origins of symbolic variables, indexed by [`SymVarId`].
    pub sym_vars: Vec<SymVarOrigin>,
}

impl SymTrace {
    /// The SAP behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn sap(&self, id: SapId) -> &Sap {
        &self.saps[id.index()]
    }

    /// Number of SAPs (the `#SAPs` column of Table 1).
    pub fn sap_count(&self) -> usize {
        self.saps.len()
    }

    /// Number of threads in the trace.
    pub fn thread_count(&self) -> usize {
        self.per_thread.len()
    }

    /// Whether the trace contains any channel or mailbox operation. The
    /// constraint encoding for these is incomplete (try_* result
    /// variables are grounded by the validator, FIFO/capacity legality is
    /// re-checked rather than encoded), so exhausted searches over such
    /// traces must report a budget event instead of certifying
    /// unsatisfiability.
    pub fn has_channel_ops(&self) -> bool {
        self.saps.iter().any(|s| {
            matches!(
                s.kind,
                SapKind::Send { .. }
                    | SapKind::Recv { .. }
                    | SapKind::TrySend { .. }
                    | SapKind::TryRecv { .. }
                    | SapKind::ChanClose(_)
                    | SapKind::MailboxSend { .. }
                    | SapKind::MailboxRecv { .. }
            )
        })
    }

    /// Whether the trace contains any C11 atomic operation. Like
    /// [`SymTrace::has_channel_ops`], the happens-before encoding for
    /// per-ordering atomics is incomplete (store-to-load forwarding is
    /// pinned, release sequences are approximated), so exhausted searches
    /// over such traces must not certify unsatisfiability.
    pub fn has_atomic_ops(&self) -> bool {
        self.saps.iter().any(|s| s.kind.is_atomic())
    }

    /// The initial value of a global cell (what a read with no earlier
    /// write observes).
    pub fn init_value(program: &Program, global: GlobalId) -> i64 {
        let decl = &program.globals[global.index()];
        if decl.len.is_some() {
            0
        } else {
            decl.init
        }
    }

    /// Renders a SAP for diagnostics and the Figure 3 dump.
    pub fn display_sap(&self, program: &Program, id: SapId) -> String {
        let sap = self.sap(id);
        let name = |g: GlobalId| program.globals[g.index()].name.clone();
        let loc = |addr: &SymAddr| match addr.index {
            None => name(addr.global),
            Some(i) => format!("{}[{}]", name(addr.global), self.arena.display(i)),
        };
        let body = match &sap.kind {
            SapKind::Read { addr, var } => format!("{var} = read {}", loc(addr)),
            SapKind::Write { addr, value } => {
                format!("write {} = {}", loc(addr), self.arena.display(*value))
            }
            SapKind::Lock(m) => format!("lock {}", program.mutexes[m.index()]),
            SapKind::Unlock(m) => format!("unlock {}", program.mutexes[m.index()]),
            SapKind::Fork { child } => format!("fork {child}"),
            SapKind::Join { child } => format!("join {child}"),
            SapKind::Wait { cond, .. } => format!("wait {}", program.conds[cond.index()]),
            SapKind::Signal(c) => format!("signal {}", program.conds[c.index()]),
            SapKind::Broadcast(c) => format!("broadcast {}", program.conds[c.index()]),
            SapKind::Send { chan, value } => format!(
                "send {} {}",
                program.chans[chan.index()].name,
                self.arena.display(*value)
            ),
            SapKind::Recv { chan, var } => {
                format!("{var} = recv {}", program.chans[chan.index()].name)
            }
            SapKind::TrySend { chan, value, var } => format!(
                "{var} = try_send {} {}",
                program.chans[chan.index()].name,
                self.arena.display(*value)
            ),
            SapKind::TryRecv { chan, var } => {
                format!("{var} = try_recv {}", program.chans[chan.index()].name)
            }
            SapKind::ChanClose(c) => format!("close {}", program.chans[c.index()].name),
            SapKind::SpawnActor { child } => format!("spawn_actor {child}"),
            SapKind::MailboxSend { target, value } => {
                format!("mailbox_send {target} {}", self.arena.display(*value))
            }
            SapKind::MailboxRecv { var } => format!("{var} = mailbox_recv"),
            SapKind::AtomicLoad { global, ord, var } => {
                format!("{var} = load.{ord} {}", name(*global))
            }
            SapKind::AtomicStore { global, ord, value } => format!(
                "store.{ord} {} = {}",
                name(*global),
                self.arena.display(*value)
            ),
            SapKind::AtomicRmw {
                global,
                ord,
                var,
                value,
            } => format!(
                "{var} = rmw.{ord} {} -> {}",
                name(*global),
                self.arena.display(*value)
            ),
            SapKind::AtomicCas {
                global,
                ord,
                var,
                expected,
                value,
            } => format!(
                "{var} = cas.{ord} {} ?{} -> {}",
                name(*global),
                self.arena.display(*expected),
                self.arena.display(*value)
            ),
        };
        format!("{id}[{} #{}] {body}", sap.thread, sap.po, body = body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sap_kind_classification() {
        let addr = SymAddr {
            global: GlobalId(0),
            index: None,
        };
        assert!(SapKind::Read {
            addr,
            var: SymVarId(0)
        }
        .is_memory());
        assert!(SapKind::Lock(MutexId(0)).is_sync());
        assert!(!SapKind::Write {
            addr,
            value: ExprId(0)
        }
        .is_sync());
    }

    #[test]
    fn init_values() {
        let p = clap_ir::parse("global int x = 9; global int a[3]; fn main() {}").unwrap();
        assert_eq!(SymTrace::init_value(&p, p.global_by_name("x").unwrap()), 9);
        assert_eq!(SymTrace::init_value(&p, p.global_by_name("a").unwrap()), 0);
    }
}
