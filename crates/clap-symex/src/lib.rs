//! Path-directed symbolic execution for CLAP: replays each thread's
//! recorded control-flow path symbolically, returning fresh symbolic
//! values for shared loads (the `R` variables of the paper) and producing
//! the [`SymTrace`] — shared access points, path conditions `F_path` and
//! the bug predicate `F_bug` — that constraint generation consumes.
//!
//! This crate plays the role KLEE plays in the paper (§5), with the same
//! adaptations: it follows the recorded path of every thread instead of
//! searching, keeps one memory state per thread, and delays symbolic
//! address resolution (array accesses with symbolic indices) to the
//! constraint phase by keeping the index *expression* on each SAP.
//!
//! # Example: the full record → decode → symex front half
//!
//! ```
//! use clap_ir::parse;
//! use clap_profile::{BlTables, PathRecorder, decode_log};
//! use clap_symex::{execute, FailureContext};
//! use clap_vm::{MemModel, RandomScheduler, SharedSpec, Vm};
//!
//! let program = parse(
//!     "global int x = 0;
//!      fn w() { let v: int = x; x = v + 1; }
//!      fn main() {
//!          let a: thread = fork w();
//!          let b: thread = fork w();
//!          join a; join b;
//!          assert(x == 2, \"lost update\");
//!      }",
//! )?;
//! // Find a failing seed.
//! let tables = BlTables::build(&program);
//! for seed in 0.. {
//!     let mut vm = Vm::new(&program, MemModel::Sc);
//!     let mut rec = PathRecorder::new(&tables);
//!     let outcome = vm.run(&mut RandomScheduler::new(seed), &mut rec);
//!     if outcome.is_failure() {
//!         let failure = FailureContext::from_vm(&vm);
//!         let paths = decode_log(&program, &tables, &rec.finish()).unwrap();
//!         let trace = execute(&program, &SharedSpec::All, &paths, &failure).unwrap();
//!         assert!(trace.sap_count() > 0);
//!         break;
//!     }
//! }
//! # Ok::<(), clap_ir::Error>(())
//! ```

pub mod exec;
pub mod expr;
pub mod trace;

pub use exec::{execute, FailureContext, SymexError, ThreadStop};
pub use expr::{ExprArena, ExprId, Node, SymVarId};
pub use trace::{PathCond, Sap, SapId, SapKind, SymAddr, SymTrace, SymVarOrigin, ThreadIdx};

#[cfg(test)]
mod tests {
    use super::*;
    use clap_analysis::analyze;
    use clap_ir::parse;
    use clap_profile::{decode_log, BlTables, PathRecorder};
    use clap_vm::{MemModel, Outcome, RandomScheduler, Vm};

    /// Records executions until one fails, then runs symex on it.
    fn record_failure(
        src: &str,
        model: MemModel,
        max_seed: u64,
    ) -> (clap_ir::Program, SymTrace, Vec<u64>) {
        let program = parse(src).unwrap();
        let sharing = analyze(&program);
        let tables = BlTables::build(&program);
        let mut vm = Vm::with_shared(&program, model, sharing.shared_spec());
        for seed in 0..max_seed {
            vm.reset();
            let mut rec = PathRecorder::new(&tables);
            let outcome = vm.run(&mut RandomScheduler::new(seed), &mut rec);
            if let Outcome::AssertFailed { .. } = outcome {
                let failure = FailureContext::from_vm(&vm);
                let vm_sap_counts: Vec<u64> =
                    vm.threads().iter().map(|t| t.next_sap_index).collect();
                let paths = decode_log(&program, &tables, &rec.finish()).unwrap();
                let trace = execute(&program, &sharing.shared_spec(), &paths, &failure).unwrap();
                return (program, trace, vm_sap_counts);
            }
        }
        panic!("no failing seed found in 0..{max_seed}");
    }

    #[test]
    fn sap_counts_match_vm_exactly() {
        let (_, trace, vm_counts) = record_failure(
            "global int x = 0; mutex m;
             fn w() { lock(m); let v: int = x; unlock(m); yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost update\"); }",
            MemModel::Sc,
            500,
        );
        for (i, &count) in vm_counts.iter().enumerate() {
            assert_eq!(
                trace.per_thread[i].len() as u64,
                count,
                "thread {i} SAP count must match the VM's numbering"
            );
        }
    }

    #[test]
    fn bug_predicate_is_negated_assert() {
        let (_, trace, _) = record_failure(
            "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }",
            MemModel::Sc,
            500,
        );
        // bug = !(R == 2) for the final read R of x: satisfied by R = 1.
        let vars = trace.arena.vars(trace.bug);
        assert_eq!(vars.len(), 1);
        let v = vars[0];
        let sat = trace.arena.eval(trace.bug, &|q| (q == v).then_some(1));
        assert_eq!(sat, Some(1), "R = 1 manifests the bug");
        let unsat = trace.arena.eval(trace.bug, &|q| (q == v).then_some(2));
        assert_eq!(unsat, Some(0), "R = 2 does not");
    }

    #[test]
    fn path_conditions_capture_branches_on_shared_reads() {
        let (_, trace, _) = record_failure(
            "global int flag = 0; global int data = 0;
             fn reader() { let f: int = flag; if (f == 1) { let d: int = data; assert(d == 7, \"mp\"); } }
             fn writer() { data = 7; yield; flag = 1; }
             fn main() { let r: thread = fork reader(); let w: thread = fork writer();
                         join r; join w; }",
            MemModel::Pso,
            8000,
        );
        // The reader's taken branch (f == 1) must appear in F_path.
        assert!(
            !trace.path_conds.is_empty(),
            "branch on a symbolic read produces a path condition"
        );
    }

    #[test]
    fn fork_arguments_flow_to_children() {
        let (program, trace, _) = record_failure(
            "global int x = 0;
             fn w(inc: int) { let v: int = x; yield; x = v + inc; }
             fn main() { let a: thread = fork w(10); let b: thread = fork w(1);
                         join a; join b; assert(x == 11, \"sum\"); }",
            MemModel::Sc,
            2000,
        );
        // Each child writes x = R + inc with its own constant inc.
        let mut incs = Vec::new();
        for sap in &trace.saps {
            if let SapKind::Write { value, .. } = sap.kind {
                // value = R + c ; recover c by evaluating with R = 0.
                if let Some(v) = trace.arena.eval(value, &|_| Some(0)) {
                    incs.push(v);
                }
            }
        }
        incs.sort();
        assert_eq!(incs, vec![1, 10], "program {program:?} produced {incs:?}");
    }

    #[test]
    fn wait_contributes_release_and_completion_saps() {
        let src = "global int ready = 0; global int sum = 0; mutex m; cond c;
             fn consumer() {
                 lock(m);
                 while (ready == 0) { wait(c, m); }
                 sum = sum + 1;
                 unlock(m);
                 assert(sum == 2, \"order\");
             }
             fn main() {
                 let t: thread = fork consumer();
                 lock(m); ready = 1; signal(c); unlock(m);
                 join t;
             }";
        let (_, trace, vm_counts) = record_failure(src, MemModel::Sc, 500);
        // Any completed wait shows up as Unlock followed by Wait in the
        // consumer's SAP sequence.
        let consumer = 1usize;
        let kinds: Vec<&SapKind> = trace.per_thread[consumer]
            .iter()
            .map(|&s| &trace.sap(s).kind)
            .collect();
        let wait_pos = kinds.iter().position(|k| matches!(k, SapKind::Wait { .. }));
        if let Some(p) = wait_pos {
            assert!(
                matches!(kinds[p - 1], SapKind::Unlock(_)),
                "wait completion preceded by its release"
            );
        }
        assert_eq!(trace.per_thread[consumer].len() as u64, vm_counts[consumer]);
    }

    #[test]
    fn truncated_blocked_threads_contribute_only_executed_saps() {
        // Thread b blocks on the mutex held by a (which asserts first).
        let src = "global int x = 0; mutex m;
             fn holder() { lock(m); x = 1; assert(x == 2, \"trap\"); unlock(m); }
             fn waiter() { lock(m); x = 3; unlock(m); }
             fn main() { let a: thread = fork holder(); let b: thread = fork waiter();
                         join a; join b; }";
        let (_, trace, vm_counts) = record_failure(src, MemModel::Sc, 200);
        for (i, &count) in vm_counts.iter().enumerate() {
            assert_eq!(trace.per_thread[i].len() as u64, count, "thread {i}");
        }
        // The blocked waiter has no Lock SAP (it never acquired).
        let waiter_kinds: Vec<&SapKind> = trace.per_thread[2]
            .iter()
            .map(|&s| &trace.sap(s).kind)
            .collect();
        assert!(
            !waiter_kinds.iter().any(|k| matches!(k, SapKind::Lock(_))),
            "blocked lock must not appear in the trace: {waiter_kinds:?}"
        );
    }

    #[test]
    fn symbolic_array_indices_stay_symbolic() {
        let src = "global int a[4]; global int k = 0;
             fn w() { let i: int = k; a[i & 3] = 9; }
             fn main() { k = 1;
                         let t1: thread = fork w(); let t2: thread = fork w();
                         join t1; join t2;
                         let v: int = a[1];
                         assert(v == 0, \"hit\"); }";
        let (_, trace, _) = record_failure(src, MemModel::Sc, 2000);
        let symbolic_writes = trace
            .saps
            .iter()
            .filter(|s| {
                matches!(s.kind, SapKind::Write { addr, .. }
                    if addr.index.is_some_and(|i| trace.arena.as_const(i).is_none()))
            })
            .count();
        assert!(
            symbolic_writes >= 2,
            "array writes keep their symbolic index expressions"
        );
    }

    #[test]
    fn nonshared_globals_stay_concrete() {
        let src = "global int private = 0; global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { private = 40; private = private + 2;
                         let a: thread = fork w(); let b: thread = fork w();
                         join a; join b;
                         assert(x == 2, \"lost\"); }";
        let (program, trace, _) = record_failure(src, MemModel::Sc, 2000);
        let private = program.global_by_name("private").unwrap();
        assert!(
            !trace.saps.iter().any(|s| matches!(
                s.kind,
                SapKind::Read { addr, .. } | SapKind::Write { addr, .. } if addr.global == private
            )),
            "main-private globals produce no SAPs"
        );
    }

    #[test]
    fn calls_are_followed_through_activations() {
        let src = "global int x = 0;
             fn bump() { let v: int = x; yield; x = v + 1; }
             fn w() { bump(); }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }";
        let (_, trace, vm_counts) = record_failure(src, MemModel::Sc, 2000);
        for (i, &count) in vm_counts.iter().enumerate() {
            assert_eq!(trace.per_thread[i].len() as u64, count, "thread {i}");
        }
    }
}
