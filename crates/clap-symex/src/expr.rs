//! Symbolic expressions: an interned DAG arena with constant folding.
//!
//! Every value the symbolic executor manipulates is an [`ExprId`] into an
//! [`ExprArena`]. Shared loads introduce fresh [`SymVarId`]s; everything
//! else is built from constants and operators. Interning keeps the racey-
//! style iterated mixing functions polynomial in memory, and evaluation
//! under a partial assignment is memoized by the caller (the solver).

use clap_ir::ast::{BinOp, UnOp};
use clap_ir::{eval_binop, eval_unop};
use std::collections::HashMap;
use std::fmt;

/// A fresh symbolic value: the unknown result of one shared read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymVarId(pub u32);

impl SymVarId {
    /// Underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SymVarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A node handle in an [`ExprArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ExprId(pub u32);

impl ExprId {
    /// Underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One expression node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// A concrete 64-bit value.
    Const(i64),
    /// A symbolic read result.
    Sym(SymVarId),
    /// Unary operation.
    Unary(UnOp, ExprId),
    /// Binary operation (semantics of [`clap_ir::eval_binop`]).
    Binary(BinOp, ExprId, ExprId),
    /// If-then-else over an integer condition (0 = false); used by
    /// symbolic address resolution.
    Ite(ExprId, ExprId, ExprId),
}

/// The interned expression store.
#[derive(Debug, Clone, Default)]
pub struct ExprArena {
    nodes: Vec<Node>,
    dedup: HashMap<Node, ExprId>,
}

impl ExprArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes have been interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node behind an id.
    ///
    /// # Panics
    ///
    /// Panics if `id` came from a different arena.
    pub fn node(&self, id: ExprId) -> Node {
        self.nodes[id.index()]
    }

    fn intern(&mut self, node: Node) -> ExprId {
        if let Some(&id) = self.dedup.get(&node) {
            return id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(node);
        self.dedup.insert(node, id);
        id
    }

    /// Interns a constant.
    pub fn constant(&mut self, v: i64) -> ExprId {
        self.intern(Node::Const(v))
    }

    /// Interns a symbolic variable reference.
    pub fn sym(&mut self, var: SymVarId) -> ExprId {
        self.intern(Node::Sym(var))
    }

    /// Builds a unary operation, constant-folding when possible.
    pub fn unary(&mut self, op: UnOp, a: ExprId) -> ExprId {
        if let Node::Const(v) = self.node(a) {
            return self.constant(eval_unop(op, v));
        }
        self.intern(Node::Unary(op, a))
    }

    /// Builds a binary operation, constant-folding when possible.
    pub fn binary(&mut self, op: BinOp, a: ExprId, b: ExprId) -> ExprId {
        if let (Node::Const(x), Node::Const(y)) = (self.node(a), self.node(b)) {
            return self.constant(eval_binop(op, x, y));
        }
        // Light algebraic identities keep racey-style chains compact.
        match (op, self.node(a), self.node(b)) {
            (BinOp::Add, _, Node::Const(0)) | (BinOp::Sub, _, Node::Const(0)) => return a,
            (BinOp::Add, Node::Const(0), _) => return b,
            (BinOp::Mul, _, Node::Const(1)) => return a,
            (BinOp::Mul, Node::Const(1), _) => return b,
            (BinOp::And, _, Node::Const(c)) if c != 0 => return self.truthy(a),
            (BinOp::And, Node::Const(c), _) if c != 0 => return self.truthy(b),
            _ => {}
        }
        self.intern(Node::Binary(op, a, b))
    }

    /// Builds an if-then-else.
    pub fn ite(&mut self, cond: ExprId, then_e: ExprId, else_e: ExprId) -> ExprId {
        if let Node::Const(c) = self.node(cond) {
            return if c != 0 { then_e } else { else_e };
        }
        if then_e == else_e {
            return then_e;
        }
        self.intern(Node::Ite(cond, then_e, else_e))
    }

    /// Normalizes an integer to a 0/1 boolean (`e != 0`).
    pub fn truthy(&mut self, e: ExprId) -> ExprId {
        match self.node(e) {
            Node::Const(c) => self.constant((c != 0) as i64),
            Node::Binary(op, _, _) if op.is_comparison() || op.is_logical() => e,
            Node::Unary(UnOp::Not, _) => e,
            _ => {
                let zero = self.constant(0);
                self.intern(Node::Binary(BinOp::Ne, e, zero))
            }
        }
    }

    /// Logical negation of a boolean-valued expression.
    pub fn not(&mut self, e: ExprId) -> ExprId {
        let b = self.truthy(e);
        self.unary(UnOp::Not, b)
    }

    /// Evaluates `id` under a full/partial assignment of symbolic
    /// variables. Returns `None` when an unassigned variable is reached.
    pub fn eval(&self, id: ExprId, assignment: &impl Fn(SymVarId) -> Option<i64>) -> Option<i64> {
        // Iterative evaluation with an explicit stack and a local memo to
        // stay linear in DAG size even for deeply shared expressions.
        let mut memo: HashMap<ExprId, i64> = HashMap::new();
        self.eval_memo(id, assignment, &mut memo)
    }

    /// Like [`ExprArena::eval`], but reusing a caller-provided memo table
    /// across many evaluations under the same assignment.
    pub fn eval_memo(
        &self,
        id: ExprId,
        assignment: &impl Fn(SymVarId) -> Option<i64>,
        memo: &mut HashMap<ExprId, i64>,
    ) -> Option<i64> {
        if let Some(&v) = memo.get(&id) {
            return Some(v);
        }
        let v = match self.node(id) {
            Node::Const(c) => c,
            Node::Sym(s) => assignment(s)?,
            Node::Unary(op, a) => eval_unop(op, self.eval_memo(a, assignment, memo)?),
            Node::Binary(op, a, b) => {
                let x = self.eval_memo(a, assignment, memo)?;
                let y = self.eval_memo(b, assignment, memo)?;
                eval_binop(op, x, y)
            }
            Node::Ite(c, t, e) => {
                if self.eval_memo(c, assignment, memo)? != 0 {
                    self.eval_memo(t, assignment, memo)?
                } else {
                    self.eval_memo(e, assignment, memo)?
                }
            }
        };
        memo.insert(id, v);
        Some(v)
    }

    /// Collects the symbolic variables an expression depends on.
    pub fn vars(&self, id: ExprId) -> Vec<SymVarId> {
        let mut seen_nodes = std::collections::HashSet::new();
        let mut vars = Vec::new();
        let mut stack = vec![id];
        while let Some(e) = stack.pop() {
            if !seen_nodes.insert(e) {
                continue;
            }
            match self.node(e) {
                Node::Const(_) => {}
                Node::Sym(s) => {
                    if !vars.contains(&s) {
                        vars.push(s);
                    }
                }
                Node::Unary(_, a) => stack.push(a),
                Node::Binary(_, a, b) => {
                    stack.push(a);
                    stack.push(b);
                }
                Node::Ite(c, t, e2) => {
                    stack.push(c);
                    stack.push(t);
                    stack.push(e2);
                }
            }
        }
        vars
    }

    /// `Some(v)` when the expression is a constant.
    pub fn as_const(&self, id: ExprId) -> Option<i64> {
        match self.node(id) {
            Node::Const(c) => Some(c),
            _ => None,
        }
    }

    /// Renders an expression as text (for Figure 3-style dumps).
    pub fn display(&self, id: ExprId) -> String {
        match self.node(id) {
            Node::Const(c) => c.to_string(),
            Node::Sym(s) => s.to_string(),
            Node::Unary(UnOp::Neg, a) => format!("-({})", self.display(a)),
            Node::Unary(UnOp::Not, a) => format!("!({})", self.display(a)),
            Node::Binary(op, a, b) => {
                format!("({} {} {})", self.display(a), op, self.display(b))
            }
            Node::Ite(c, t, e) => format!(
                "ite({}, {}, {})",
                self.display(c),
                self.display(t),
                self.display(e)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_dedups() {
        let mut a = ExprArena::new();
        let c1 = a.constant(7);
        let c2 = a.constant(7);
        assert_eq!(c1, c2);
        let s = a.sym(SymVarId(0));
        let e1 = a.binary(BinOp::Add, s, c1);
        let e2 = a.binary(BinOp::Add, s, c2);
        assert_eq!(e1, e2);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn constant_folding() {
        let mut a = ExprArena::new();
        let x = a.constant(6);
        let y = a.constant(7);
        let m = a.binary(BinOp::Mul, x, y);
        assert_eq!(a.as_const(m), Some(42));
        let n = a.unary(UnOp::Neg, m);
        assert_eq!(a.as_const(n), Some(-42));
    }

    #[test]
    fn identities_simplify() {
        let mut a = ExprArena::new();
        let s = a.sym(SymVarId(1));
        let zero = a.constant(0);
        let one = a.constant(1);
        assert_eq!(a.binary(BinOp::Add, s, zero), s);
        assert_eq!(a.binary(BinOp::Mul, one, s), s);
    }

    #[test]
    fn eval_with_assignment() {
        let mut a = ExprArena::new();
        let s0 = a.sym(SymVarId(0));
        let s1 = a.sym(SymVarId(1));
        let sum = a.binary(BinOp::Add, s0, s1);
        let two = a.constant(2);
        let cmp = a.binary(BinOp::Gt, sum, two);
        let assign = |v: SymVarId| Some(if v.0 == 0 { 2 } else { 1 });
        assert_eq!(a.eval(cmp, &assign), Some(1));
        let partial = |v: SymVarId| if v.0 == 0 { Some(2) } else { None };
        assert_eq!(a.eval(cmp, &partial), None);
    }

    #[test]
    fn ite_folds_and_evaluates() {
        let mut a = ExprArena::new();
        let s = a.sym(SymVarId(0));
        let t = a.constant(10);
        let e = a.constant(20);
        let one = a.constant(1);
        assert_eq!(a.ite(one, t, e), t);
        let ite = a.ite(s, t, e);
        assert_eq!(a.eval(ite, &|_| Some(0)), Some(20));
        assert_eq!(a.eval(ite, &|_| Some(5)), Some(10));
        // Same branches collapse.
        assert_eq!(a.ite(s, t, t), t);
    }

    #[test]
    fn vars_collects_dependencies() {
        let mut a = ExprArena::new();
        let s0 = a.sym(SymVarId(0));
        let s1 = a.sym(SymVarId(1));
        let e = a.binary(BinOp::BitXor, s0, s1);
        let e = a.binary(BinOp::Add, e, s0);
        let mut vs = a.vars(e);
        vs.sort();
        assert_eq!(vs, vec![SymVarId(0), SymVarId(1)]);
    }

    #[test]
    fn truthy_and_not() {
        let mut a = ExprArena::new();
        let s = a.sym(SymVarId(0));
        let b = a.truthy(s);
        assert_eq!(a.eval(b, &|_| Some(42)), Some(1));
        let n = a.not(s);
        assert_eq!(a.eval(n, &|_| Some(42)), Some(0));
        assert_eq!(a.eval(n, &|_| Some(0)), Some(1));
        // Comparisons are already boolean: truthy is the identity.
        let zero = a.constant(0);
        let cmp = a.binary(BinOp::Lt, s, zero);
        assert_eq!(a.truthy(cmp), cmp);
    }

    #[test]
    fn display_is_readable() {
        let mut a = ExprArena::new();
        let s = a.sym(SymVarId(3));
        let c = a.constant(1);
        let e = a.binary(BinOp::Add, s, c);
        assert_eq!(a.display(e), "(R3 + 1)");
    }

    #[test]
    fn shared_subgraph_evaluates_linearly() {
        // Build a 64-deep doubling chain: naive tree walk would be 2^64.
        let mut a = ExprArena::new();
        let mut e = a.sym(SymVarId(0));
        for _ in 0..64 {
            e = a.binary(BinOp::Add, e, e);
        }
        assert_eq!(a.eval(e, &|_| Some(1)), Some(0)); // 2^64 wraps to 0
    }
}
