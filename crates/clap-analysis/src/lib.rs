//! Static thread-sharing analysis — the reproduction's stand-in for the
//! Locksmith-based shared-access identification of the paper (§5).
//!
//! Identifying shared accesses is "orthogonal to our approach but important
//! for reducing the size of the constraints": every access classified
//! thread-local stays concrete during symbolic execution and produces no
//! read-write constraints. The analysis is conservative (may over-report
//! sharing, never under-reports) and purely static, so it adds **zero**
//! runtime cost — which is the property CLAP needs.
//!
//! The algorithm:
//! 1. build the call graph (direct calls) and collect fork sites;
//! 2. a *thread role* is `main` or any fork-target function; each role
//!    reaches a set of functions through call edges;
//! 3. a role is *multi-instance* when it can be instantiated more than
//!    once (two fork sites target it, a fork site sits inside a loop, or
//!    the forking function is itself reachable from a multi-instance or
//!    duplicated context);
//! 4. a global is **shared** iff it is written at all (beyond its
//!    initializer) and is accessed by two distinct roles or by one
//!    multi-instance role.
//!
//! # Example
//!
//! ```
//! use clap_ir::parse;
//! use clap_analysis::analyze;
//!
//! let program = parse(
//!     "global int counter = 0; global int scratch = 0;
//!      fn w() { counter = counter + 1; }
//!      fn main() {
//!          scratch = 5;
//!          let a: thread = fork w();
//!          let b: thread = fork w();
//!          join a; join b;
//!      }",
//! )?;
//! let sharing = analyze(&program);
//! let counter = program.global_by_name("counter").unwrap();
//! let scratch = program.global_by_name("scratch").unwrap();
//! assert!(sharing.is_shared(counter));
//! assert!(!sharing.is_shared(scratch), "only main touches scratch");
//! # Ok::<(), clap_ir::Error>(())
//! ```

use clap_ir::{BlockId, FuncId, GlobalId, Instr, Program};
use clap_vm::SharedSpec;
use std::collections::{HashMap, HashSet};

/// The result of the sharing analysis.
#[derive(Debug, Clone)]
pub struct SharingAnalysis {
    /// Globals classified as shared.
    pub shared: HashSet<GlobalId>,
    /// The thread roles found (entry functions of threads; `main` first).
    pub roles: Vec<FuncId>,
    /// Roles that may run in more than one thread simultaneously.
    pub multi_instance: HashSet<FuncId>,
}

impl SharingAnalysis {
    /// `true` if `global` was classified shared.
    pub fn is_shared(&self, global: GlobalId) -> bool {
        self.shared.contains(&global)
    }

    /// Converts the result into the VM's [`SharedSpec`].
    pub fn shared_spec(&self) -> SharedSpec {
        SharedSpec::Set(self.shared.clone())
    }

    /// Number of shared variables (the `#SV` column of Table 1).
    pub fn shared_count(&self) -> usize {
        self.shared.len()
    }
}

/// Runs the analysis over a lowered program.
pub fn analyze(program: &Program) -> SharingAnalysis {
    let n = program.functions.len();

    // Per-function direct facts.
    let mut calls: Vec<HashSet<FuncId>> = vec![HashSet::new(); n];
    let mut forks: Vec<Vec<(FuncId, BlockId)>> = vec![Vec::new(); n]; // (target, site block)
    let mut reads: Vec<HashSet<GlobalId>> = vec![HashSet::new(); n];
    let mut writes: Vec<HashSet<GlobalId>> = vec![HashSet::new(); n];
    for (fi, func) in program.functions.iter().enumerate() {
        for (bi, block) in func.blocks.iter().enumerate() {
            for instr in &block.instrs {
                match instr {
                    Instr::Call { func: callee, .. } => {
                        calls[fi].insert(*callee);
                    }
                    Instr::Fork { func: target, .. } => {
                        forks[fi].push((*target, BlockId::from(bi)));
                    }
                    Instr::Load { global, .. } => {
                        reads[fi].insert(*global);
                    }
                    Instr::Store { global, .. } => {
                        writes[fi].insert(*global);
                    }
                    _ => {}
                }
            }
        }
    }

    // Call-graph reachability (call edges only; forks start new roles).
    let reach = |start: FuncId| -> HashSet<FuncId> {
        let mut seen = HashSet::new();
        let mut stack = vec![start];
        while let Some(f) = stack.pop() {
            if seen.insert(f) {
                stack.extend(calls[f.index()].iter().copied());
            }
        }
        seen
    };

    // Phase A: discover roles and live functions to a fixpoint.
    let mut roles: Vec<FuncId> = vec![program.main];
    let mut live: HashSet<FuncId> = reach(program.main);
    let mut changed = true;
    while changed {
        changed = false;
        let live_now: Vec<FuncId> = live.iter().copied().collect();
        for f in live_now {
            for &(target, _) in &forks[f.index()] {
                if !roles.contains(&target) {
                    roles.push(target);
                    changed = true;
                }
                for g in reach(target) {
                    if live.insert(g) {
                        changed = true;
                    }
                }
            }
        }
    }

    // Phase B: count static instantiation capability per role (one pass),
    // then propagate "multi-instance" through forks and calls to a
    // fixpoint. A fork site inside a loop, or inside a function that is
    // itself multi-instance, can instantiate its target many times.
    let mut instantiations: HashMap<FuncId, usize> = HashMap::new();
    for &f in &live {
        let in_loop_blocks = loop_blocks(program, f);
        for &(target, site) in &forks[f.index()] {
            let many = in_loop_blocks.contains(&site);
            *instantiations.entry(target).or_insert(0) += if many { 2 } else { 1 };
        }
    }
    let mut multi_instance: HashSet<FuncId> = instantiations
        .iter()
        .filter(|(_, &c)| c > 1)
        .map(|(&f, _)| f)
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        for &f in &live {
            if !multi_instance.contains(&f) {
                continue;
            }
            // Everything a multi-instance context calls or forks is
            // itself multi-instance.
            for g in reach(f) {
                if g != f && multi_instance.insert(g) {
                    changed = true;
                }
            }
            for &(target, _) in &forks[f.index()] {
                if multi_instance.insert(target) {
                    changed = true;
                }
            }
        }
    }

    // Role-level access sets.
    let role_accesses: HashMap<FuncId, (HashSet<GlobalId>, HashSet<GlobalId>)> = roles
        .iter()
        .map(|&role| {
            let mut r = HashSet::new();
            let mut w = HashSet::new();
            for f in reach(role) {
                r.extend(reads[f.index()].iter().copied());
                w.extend(writes[f.index()].iter().copied());
            }
            (role, (r, w))
        })
        .collect();

    let mut shared = HashSet::new();
    for gi in 0..program.globals.len() {
        let g = GlobalId::from(gi);
        let accessors: Vec<FuncId> = roles
            .iter()
            .copied()
            .filter(|role| {
                let (r, w) = &role_accesses[role];
                r.contains(&g) || w.contains(&g)
            })
            .collect();
        let written = roles.iter().any(|role| role_accesses[role].1.contains(&g));
        let multi = accessors.iter().any(|a| multi_instance.contains(a));
        if written && (accessors.len() >= 2 || multi) {
            shared.insert(g);
        }
    }

    SharingAnalysis {
        shared,
        roles,
        multi_instance,
    }
}

/// Blocks of `f` that sit on a CFG cycle (conservative: any block from
/// which a back-edge target can reach it again). Used to detect fork sites
/// that may execute repeatedly.
fn loop_blocks(program: &Program, f: FuncId) -> HashSet<BlockId> {
    let func = program.function(f);
    let n = func.blocks.len();
    // Compute reachability closure between blocks (small CFGs: O(n^2)).
    let mut reach: Vec<HashSet<usize>> = vec![HashSet::new(); n];
    for (i, reach_i) in reach.iter_mut().enumerate() {
        let mut stack: Vec<usize> = func.blocks[i]
            .term
            .successors()
            .iter()
            .map(|b| b.index())
            .collect();
        while let Some(j) = stack.pop() {
            if reach_i.insert(j) {
                stack.extend(func.blocks[j].term.successors().iter().map(|b| b.index()));
            }
        }
    }
    (0..n)
        .filter(|&i| reach[i].contains(&i))
        .map(BlockId::from)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use clap_ir::parse;

    fn shared_names(src: &str) -> Vec<String> {
        let p = parse(src).unwrap();
        let a = analyze(&p);
        let mut names: Vec<String> = a
            .shared
            .iter()
            .map(|g| p.globals[g.index()].name.clone())
            .collect();
        names.sort();
        names
    }

    #[test]
    fn main_only_globals_are_private() {
        assert!(shared_names("global int x = 0; fn main() { x = 1; }").is_empty());
    }

    #[test]
    fn cross_role_access_is_shared() {
        let names = shared_names(
            "global int x = 0;
             fn w() { x = 1; }
             fn main() { let t: thread = fork w(); join t; let v: int = x; }",
        );
        assert_eq!(names, vec!["x"]);
    }

    #[test]
    fn two_instances_of_one_role_share() {
        let names = shared_names(
            "global int x = 0;
             fn w() { x = x + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w(); join a; join b; }",
        );
        assert_eq!(names, vec!["x"]);
    }

    #[test]
    fn single_instance_role_private_global() {
        // Only one instance of w ever exists and main never touches x.
        let names = shared_names(
            "global int x = 0;
             fn w() { x = x + 1; }
             fn main() { let t: thread = fork w(); join t; }",
        );
        assert!(names.is_empty(), "got {names:?}");
    }

    #[test]
    fn fork_in_loop_is_multi_instance() {
        let names = shared_names(
            "global int x = 0;
             fn w() { x = x + 1; }
             fn main() { let i: int = 0; while (i < 3) { let t: thread = fork w(); join t; i = i + 1; } }",
        );
        assert_eq!(names, vec!["x"]);
    }

    #[test]
    fn read_only_globals_are_not_shared() {
        let names = shared_names(
            "global int k = 7; global int out = 0;
             fn w() { let v: int = k; out = v; }
             fn main() { let a: thread = fork w(); let b: thread = fork w(); join a; join b; }",
        );
        // k is never written, out is written by a multi-instance role.
        assert_eq!(names, vec!["out"]);
    }

    #[test]
    fn sharing_through_helper_calls() {
        let names = shared_names(
            "global int x = 0;
             fn bump() { x = x + 1; }
             fn w() { bump(); }
             fn main() { let a: thread = fork w(); let b: thread = fork w(); join a; join b; }",
        );
        assert_eq!(names, vec!["x"]);
    }

    #[test]
    fn nested_forks_create_roles() {
        let p = parse(
            "global int x = 0;
             fn leaf() { x = x + 1; }
             fn mid() { let t: thread = fork leaf(); join t; }
             fn main() { let a: thread = fork mid(); let b: thread = fork mid(); join a; join b; }",
        )
        .unwrap();
        let a = analyze(&p);
        assert_eq!(a.roles.len(), 3); // main, mid, leaf
                                      // Two mids → two leaves → x is shared.
        assert!(a.is_shared(p.global_by_name("x").unwrap()));
        assert!(a
            .multi_instance
            .contains(&p.function_by_name("leaf").unwrap()));
    }

    #[test]
    fn shared_spec_round_trips() {
        let p = parse(
            "global int x = 0; global int y = 0;
             fn w() { x = 1; }
             fn main() { let t: thread = fork w(); join t; y = x; }",
        )
        .unwrap();
        let a = analyze(&p);
        let spec = a.shared_spec();
        assert!(spec.contains(p.global_by_name("x").unwrap()));
        assert!(!spec.contains(p.global_by_name("y").unwrap()));
        assert_eq!(a.shared_count(), 1);
    }
}
