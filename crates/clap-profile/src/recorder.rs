//! The CLAP runtime recorder: a [`Monitor`] that maintains one Ball–Larus
//! path register per activation and appends *only* thread-local events to a
//! per-thread byte log — no shared-memory dependencies, no values, and no
//! synchronization of its own (each thread writes its own log).

use crate::bl::{BlTables, Transition};
use crate::codec::write_varint;
use clap_ir::{BlockId, FuncId};
use clap_vm::{Lineage, Monitor, ThreadId};

/// Event tags in the per-thread byte stream.
pub(crate) const TAG_ENTER: u8 = 0x01;
pub(crate) const TAG_PATH: u8 = 0x02;
pub(crate) const TAG_EXIT: u8 = 0x03;
pub(crate) const TAG_TRUNC: u8 = 0x04;

/// The recorded thread-local path log of one execution — the *only*
/// artifact CLAP ships from the production run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathLog {
    /// One entry per thread, in creation order.
    pub threads: Vec<ThreadLog>,
}

/// One thread's log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadLog {
    /// Canonical thread identity.
    pub lineage: Lineage,
    /// Encoded event stream.
    pub bytes: Vec<u8>,
}

impl PathLog {
    /// Total log size in bytes (event streams plus lineage headers) —
    /// the "Space" column of Table 2.
    pub fn size_bytes(&self) -> usize {
        self.threads
            .iter()
            .map(|t| t.bytes.len() + t.lineage.components().len() * 4)
            .sum()
    }
}

struct Activation {
    func: FuncId,
    register: u64,
    cur_block: BlockId,
}

struct ThreadState {
    lineage: Lineage,
    bytes: Vec<u8>,
    stack: Vec<Activation>,
}

/// Records thread-local execution paths during a VM run.
///
/// Attach it as the monitor of a [`clap_vm::Vm`] run, then call
/// [`PathRecorder::finish`] to obtain the [`PathLog`] (flushing the
/// truncated final segments of threads that were still live when the run
/// stopped — e.g. at an assertion failure).
pub struct PathRecorder<'t> {
    tables: &'t BlTables,
    threads: Vec<ThreadState>,
}

impl std::fmt::Debug for PathRecorder<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PathRecorder({} threads)", self.threads.len())
    }
}

impl<'t> PathRecorder<'t> {
    /// Creates a recorder over prebuilt Ball–Larus tables.
    pub fn new(tables: &'t BlTables) -> Self {
        PathRecorder {
            tables,
            threads: Vec::new(),
        }
    }

    /// Finalizes the log, emitting `Trunc` records (innermost activation
    /// first) for every thread that had not exited.
    pub fn finish(self) -> PathLog {
        let mut threads = Vec::with_capacity(self.threads.len());
        for mut ts in self.threads {
            while let Some(act) = ts.stack.pop() {
                ts.bytes.push(TAG_TRUNC);
                write_varint(&mut ts.bytes, act.register);
                write_varint(&mut ts.bytes, act.cur_block.0 as u64);
            }
            threads.push(ThreadLog {
                lineage: ts.lineage,
                bytes: ts.bytes,
            });
        }
        PathLog { threads }
    }

    fn state(&mut self, t: ThreadId) -> &mut ThreadState {
        &mut self.threads[t.index()]
    }
}

impl Monitor for PathRecorder<'_> {
    fn on_thread_start(&mut self, thread: ThreadId, lineage: &Lineage, _func: FuncId) {
        debug_assert_eq!(
            thread.index(),
            self.threads.len(),
            "threads start in id order"
        );
        self.threads.push(ThreadState {
            lineage: lineage.clone(),
            bytes: Vec::new(),
            stack: Vec::new(),
        });
    }

    fn on_func_enter(&mut self, thread: ThreadId, func: FuncId) {
        let entry = self.tables.func(func).entry;
        let ts = self.state(thread);
        ts.bytes.push(TAG_ENTER);
        write_varint(&mut ts.bytes, func.0 as u64);
        ts.stack.push(Activation {
            func,
            register: 0,
            cur_block: entry,
        });
    }

    fn on_func_exit(&mut self, thread: ThreadId, func: FuncId) {
        let tables = self.tables;
        let ts = self.state(thread);
        let act = ts.stack.pop().expect("exit matches an enter");
        debug_assert_eq!(act.func, func);
        let ret_inc = tables
            .func(func)
            .return_inc(act.cur_block)
            .expect("function exits from a return block");
        ts.bytes.push(TAG_PATH);
        write_varint(&mut ts.bytes, act.register + ret_inc);
        ts.bytes.push(TAG_EXIT);
    }

    fn on_edge(&mut self, thread: ThreadId, func: FuncId, from: BlockId, to: BlockId) {
        let tables = self.tables;
        let ts = self.state(thread);
        let act = ts.stack.last_mut().expect("edge inside an activation");
        debug_assert_eq!(act.func, func);
        debug_assert_eq!(act.cur_block, from);
        match tables
            .func(func)
            .transition(from, to)
            .expect("edge classifies")
        {
            Transition::Forward { inc } => {
                act.register += inc;
                act.cur_block = to;
            }
            Transition::Back { exit_inc, restart } => {
                let id = act.register + exit_inc;
                act.register = restart;
                act.cur_block = to;
                ts.bytes.push(TAG_PATH);
                write_varint(&mut ts.bytes, id);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clap_ir::parse;
    use clap_vm::{MemModel, RandomScheduler, Vm};

    fn record(src: &str, seed: u64) -> (clap_ir::Program, BlTables, PathLog, clap_vm::Outcome) {
        let p = parse(src).unwrap();
        let t = BlTables::build(&p);
        let mut vm = Vm::new(&p, MemModel::Sc);
        let mut sched = RandomScheduler::new(seed);
        let mut rec = PathRecorder::new(&t);
        let outcome = vm.run(&mut sched, &mut rec);
        let log = rec.finish();
        (p, t, log, outcome)
    }

    #[test]
    fn straight_line_log_is_tiny() {
        let (_, _, log, o) = record("global int x = 0; fn main() { x = 1; x = 2; x = 3; }", 0);
        assert_eq!(o, clap_vm::Outcome::Completed);
        assert_eq!(log.threads.len(), 1);
        // Enter + Path(0) + Exit = 5 bytes.
        assert_eq!(log.threads[0].bytes.len(), 5);
    }

    #[test]
    fn loop_iterations_emit_one_path_each() {
        let (_, _, log, _) = record(
            "global int x = 0; fn main() { let i: int = 0; while (i < 4) { i = i + 1; } x = i; }",
            0,
        );
        // Parse the event stream (payload bytes can collide with tag
        // values, so count events, not raw bytes).
        let bytes = &log.threads[0].bytes;
        let mut pos = 0;
        let mut paths = 0;
        while pos < bytes.len() {
            let tag = bytes[pos];
            pos += 1;
            match tag {
                TAG_ENTER => {
                    crate::codec::read_varint(bytes, &mut pos).unwrap();
                }
                TAG_PATH => {
                    crate::codec::read_varint(bytes, &mut pos).unwrap();
                    paths += 1;
                }
                TAG_EXIT => {}
                TAG_TRUNC => {
                    crate::codec::read_varint(bytes, &mut pos).unwrap();
                    crate::codec::read_varint(bytes, &mut pos).unwrap();
                }
                other => panic!("bad tag {other}"),
            }
        }
        // 4 back-edge segments + 1 final segment.
        assert_eq!(paths, 5);
    }

    #[test]
    fn truncated_log_on_assert_failure() {
        let (_, _, log, o) = record(
            "global int x = 0; fn main() { x = 1; assert(x == 2, \"boom\"); x = 3; }",
            0,
        );
        assert!(o.is_failure());
        let bytes = &log.threads[0].bytes;
        assert!(bytes.contains(&TAG_TRUNC));
        assert!(!bytes.contains(&TAG_EXIT), "main never exits");
    }

    #[test]
    fn per_thread_logs_for_forked_threads() {
        let (_, _, log, _) = record(
            "global int x = 0;
             fn w(n: int) { let i: int = 0; while (i < n) { x = x + 1; i = i + 1; } }
             fn main() { let a: thread = fork w(2); let b: thread = fork w(3); join a; join b; }",
            7,
        );
        assert_eq!(log.threads.len(), 3);
        assert_eq!(log.threads[1].lineage.to_string(), "0.1");
        assert_eq!(log.threads[2].lineage.to_string(), "0.2");
        assert!(log.size_bytes() > 0);
    }

    #[test]
    fn log_size_independent_of_shared_access_count() {
        // CLAP's key property: adding shared accesses on a straight-line
        // path does not grow the log (unlike access-vector recorders).
        let small = record("global int x = 0; fn main() { x = 1; }", 0).2;
        let large = record(
            "global int x = 0; fn main() { x = 1; x = 2; x = 3; x = 4; x = 5; x = 6; }",
            0,
        )
        .2;
        assert_eq!(small.size_bytes(), large.size_bytes());
    }
}
