//! Offline log decoding: turns a [`PathLog`] back into the exact
//! per-thread, per-activation block walks the threads executed, which then
//! drive the path-directed symbolic execution.

use crate::bl::{decode_path, decode_truncated, BlTables};
use crate::codec::read_varint;
use crate::recorder::{PathLog, TAG_ENTER, TAG_EXIT, TAG_PATH, TAG_TRUNC};
use clap_ir::{BlockId, FuncId, Program};
use clap_vm::Lineage;
use std::fmt;

/// A decoded function activation: the blocks it traversed and the callee
/// activations it performed, in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActivationPath {
    /// The function executed.
    pub func: FuncId,
    /// Blocks visited, in order, starting with the entry block.
    pub blocks: Vec<BlockId>,
    /// Nested activations (calls and nothing else), in call order.
    pub calls: Vec<ActivationPath>,
    /// `true` if the activation returned; `false` if execution stopped
    /// inside it (the failure point).
    pub completed: bool,
}

/// One thread's decoded path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPath {
    /// Canonical thread identity.
    pub lineage: Lineage,
    /// The entry activation.
    pub root: ActivationPath,
}

/// Errors from decoding a (corrupt) log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The byte stream ended mid-record or a varint was malformed.
    Truncated,
    /// An unknown event tag was found.
    BadTag(u8),
    /// Events were structurally inconsistent (exit without enter, …).
    Structure(String),
    /// A path id or register value did not decode against the CFG.
    BadPath(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "log ended unexpectedly"),
            DecodeError::BadTag(t) => write!(f, "unknown event tag {t:#x}"),
            DecodeError::Structure(m) => write!(f, "inconsistent log structure: {m}"),
            DecodeError::BadPath(m) => write!(f, "path decoding failed: {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Decodes every thread of a [`PathLog`].
///
/// # Errors
///
/// Returns a [`DecodeError`] if the log does not describe a valid walk of
/// `program`'s CFGs.
pub fn decode_log(
    program: &Program,
    tables: &BlTables,
    log: &PathLog,
) -> Result<Vec<ThreadPath>, DecodeError> {
    clap_obs::add("decode.bytes", log.size_bytes() as u64);
    clap_obs::add("decode.paths", log.threads.len() as u64);
    log.threads
        .iter()
        .map(|t| {
            Ok(ThreadPath {
                lineage: t.lineage.clone(),
                root: decode_thread(program, tables, &t.bytes)?,
            })
        })
        .collect()
}

struct Building {
    func: FuncId,
    blocks: Vec<BlockId>,
    calls: Vec<ActivationPath>,
    /// Where the next segment must start and its initial register value.
    seg_start: BlockId,
    seg_init: u64,
    /// Set once a segment ended at a return (the next event must be Exit).
    returned: bool,
}

fn decode_thread(
    program: &Program,
    tables: &BlTables,
    bytes: &[u8],
) -> Result<ActivationPath, DecodeError> {
    let mut pos = 0usize;
    let mut stack: Vec<Building> = Vec::new();
    let mut root: Option<ActivationPath> = None;

    let attach = |stack: &mut Vec<Building>,
                  root: &mut Option<ActivationPath>,
                  act: ActivationPath|
     -> Result<(), DecodeError> {
        match stack.last_mut() {
            Some(parent) => {
                parent.calls.push(act);
                Ok(())
            }
            None => {
                if root.is_some() {
                    return Err(DecodeError::Structure("multiple root activations".into()));
                }
                *root = Some(act);
                Ok(())
            }
        }
    };

    while pos < bytes.len() {
        let tag = bytes[pos];
        pos += 1;
        match tag {
            TAG_ENTER => {
                let f = read_varint(bytes, &mut pos).ok_or(DecodeError::Truncated)?;
                if f as usize >= program.functions.len() {
                    return Err(DecodeError::Structure(format!(
                        "function id {f} out of range"
                    )));
                }
                let func = FuncId(f as u32);
                let entry = tables.func(func).entry;
                stack.push(Building {
                    func,
                    blocks: Vec::new(),
                    calls: Vec::new(),
                    seg_start: entry,
                    seg_init: 0,
                    returned: false,
                });
            }
            TAG_PATH => {
                let id = read_varint(bytes, &mut pos).ok_or(DecodeError::Truncated)?;
                let top = stack
                    .last_mut()
                    .ok_or_else(|| DecodeError::Structure("path outside activation".into()))?;
                if top.returned {
                    return Err(DecodeError::Structure("path after return".into()));
                }
                let bl = tables.func(top.func);
                if id >= bl.num_paths {
                    return Err(DecodeError::BadPath(format!(
                        "id {id} >= {} in {}",
                        bl.num_paths,
                        program.function(top.func).name
                    )));
                }
                let (blocks, next_header) = decode_path(bl, id);
                if blocks.first() != Some(&top.seg_start) {
                    return Err(DecodeError::BadPath(format!(
                        "segment starts at {:?}, expected {:?}",
                        blocks.first(),
                        top.seg_start
                    )));
                }
                top.blocks.extend_from_slice(&blocks);
                match next_header {
                    Some(h) => {
                        top.seg_start = h;
                        top.seg_init = *bl.header_init.get(&h).ok_or_else(|| {
                            DecodeError::BadPath(format!("no header init for {h}"))
                        })?;
                    }
                    None => top.returned = true,
                }
            }
            TAG_EXIT => {
                let top = stack
                    .pop()
                    .ok_or_else(|| DecodeError::Structure("exit without enter".into()))?;
                if !top.returned {
                    return Err(DecodeError::Structure("exit without a final path".into()));
                }
                let act = ActivationPath {
                    func: top.func,
                    blocks: top.blocks,
                    calls: top.calls,
                    completed: true,
                };
                attach(&mut stack, &mut root, act)?;
            }
            TAG_TRUNC => {
                let register = read_varint(bytes, &mut pos).ok_or(DecodeError::Truncated)?;
                let block = read_varint(bytes, &mut pos).ok_or(DecodeError::Truncated)?;
                let top = stack
                    .pop()
                    .ok_or_else(|| DecodeError::Structure("trunc without enter".into()))?;
                let bl = tables.func(top.func);
                let rel = register
                    .checked_sub(top.seg_init)
                    .ok_or_else(|| DecodeError::BadPath("register below segment init".into()))?;
                let partial = decode_truncated(bl, top.seg_start, rel, BlockId(block as u32))
                    .ok_or_else(|| {
                        DecodeError::BadPath(format!(
                            "no partial path with register {rel} ending at bb{block}"
                        ))
                    })?;
                let mut blocks = top.blocks;
                blocks.extend_from_slice(&partial);
                let act = ActivationPath {
                    func: top.func,
                    blocks,
                    calls: top.calls,
                    completed: false,
                };
                attach(&mut stack, &mut root, act)?;
            }
            other => return Err(DecodeError::BadTag(other)),
        }
    }
    if !stack.is_empty() {
        return Err(DecodeError::Structure(
            "unfinished activations at end of log".into(),
        ));
    }
    root.ok_or_else(|| DecodeError::Structure("empty thread log".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bl::BlTables;
    use crate::recorder::PathRecorder;
    use clap_ir::parse;
    use clap_vm::{MemModel, Monitor, RandomScheduler, ThreadId, Vm};

    /// A monitor that records the ground-truth block walk directly.
    #[derive(Default)]
    struct TruthMonitor {
        walks: Vec<Vec<(FuncId, BlockId)>>,
    }

    impl Monitor for TruthMonitor {
        fn on_thread_start(&mut self, _: ThreadId, _: &Lineage, _: FuncId) {
            self.walks.push(Vec::new());
        }
        fn on_func_enter(&mut self, t: ThreadId, f: FuncId) {
            self.walks[t.index()].push((f, BlockId(u32::MAX))); // marker
        }
        fn on_edge(&mut self, t: ThreadId, f: FuncId, _from: BlockId, to: BlockId) {
            self.walks[t.index()].push((f, to));
        }
    }

    fn record_and_decode(src: &str, seed: u64) -> (Vec<ThreadPath>, clap_vm::Outcome) {
        let p = parse(src).unwrap();
        let t = BlTables::build(&p);
        let mut vm = Vm::new(&p, MemModel::Sc);
        let mut sched = RandomScheduler::new(seed);
        let mut rec = PathRecorder::new(&t);
        let outcome = vm.run(&mut sched, &mut rec);
        let log = rec.finish();
        (decode_log(&p, &t, &log).unwrap(), outcome)
    }

    /// Flattens an activation's block walk (ignoring calls) for comparison.
    fn flatten(act: &ActivationPath, out: &mut Vec<(FuncId, BlockId)>) {
        for &b in &act.blocks {
            out.push((act.func, b));
        }
        for c in &act.calls {
            flatten(c, out);
        }
    }

    #[test]
    fn decode_recovers_loop_walk_exactly() {
        let src = "global int x = 0;
             fn main() { let i: int = 0; while (i < 5) { if (i % 2 == 0) { x = x + i; } i = i + 1; } }";
        let p = parse(src).unwrap();
        let t = BlTables::build(&p);
        let mut vm = Vm::new(&p, MemModel::Sc);
        let mut sched = RandomScheduler::new(0);
        let mut rec = PathRecorder::new(&t);
        let mut truth = TruthMonitor::default();
        let mut multi = clap_vm::MultiMonitor::new();
        multi.push(&mut rec);
        multi.push(&mut truth);
        vm.run(&mut sched, &mut multi);
        let log = rec.finish();
        let decoded = decode_log(&p, &t, &log).unwrap();
        // Ground truth walk: entry block + every edge target.
        let mut expect = vec![p.function(p.main).entry];
        expect.extend(
            truth.walks[0]
                .iter()
                .filter(|(_, b)| b.0 != u32::MAX)
                .map(|(_, b)| *b),
        );
        assert_eq!(decoded[0].root.blocks, expect);
        assert!(decoded[0].root.completed);
    }

    #[test]
    fn decode_handles_calls_and_recursion() {
        let (paths, o) = record_and_decode(
            "global int r = 0;
             fn fact(n: int) { if (n <= 1) { return 1; } let rec: int = fact(n - 1); return n * rec; }
             fn main() { r = fact(4); }",
            0,
        );
        assert_eq!(o, clap_vm::Outcome::Completed);
        // main calls fact, which nests 3 more activations.
        let root = &paths[0].root;
        assert_eq!(root.calls.len(), 1);
        let mut depth = 0;
        let mut cur = &root.calls[0];
        loop {
            depth += 1;
            if cur.calls.is_empty() {
                break;
            }
            cur = &cur.calls[0];
        }
        assert_eq!(depth, 4); // fact(4), fact(3), fact(2), fact(1)
    }

    #[test]
    fn truncated_thread_decodes_to_failure_point() {
        let (paths, o) = record_and_decode(
            "global int x = 0;
             fn main() { let i: int = 0; while (i < 10) { i = i + 1; if (i == 3) { assert(false, \"boom\"); } } }",
            0,
        );
        assert!(o.is_failure());
        let root = &paths[0].root;
        assert!(!root.completed, "main did not exit");
        assert!(root.blocks.len() > 3, "walked into the loop");
    }

    #[test]
    fn multithreaded_logs_decode_independently() {
        let (paths, _) = record_and_decode(
            "global int x = 0; mutex m;
             fn w(n: int) { let i: int = 0; while (i < n) { lock(m); x = x + 1; unlock(m); i = i + 1; } }
             fn main() { let a: thread = fork w(3); let b: thread = fork w(4); join a; join b; }",
            11,
        );
        assert_eq!(paths.len(), 3);
        assert!(paths.iter().all(|t| t.root.completed));
        assert_eq!(paths[1].lineage.to_string(), "0.1");
    }

    #[test]
    fn corrupt_log_rejected() {
        let p = parse("fn main() {}").unwrap();
        let t = BlTables::build(&p);
        let log = PathLog {
            threads: vec![crate::recorder::ThreadLog {
                lineage: Lineage::main(),
                bytes: vec![0x77],
            }],
        };
        assert!(matches!(
            decode_log(&p, &t, &log),
            Err(DecodeError::BadTag(0x77))
        ));
        let log = PathLog {
            threads: vec![crate::recorder::ThreadLog {
                lineage: Lineage::main(),
                bytes: vec![TAG_EXIT],
            }],
        };
        assert!(matches!(
            decode_log(&p, &t, &log),
            Err(DecodeError::Structure(_))
        ));
    }

    #[test]
    fn flatten_smoke() {
        let (paths, _) = record_and_decode(
            "global int x = 0; fn f() { x = x + 1; } fn main() { f(); f(); }",
            0,
        );
        let mut out = Vec::new();
        flatten(&paths[0].root, &mut out);
        assert!(out.len() >= 3);
        assert_eq!(paths[0].root.calls.len(), 2);
    }
}
