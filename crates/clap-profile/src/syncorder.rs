//! Optional synchronization-order recording — the §6.4 extension.
//!
//! The paper: "Recording the synchronization order can also reduce the
//! size of generated constraints, and it is easy for CLAP to do so. We do
//! not record synchronizations in our current version … because it would
//! need extra synchronization operations."
//!
//! This module implements that variant as an opt-in second monitor: for
//! every synchronization object (mutex, condition variable, thread) it
//! logs the *global order* of operations on it, identified by
//! `(thread lineage, per-thread SAP index)` pairs — the same numbering the
//! symbolic trace uses, so the orders translate directly into hard edges
//! that replace the quadratic locking and wait/signal matching constraints.
//!
//! The cost asymmetry the paper describes is real here too: the recorder
//! maintains a per-object append (a cross-thread data structure, i.e. the
//! extra synchronization CLAP's core mode avoids), while the pure path
//! recorder touches only thread-local state.

use clap_vm::{AccessEvent, Lineage, Monitor, SyncEvent, ThreadId};
use std::collections::HashMap;

/// A SAP reference that survives across executions: canonical thread
/// lineage plus the thread's program-order SAP index.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SapRef {
    /// The executing thread's lineage.
    pub lineage: Lineage,
    /// The thread's SAP index at the operation.
    pub po: u64,
}

/// Which synchronization object an order belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SyncObject {
    /// A mutex (lock/unlock/wait operations).
    Mutex(u32),
    /// A condition variable (wait-complete/signal/broadcast operations).
    Cond(u32),
    /// A bounded channel (send/recv/try_*/close operations).
    Chan(u32),
    /// A thread's mailbox (mailbox_send/mailbox_recv operations), keyed by
    /// the owning thread's runtime id.
    Mailbox(u32),
}

/// The recorded global operation order per synchronization object.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SyncOrderLog {
    /// Operation order per object, in global observation order.
    pub orders: HashMap<SyncObject, Vec<SapRef>>,
}

impl SyncOrderLog {
    /// Total recorded events.
    pub fn event_count(&self) -> usize {
        self.orders.values().map(Vec::len).sum()
    }

    /// Encoded size in bytes (object header + varint lineage/po pairs),
    /// for overhead accounting next to the path log.
    pub fn size_bytes(&self) -> usize {
        let varint_len = |mut v: u64| {
            let mut n = 1;
            while v >= 0x80 {
                v >>= 7;
                n += 1;
            }
            n
        };
        let mut bytes = 0usize;
        for refs in self.orders.values() {
            bytes += 2 + varint_len(refs.len() as u64);
            for r in refs {
                bytes += r.lineage.components().len() + varint_len(r.po);
            }
        }
        bytes
    }
}

/// Records the global synchronization order during a run. Attach next to
/// the [`crate::PathRecorder`] via [`clap_vm::MultiMonitor`].
#[derive(Debug, Default)]
pub struct SyncOrderRecorder {
    lineages: Vec<Lineage>,
    /// Per-thread SAP counter, maintained by observing the same events the
    /// VM counts (shared accesses and synchronization operations).
    sap_counts: Vec<u64>,
    log: SyncOrderLog,
}

impl SyncOrderRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finalizes the log.
    pub fn finish(self) -> SyncOrderLog {
        self.log
    }

    fn bump(&mut self, thread: ThreadId) -> u64 {
        let po = self.sap_counts[thread.index()];
        self.sap_counts[thread.index()] += 1;
        po
    }

    fn push(&mut self, object: SyncObject, thread: ThreadId, po: u64) {
        let lineage = self.lineages[thread.index()].clone();
        self.log
            .orders
            .entry(object)
            .or_default()
            .push(SapRef { lineage, po });
    }
}

impl Monitor for SyncOrderRecorder {
    fn on_thread_start(&mut self, thread: ThreadId, lineage: &Lineage, _func: clap_ir::FuncId) {
        debug_assert_eq!(thread.index(), self.lineages.len());
        self.lineages.push(lineage.clone());
        self.sap_counts.push(0);
    }

    fn on_access(&mut self, thread: ThreadId, _event: &AccessEvent) {
        // Shared accesses consume SAP indices but are not recorded here —
        // that is the whole point of the sync-only variant.
        self.bump(thread);
    }

    fn on_sync(&mut self, thread: ThreadId, event: &SyncEvent) {
        let po = self.bump(thread);
        match event {
            SyncEvent::Lock(m) | SyncEvent::Unlock(m) => {
                self.push(SyncObject::Mutex(m.0), thread, po);
            }
            SyncEvent::Wait(c, m) => {
                // The completion both reacquires the mutex and consumes
                // the cond: record on both objects.
                self.push(SyncObject::Mutex(m.0), thread, po);
                self.push(SyncObject::Cond(c.0), thread, po);
            }
            SyncEvent::Signal(c) | SyncEvent::Broadcast(c) => {
                self.push(SyncObject::Cond(c.0), thread, po);
            }
            SyncEvent::ChanSend(ch)
            | SyncEvent::ChanRecv(ch)
            | SyncEvent::ChanTrySend(ch, _)
            | SyncEvent::ChanTryRecv(ch, _)
            | SyncEvent::ChanClose(ch) => {
                self.push(SyncObject::Chan(ch.0), thread, po);
            }
            SyncEvent::MailboxSend(owner) => {
                self.push(SyncObject::Mailbox(owner.0), thread, po);
            }
            SyncEvent::MailboxRecv => {
                self.push(SyncObject::Mailbox(thread.0), thread, po);
            }
            SyncEvent::Fork(_) | SyncEvent::Join(_) | SyncEvent::SpawnActor(_) => {
                // Fork/join/spawn orders are already fully determined by
                // the partial-order constraints; nothing to record.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clap_ir::parse;
    use clap_vm::{MemModel, MultiMonitor, RandomScheduler, Vm};

    #[test]
    fn records_per_object_orders() {
        let p = parse(
            "global int x = 0; mutex m;
             fn w() { lock(m); x = x + 1; unlock(m); }
             fn main() { let a: thread = fork w(); let b: thread = fork w(); join a; join b; }",
        )
        .unwrap();
        let mut vm = Vm::new(&p, MemModel::Sc);
        let mut rec = SyncOrderRecorder::new();
        vm.run(&mut RandomScheduler::new(3), &mut rec);
        let log = rec.finish();
        let m = log
            .orders
            .get(&SyncObject::Mutex(0))
            .expect("mutex order recorded");
        assert_eq!(m.len(), 4, "two lock/unlock pairs");
        // Lock/unlock alternate between the same thread (a legal order).
        assert_eq!(m[0].lineage, m[1].lineage);
        assert_eq!(m[2].lineage, m[3].lineage);
        assert!(log.size_bytes() > 0);
        assert_eq!(log.event_count(), 4);
    }

    #[test]
    fn po_numbering_matches_vm() {
        // Record path + sync order together; the sync order's po indices
        // must be consistent with the VM's SAP numbering.
        let p = parse(
            "global int x = 0; mutex m;
             fn w() { x = 1; lock(m); unlock(m); }
             fn main() { let t: thread = fork w(); join t; }",
        )
        .unwrap();
        let mut vm = Vm::new(&p, MemModel::Sc);
        let mut sync = SyncOrderRecorder::new();
        let mut multi = MultiMonitor::new();
        multi.push(&mut sync);
        vm.run(&mut RandomScheduler::new(1), &mut multi);
        let log = sync.finish();
        let m = &log.orders[&SyncObject::Mutex(0)];
        // Worker SAPs: write x (po 0), lock (po 1), unlock (po 2).
        assert_eq!(m[0].po, 1);
        assert_eq!(m[1].po, 2);
    }

    #[test]
    fn cond_operations_recorded() {
        let p = parse(
            "global int ready = 0; mutex m; cond c;
             fn consumer() { lock(m); while (ready == 0) { wait(c, m); } unlock(m); }
             fn main() { let t: thread = fork consumer();
                         lock(m); ready = 1; signal(c); unlock(m); join t; }",
        )
        .unwrap();
        let mut vm = Vm::new(&p, MemModel::Sc);
        for seed in 0..50 {
            vm.reset();
            let mut rec = SyncOrderRecorder::new();
            let outcome = vm.run(&mut RandomScheduler::new(seed), &mut rec);
            assert_eq!(outcome, clap_vm::Outcome::Completed);
            let log = rec.finish();
            let cond = log.orders.get(&SyncObject::Cond(0)).expect("cond order");
            // At least the signal; plus a wait completion when the
            // consumer parked before the signal.
            assert!(!cond.is_empty());
        }
    }
}
