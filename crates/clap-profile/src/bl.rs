//! Ball–Larus path numbering over each function's CFG.
//!
//! Back edges are split in the classical way: a back edge `u → v` becomes a
//! pseudo edge `u → EXIT` (ending the current acyclic path) plus a pseudo
//! edge `ENTRY → v` (starting the next one), so every recorded path id is a
//! complete entry-to-exit path number in `0..num_paths` and decoding a path
//! id recovers both the blocks traversed *and* which back edge (if any)
//! ended the segment. This matches the paper's instrumentation points (§5):
//! function entry/exit, back-edge targets, and Ball–Larus branch points.
//!
//! Increments additionally have the standard prefix-sum property that the
//! running register value at *any* node uniquely identifies the partial
//! path from the segment start — which is what lets the final, truncated
//! segment of a crashing thread be reconstructed from `(register, block)`.

use clap_ir::{BlockId, FuncId, Function, Program};
use std::collections::HashMap;

/// Where a DAG edge leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeTarget {
    /// A real basic block.
    Block(BlockId),
    /// The virtual exit node.
    Exit,
}

/// Why an edge exists in the acyclic path DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// A real CFG edge.
    Real,
    /// `u → EXIT` standing in for back edge `u → header`: taking it ends
    /// the segment and the next segment starts at `header`.
    BackEdgeExit {
        /// The loop header the original back edge targets.
        header: BlockId,
    },
    /// `ENTRY → header`: a segment that starts at a loop header rather
    /// than at the function entry.
    HeaderEntry {
        /// The loop header.
        header: BlockId,
    },
    /// A return block's edge to the virtual exit.
    ReturnExit,
}

/// One DAG edge with its Ball–Larus increment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlEdge {
    /// Destination.
    pub to: EdgeTarget,
    /// Register increment when the edge is taken.
    pub inc: u64,
    /// Edge provenance.
    pub kind: EdgeKind,
}

/// Ball–Larus tables for one function.
#[derive(Debug, Clone)]
pub struct BlFunc {
    /// Ordered out-edges per block (pseudo edges included). Order is part
    /// of the numbering: recorder and decoder must agree on it.
    pub edges: Vec<Vec<BlEdge>>,
    /// Number of distinct entry-to-exit paths (`ENTRY` pseudo edges
    /// included).
    pub num_paths: u64,
    /// The function's entry block.
    pub entry: BlockId,
    /// Initial register value for a segment starting at `header`
    /// (the increment of the `ENTRY → header` pseudo edge).
    pub header_init: HashMap<BlockId, u64>,
}

impl BlFunc {
    /// The increment for the real CFG transition `from → to`, together
    /// with whether it ends the segment (back edge). Returns `None` for
    /// transitions that are not real CFG edges.
    pub fn transition(&self, from: BlockId, to: BlockId) -> Option<Transition> {
        for e in &self.edges[from.index()] {
            match e.kind {
                EdgeKind::Real if e.to == EdgeTarget::Block(to) => {
                    return Some(Transition::Forward { inc: e.inc });
                }
                EdgeKind::BackEdgeExit { header } if header == to => {
                    return Some(Transition::Back {
                        exit_inc: e.inc,
                        restart: self.header_init[&to],
                    });
                }
                _ => {}
            }
        }
        None
    }

    /// The increment of the return block's edge to EXIT.
    pub fn return_inc(&self, block: BlockId) -> Option<u64> {
        self.edges[block.index()]
            .iter()
            .find(|e| e.kind == EdgeKind::ReturnExit)
            .map(|e| e.inc)
    }
}

/// Classification of a real CFG transition for the recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// A forward (DAG) edge: add `inc` to the register.
    Forward {
        /// Register increment.
        inc: u64,
    },
    /// A back edge: the segment ends with final value `register +
    /// exit_inc`; the next segment starts with `register = restart`.
    Back {
        /// Increment of the pseudo `u → EXIT` edge.
        exit_inc: u64,
        /// Initial register of the next segment (pseudo `ENTRY → header`).
        restart: u64,
    },
}

/// Ball–Larus tables for every function of a program.
#[derive(Debug, Clone)]
pub struct BlTables {
    funcs: Vec<BlFunc>,
}

impl BlTables {
    /// Builds tables for all functions.
    ///
    /// # Panics
    ///
    /// Panics if a function has more than `u64::MAX` acyclic paths (cannot
    /// happen for realistic CFGs).
    pub fn build(program: &Program) -> Self {
        BlTables {
            funcs: program.functions.iter().map(build_func).collect(),
        }
    }

    /// The tables for one function.
    pub fn func(&self, f: FuncId) -> &BlFunc {
        &self.funcs[f.index()]
    }
}

fn build_func(func: &Function) -> BlFunc {
    let n = func.blocks.len();
    // 1. Find back edges by DFS from the entry (gray-node detection).
    let mut back_edges: Vec<(BlockId, BlockId)> = Vec::new();
    {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; n];
        // Iterative DFS with an explicit edge stack.
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry, 0)];
        color[func.entry.index()] = Color::Gray;
        while let Some(&mut (node, ref mut next)) = stack.last_mut() {
            let succs = func.block(node).term.successors();
            if *next < succs.len() {
                let succ = succs[*next];
                *next += 1;
                match color[succ.index()] {
                    Color::Gray => back_edges.push((node, succ)),
                    Color::White => {
                        color[succ.index()] = Color::Gray;
                        stack.push((succ, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[node.index()] = Color::Black;
                stack.pop();
            }
        }
    }
    let is_back = |from: BlockId, to: BlockId| back_edges.contains(&(from, to));

    // 2. Build ordered DAG out-edge lists (increments filled in later).
    let mut edges: Vec<Vec<BlEdge>> = vec![Vec::new(); n];
    for (i, block) in func.blocks.iter().enumerate() {
        let from = BlockId::from(i);
        let succs = block.term.successors();
        if succs.is_empty() {
            edges[i].push(BlEdge {
                to: EdgeTarget::Exit,
                inc: 0,
                kind: EdgeKind::ReturnExit,
            });
            continue;
        }
        for succ in succs {
            if is_back(from, succ) {
                edges[i].push(BlEdge {
                    to: EdgeTarget::Exit,
                    inc: 0,
                    kind: EdgeKind::BackEdgeExit { header: succ },
                });
            } else {
                edges[i].push(BlEdge {
                    to: EdgeTarget::Block(succ),
                    inc: 0,
                    kind: EdgeKind::Real,
                });
            }
        }
    }
    // Pseudo ENTRY → header edges, appended to the entry block's list in
    // deterministic (discovery) order, deduplicated.
    let mut headers: Vec<BlockId> = Vec::new();
    for &(_, h) in &back_edges {
        if !headers.contains(&h) {
            headers.push(h);
        }
    }
    for &h in &headers {
        edges[func.entry.index()].push(BlEdge {
            to: EdgeTarget::Block(h),
            inc: 0,
            kind: EdgeKind::HeaderEntry { header: h },
        });
    }

    // 3. NumPaths over the DAG in reverse topological order.
    let order = topo_order(n, func.entry, &edges);
    let mut num_paths_at = vec![0u64; n];
    for &node in order.iter().rev() {
        let mut total = 0u64;
        let mut prefix = 0u64;
        let node_edges = &mut edges[node.index()];
        // First pass computes targets' counts via a scratch copy to avoid
        // double borrow; targets are strictly later in topo order, so their
        // counts are final.
        let counts: Vec<u64> = node_edges
            .iter()
            .map(|e| match e.to {
                EdgeTarget::Exit => 1,
                EdgeTarget::Block(_) => 0, // placeholder, fixed below
            })
            .collect();
        let mut counts = counts;
        for (ci, e) in node_edges.iter().enumerate() {
            if let EdgeTarget::Block(b) = e.to {
                counts[ci] = num_paths_at[b.index()];
            }
        }
        for (e, &c) in node_edges.iter_mut().zip(&counts) {
            e.inc = prefix;
            prefix = prefix.checked_add(c).expect("path count overflow");
            total = prefix;
        }
        num_paths_at[node.index()] = total.max(1);
    }

    let header_init: HashMap<BlockId, u64> = edges[func.entry.index()]
        .iter()
        .filter_map(|e| match e.kind {
            EdgeKind::HeaderEntry { header } => Some((header, e.inc)),
            _ => None,
        })
        .collect();

    BlFunc {
        num_paths: num_paths_at[func.entry.index()],
        edges,
        entry: func.entry,
        header_init,
    }
}

/// Topological order of the reachable DAG nodes starting at `entry`.
fn topo_order(n: usize, entry: BlockId, edges: &[Vec<BlEdge>]) -> Vec<BlockId> {
    let mut visited = vec![false; n];
    let mut order = Vec::new();
    // Iterative post-order DFS.
    let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
    visited[entry.index()] = true;
    while let Some(&mut (node, ref mut next)) = stack.last_mut() {
        let node_edges = &edges[node.index()];
        if *next < node_edges.len() {
            let e = node_edges[*next];
            *next += 1;
            if let EdgeTarget::Block(b) = e.to {
                if !visited[b.index()] {
                    visited[b.index()] = true;
                    stack.push((b, 0));
                }
            }
        } else {
            order.push(node);
            stack.pop();
        }
    }
    order.reverse();
    order
}

/// Decodes a complete path id into the block walk of one segment.
///
/// Returns the blocks visited (starting at the segment start — the entry or
/// a loop header) and, when the segment ended by a back edge, the header at
/// which the *next* segment starts.
///
/// # Panics
///
/// Panics if `id >= num_paths` (corrupt log).
pub fn decode_path(bl: &BlFunc, id: u64) -> (Vec<BlockId>, Option<BlockId>) {
    assert!(
        id < bl.num_paths,
        "path id {id} out of range (< {})",
        bl.num_paths
    );
    let mut remaining = id;
    let mut blocks: Vec<BlockId> = Vec::new();
    let mut node = bl.entry;
    loop {
        // Pick the out-edge with the greatest increment <= remaining.
        let node_edges = &bl.edges[node.index()];
        let e = node_edges
            .iter()
            .rev()
            .find(|e| e.inc <= remaining)
            .expect("every node has an out-edge with inc 0");
        remaining -= e.inc;
        match e.kind {
            EdgeKind::HeaderEntry { header } => {
                // The segment really starts at the loop header; nothing has
                // been emitted yet, so just move there.
                debug_assert!(blocks.is_empty(), "ENTRY pseudo edge only at segment start");
                node = header;
            }
            EdgeKind::Real => {
                if blocks.is_empty() {
                    blocks.push(node);
                }
                let EdgeTarget::Block(b) = e.to else {
                    unreachable!("real edges go to blocks")
                };
                blocks.push(b);
                node = b;
            }
            EdgeKind::BackEdgeExit { header } => {
                if blocks.is_empty() {
                    blocks.push(node);
                }
                debug_assert_eq!(remaining, 0, "leftover id after exit");
                return (blocks, Some(header));
            }
            EdgeKind::ReturnExit => {
                if blocks.is_empty() {
                    blocks.push(node);
                }
                debug_assert_eq!(remaining, 0, "leftover id after exit");
                return (blocks, None);
            }
        }
    }
}

/// Decodes a *truncated* segment: the partial path from `start` whose
/// running register equals `register` and which currently sits in `end`.
///
/// Uses DFS with backtracking; the Ball–Larus prefix-sum property makes the
/// answer unique.
pub fn decode_truncated(
    bl: &BlFunc,
    start: BlockId,
    register: u64,
    end: BlockId,
) -> Option<Vec<BlockId>> {
    fn dfs(
        bl: &BlFunc,
        node: BlockId,
        remaining: u64,
        end: BlockId,
        path: &mut Vec<BlockId>,
    ) -> bool {
        path.push(node);
        if node == end && remaining == 0 {
            return true;
        }
        for e in &bl.edges[node.index()] {
            if e.kind != EdgeKind::Real || e.inc > remaining {
                continue;
            }
            let EdgeTarget::Block(b) = e.to else { continue };
            if dfs(bl, b, remaining - e.inc, end, path) {
                return true;
            }
        }
        path.pop();
        false
    }
    let mut path = Vec::new();
    if dfs(bl, start, register, end, &mut path) {
        Some(path)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clap_ir::parse;

    fn tables(src: &str) -> (clap_ir::Program, BlTables) {
        let p = parse(src).unwrap();
        let t = BlTables::build(&p);
        (p, t)
    }

    #[test]
    fn straight_line_has_one_path() {
        let (p, t) = tables("global int x = 0; fn main() { x = 1; x = 2; }");
        assert_eq!(t.func(p.main).num_paths, 1);
        let (blocks, next) = decode_path(t.func(p.main), 0);
        assert_eq!(blocks, vec![BlockId(0)]);
        assert_eq!(next, None);
    }

    #[test]
    fn diamond_has_two_paths_with_distinct_ids() {
        let (p, t) = tables(
            "global int x = 0;
             fn main() { if (x == 0) { x = 1; } else { x = 2; } }",
        );
        let bl = t.func(p.main);
        assert_eq!(bl.num_paths, 2);
        let (p0, _) = decode_path(bl, 0);
        let (p1, _) = decode_path(bl, 1);
        assert_ne!(p0, p1);
        // Both paths start at the entry and end at the same join/return.
        assert_eq!(p0[0], bl.entry);
        assert_eq!(p1[0], bl.entry);
        assert_eq!(p0.last(), p1.last());
    }

    #[test]
    fn nested_ifs_multiply_paths() {
        let (p, t) = tables(
            "global int x = 0;
             fn main() {
                 if (x == 0) { x = 1; } else { x = 2; }
                 if (x == 1) { x = 3; } else { x = 4; }
             }",
        );
        let bl = t.func(p.main);
        assert_eq!(bl.num_paths, 4);
        // All 4 ids decode to distinct complete paths.
        let mut seen = std::collections::HashSet::new();
        for id in 0..4 {
            let (blocks, next) = decode_path(bl, id);
            assert_eq!(next, None);
            assert!(seen.insert(blocks));
        }
    }

    #[test]
    fn loop_splits_into_header_segments() {
        let (p, t) = tables(
            "global int x = 0;
             fn main() { let i: int = 0; while (i < 3) { i = i + 1; } x = i; }",
        );
        let bl = t.func(p.main);
        // Paths: entry→header→exit (no iteration), entry→header→body→back,
        // header→body→back (from ENTRY pseudo), header→exit (from pseudo).
        assert_eq!(bl.num_paths, 4);
        let mut saw_back = false;
        let mut saw_return = false;
        for id in 0..bl.num_paths {
            let (_, next) = decode_path(bl, id);
            match next {
                Some(h) => {
                    saw_back = true;
                    assert!(bl.header_init.contains_key(&h));
                }
                None => saw_return = true,
            }
        }
        assert!(saw_back && saw_return);
    }

    #[test]
    fn transition_classifies_edges() {
        let (p, t) = tables(
            "global int x = 0;
             fn main() { let i: int = 0; while (i < 3) { i = i + 1; } x = i; }",
        );
        let bl = t.func(p.main);
        let f = p.function(p.main);
        // Find the back edge by scanning terminators.
        let mut found_back = false;
        for (i, b) in f.blocks.iter().enumerate() {
            for s in b.term.successors() {
                match bl.transition(BlockId::from(i), s) {
                    Some(Transition::Back { restart, .. }) => {
                        found_back = true;
                        assert_eq!(restart, bl.header_init[&s]);
                    }
                    Some(Transition::Forward { .. }) => {}
                    None => panic!("every real edge classifies"),
                }
            }
        }
        assert!(found_back);
    }

    #[test]
    fn truncated_decode_recovers_partial_path() {
        let (p, t) = tables(
            "global int x = 0;
             fn main() { if (x == 0) { x = 1; } else { x = 2; } x = 3; }",
        );
        let bl = t.func(p.main);
        // Walk the then-branch manually to get its register value, then
        // check decode_truncated finds the same prefix.
        let f = p.function(p.main);
        let entry = bl.entry;
        let clap_ir::Terminator::Branch { then_bb, .. } = f.block(entry).term else {
            panic!("entry branches")
        };
        let Some(Transition::Forward { inc }) = bl.transition(entry, then_bb) else {
            panic!("forward edge")
        };
        let path = decode_truncated(bl, entry, inc, then_bb).unwrap();
        assert_eq!(path, vec![entry, then_bb]);
        // Register 0 at the entry is the empty prefix.
        assert_eq!(decode_truncated(bl, entry, 0, entry).unwrap(), vec![entry]);
    }

    #[test]
    fn return_inc_present_on_return_blocks() {
        let (p, t) = tables("fn main() { }");
        let bl = t.func(p.main);
        assert_eq!(bl.return_inc(bl.entry), Some(0));
    }
}
