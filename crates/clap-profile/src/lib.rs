//! Thread-local path profiling for CLAP: an extension of the classical
//! Ball–Larus algorithm (§5 of the paper), recording per-thread control
//! flow as sequences of path ids and reconstructing the exact block walks
//! offline.
//!
//! The whole path of a thread is broken into *segments*: a segment starts
//! at function entry or at a loop header (when a back edge re-enters a
//! path) and ends at a function return or at a back edge. Each completed
//! segment is one varint in the log; the partial segment of a thread that
//! was still running when the bug fired is recovered from its
//! `(path register, current block)` pair, which is what a crash context
//! provides.
//!
//! # Example
//!
//! ```
//! use clap_ir::parse;
//! use clap_profile::{BlTables, PathRecorder, decode_log};
//! use clap_vm::{MemModel, RandomScheduler, Vm};
//!
//! let program = parse(
//!     "global int x = 0;
//!      fn main() { let i: int = 0; while (i < 3) { x = x + i; i = i + 1; } }",
//! )?;
//! let tables = BlTables::build(&program);
//! let mut vm = Vm::new(&program, MemModel::Sc);
//! let mut recorder = PathRecorder::new(&tables);
//! vm.run(&mut RandomScheduler::new(1), &mut recorder);
//! let log = recorder.finish();
//! let paths = decode_log(&program, &tables, &log).expect("valid log");
//! assert!(paths[0].root.completed);
//! # Ok::<(), clap_ir::Error>(())
//! ```

pub mod bl;
pub mod codec;
pub mod decode;
pub mod recorder;
pub mod syncorder;

pub use bl::{
    decode_path, decode_truncated, BlEdge, BlFunc, BlTables, EdgeKind, EdgeTarget, Transition,
};
pub use decode::{decode_log, ActivationPath, DecodeError, ThreadPath};
pub use recorder::{PathLog, PathRecorder, ThreadLog};
pub use syncorder::{SapRef, SyncObject, SyncOrderLog, SyncOrderRecorder};

use clap_ir::Program;
use clap_vm::{ExecStats, MemModel, Outcome, RandomScheduler, SharedSpec, Vm};

/// Records one seeded execution end-to-end: runs the program under a
/// [`RandomScheduler`] with the CLAP path recorder attached and returns the
/// outcome, the path log and the execution statistics.
pub fn record_run(
    program: &Program,
    model: MemModel,
    shared: SharedSpec,
    seed: u64,
) -> (Outcome, PathLog, ExecStats) {
    let tables = BlTables::build(program);
    let mut vm = Vm::with_shared(program, model, shared);
    let mut sched = RandomScheduler::new(seed);
    let mut recorder = PathRecorder::new(&tables);
    let outcome = vm.run(&mut sched, &mut recorder);
    (outcome, recorder.finish(), *vm.stats())
}
