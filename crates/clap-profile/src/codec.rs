//! LEB128 varint encoding for compact path logs.
//!
//! Path ids in hot loops are tiny (usually < 128), so most log records are
//! one tag byte plus one payload byte — this is what gives CLAP its large
//! log-size advantage over value/dependency recorders in Table 2.

/// Appends `value` to `out` as an unsigned LEB128 varint.
pub fn write_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads a varint from `bytes` starting at `*pos`, advancing `*pos`.
///
/// Returns `None` on truncated or over-long (more than 10 byte) input.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Option<u64> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = *bytes.get(*pos)?;
        *pos += 1;
        if shift >= 64 {
            return None;
        }
        value |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(value);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_take_one_byte() {
        let mut out = Vec::new();
        write_varint(&mut out, 127);
        assert_eq!(out.len(), 1);
        write_varint(&mut out, 128);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn read_rejects_truncation() {
        let mut pos = 0;
        assert_eq!(read_varint(&[0x80], &mut pos), None);
    }

    #[test]
    fn round_trip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut out = Vec::new();
            write_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(read_varint(&out, &mut pos), Some(v));
            assert_eq!(pos, out.len());
        }
    }

    proptest! {
        #[test]
        fn round_trip_any(values in proptest::collection::vec(any::<u64>(), 0..50)) {
            let mut out = Vec::new();
            for &v in &values {
                write_varint(&mut out, v);
            }
            let mut pos = 0;
            let mut back = Vec::new();
            while pos < out.len() {
                back.push(read_varint(&out, &mut pos).unwrap());
            }
            prop_assert_eq!(back, values);
        }
    }
}
