//! Parallel constraint solving for CLAP (§4.3): preemption-bounded
//! schedule **generation** (per-thread stacks for SC, SAP-DAG frontiers
//! for TSO/PSO, context-switch-point sets to avoid duplicates) plus
//! embarrassingly parallel **validation** of each candidate against the
//! full constraint system.
//!
//! Because CSP sets are enumerated by increasing size and each size is
//! exhausted before the next, the first validated schedule reproduces the
//! bug with the minimal number of preemptive context switches (§4.2).

pub mod engine;
pub mod gen;

pub use engine::{
    solve_parallel, solve_parallel_cancellable, worst_case_schedules_log10, ParallelConfig,
    ParallelOutcome, ParallelStats,
};
pub use gen::{csp_universe, for_each_csp_set, preemption_point_count, Csp, Generator};

#[cfg(any(test, feature = "testutil"))]
pub mod testutil {
    //! Shared helper for tests: record a failing run and build its trace.
    use clap_analysis::analyze;
    use clap_ir::parse;
    use clap_profile::{decode_log, BlTables, PathRecorder};
    use clap_symex::{execute, FailureContext, SymTrace};
    use clap_vm::{MemModel, Outcome, RandomScheduler, Vm};

    /// Runs seeds until the program's assert fails, then produces the
    /// symbolic trace of that failing execution.
    ///
    /// # Panics
    ///
    /// Panics if no seed below `max_seed` fails.
    pub fn build_failure(
        src: &str,
        model: MemModel,
        max_seed: u64,
    ) -> (clap_ir::Program, SymTrace) {
        let program = parse(src).unwrap();
        let sharing = analyze(&program);
        let tables = BlTables::build(&program);
        let mut vm = Vm::with_shared(&program, model, sharing.shared_spec());
        for seed in 0..max_seed {
            vm.reset();
            let mut rec = PathRecorder::new(&tables);
            let outcome = vm.run(&mut RandomScheduler::new(seed), &mut rec);
            if let Outcome::AssertFailed { .. } = outcome {
                let failure = FailureContext::from_vm(&vm);
                let paths = decode_log(&program, &tables, &rec.finish()).unwrap();
                let trace = execute(&program, &sharing.shared_spec(), &paths, &failure).unwrap();
                return (program, trace);
            }
        }
        panic!("no failing seed in 0..{max_seed}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::build_failure;
    use clap_constraints::{validate, ConstraintSystem};
    use clap_vm::MemModel;

    #[test]
    fn parallel_finds_minimal_cs_lost_update() {
        let (program, trace) = build_failure(
            "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }",
            MemModel::Sc,
            500,
        );
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let outcome = solve_parallel(&program, &sys, ParallelConfig::default());
        let ParallelOutcome::Found {
            schedule,
            cs,
            stats,
            ..
        } = outcome
        else {
            panic!("must find a schedule: {outcome:?}")
        };
        assert_eq!(cs, 1, "one preemption is minimal for a lost update");
        assert_eq!(stats.cs_bound, 1, "bound 0 must be exhausted first");
        assert!(stats.generated > 0);
        validate(&program, &sys, &schedule).unwrap();
    }

    #[test]
    fn parallel_handles_pso_reordering() {
        let (program, trace) = build_failure(
            "global int data = 0; global int flag = 0; global int seen = -1;
             fn writer() { data = 1; flag = 1; }
             fn reader() { let f: int = flag; if (f == 1) { seen = data; } }
             fn main() {
                 let w: thread = fork writer(); let r: thread = fork reader();
                 join w; join r;
                 assert(seen != 0, \"MP\");
             }",
            MemModel::Pso,
            6000,
        );
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Pso);
        let outcome = solve_parallel(&program, &sys, ParallelConfig::default());
        let ParallelOutcome::Found { schedule, .. } = outcome else {
            panic!("must find a PSO schedule: {outcome:?}")
        };
        validate(&program, &sys, &schedule).unwrap();
        // The witness schedule orders flag's store before data's store —
        // confirm the W→W reorder is present by checking positions.
        let pos = schedule.positions();
        let writer = &trace.per_thread[1];
        let (wd, wf) = (writer[0], writer[1]);
        assert!(
            pos[wf.index()] < pos[wd.index()],
            "the reproducing schedule must reorder the two stores"
        );
    }

    #[test]
    fn exhausts_when_no_schedule_reproduces() {
        let (program, mut trace) = build_failure(
            "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }",
            MemModel::Sc,
            500,
        );
        trace.bug = trace.arena.constant(0);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let outcome = solve_parallel(
            &program,
            &sys,
            ParallelConfig {
                max_cs: 2,
                ..ParallelConfig::default()
            },
        );
        assert!(
            matches!(outcome, ParallelOutcome::Exhausted(_)),
            "{outcome:?}"
        );
        assert_eq!(outcome.stats().good, 0);
    }

    #[test]
    fn agrees_with_sequential_solver() {
        // Both engines must agree on satisfiability across a batch of
        // small racy programs.
        let programs = [
            (
                "global int x = 0;
              fn w() { let v: int = x; yield; x = v + 2; }
              fn main() { let a: thread = fork w(); let b: thread = fork w();
                          join a; join b; assert(x == 4, \"l\"); }",
                MemModel::Sc,
            ),
            (
                "global int x = 0; global int y = 0;
              fn w1() { x = 1; let v: int = y; if (v == 1) { x = 3; } }
              fn w2() { y = 1; let u: int = x; if (u == 1) { y = 3; } }
              fn main() { let a: thread = fork w1(); let b: thread = fork w2();
                          join a; join b; assert(x + y < 6, \"both saw\"); }",
                MemModel::Sc,
            ),
        ];
        for (src, model) in programs {
            let (program, trace) = build_failure(src, model, 3000);
            let sys = ConstraintSystem::build(&program, &trace, model);
            let seq = clap_solver::solve(&program, &sys, clap_solver::SolverConfig::default());
            let par = solve_parallel(&program, &sys, ParallelConfig::default());
            assert!(seq.solution().is_some(), "sequential solves");
            assert!(par.schedule().is_some(), "parallel solves");
        }
    }

    #[test]
    fn worst_case_count_is_astronomical() {
        let (program, trace) = build_failure(
            "global int x = 0;
             fn w() { let i: int = 0; while (i < 4) { let v: int = x; yield; x = v + 1; i = i + 1; } }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 8, \"lost\"); }",
            MemModel::Sc,
            3000,
        );
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let log10 = worst_case_schedules_log10(&sys);
        // 8+8+5 SAPs in three threads: a few billion interleavings at
        // least.
        assert!(log10 > 4.0, "got {log10}");
    }
}
