//! Preemption-bounded schedule generation (§4.3).
//!
//! A candidate schedule is produced by running one thread at a time over
//! its remaining SAPs (respecting the hard memory-order / fork-join edges,
//! which generalizes the paper's per-thread stacks for SC and SAP-trees
//! for TSO/PSO), switching threads only
//!
//! * at a **context-switch point** (CSP) `(t1, k, t2)` — "thread `t1` is
//!   preempted immediately before its `k`-th SAP and `t2` runs instead" —
//!   taken from the enumerated CSP set, or
//! * **non-preemptively**, when the current thread has nothing ready
//!   (blocked on a cross-thread edge, a wait with no signal yet, or
//!   exhausted); these do not count toward the preemption bound.
//!
//! Enumerating CSP sets by increasing size and exhausting each size before
//! the next makes the first validated schedule one with the **minimal**
//! number of preemptions.

use clap_constraints::ConstraintSystem;
use clap_ir::Program;
use clap_symex::{SapId, SapKind, SymTrace};
use std::collections::HashMap;

/// One context-switch point: before `t1`'s `k`-th SAP (1-based), switch to
/// `t2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Csp {
    /// The preempted thread.
    pub t1: u32,
    /// 1-based index of the SAP of `t1` about to be preempted.
    pub k: u32,
    /// The thread that takes over.
    pub t2: u32,
}

/// Generates schedules for one CSP set, invoking `emit` per schedule.
/// `emit` returns `false` to stop the enumeration early.
pub struct Generator<'a, 't> {
    sys: &'a ConstraintSystem<'t>,
    /// Hard-edge successors (by SAP index).
    succ: Vec<Vec<u32>>,
    /// Remaining in-degree per SAP.
    indeg: Vec<u32>,
    /// Per thread: SAPs in program order and how many were emitted.
    emitted: Vec<u32>,
    /// Signal/broadcast wake-up candidates per wait SAP.
    wait_candidates: HashMap<u32, Vec<u32>>,
    /// Whether each SAP has been emitted.
    done: Vec<bool>,
    /// Per-CSP "already fired" flags for the current run.
    csp_used: Vec<bool>,
    order: Vec<SapId>,
    generated: u64,
    budget: u64,
    /// DFS nodes visited (emit attempts); the work-based budget that
    /// bounds pruned searches which rarely complete a schedule.
    nodes: u64,
    node_budget: u64,
    deadline: Option<std::time::Instant>,
    cancel: Option<&'a std::sync::atomic::AtomicBool>,
    out_of_budget: bool,
    /// Prefix pruning: abandon a partial schedule the moment a path
    /// condition or lock rule is violated (massive search-space cut; the
    /// final validator remains the arbiter).
    prune: Option<PruneState<'a>>,
}

/// A concrete memory cell: (global, evaluated index).
type MemKey = (u32, i64);

/// Incremental evaluation state for prefix pruning.
struct PruneState<'p> {
    program: &'p Program,
    /// Concrete value per symbolic variable (assigned when its read is
    /// emitted).
    assignment: Vec<Option<i64>>,
    assign_trail: Vec<u32>,
    /// Concrete memory image keyed by (global, cell); cells absent use
    /// the initial value, `None` marks an unknown (unevaluable) cell.
    memory: HashMap<(u32, i64), Option<i64>>,
    mem_trail: Vec<(MemKey, Option<Option<i64>>)>,
    /// Per path condition: how many of its variables are unassigned.
    cond_remaining: Vec<u32>,
    cond_trail: Vec<usize>,
    /// var -> path conditions that mention it.
    var_conds: HashMap<u32, Vec<usize>>,
    /// Mutex owner by id (thread index), with trail.
    owner: HashMap<u32, u32>,
    owner_trail: Vec<(u32, Option<u32>)>,
}

impl<'p> PruneState<'p> {
    fn new(program: &'p Program, trace: &SymTrace) -> Self {
        let mut var_conds: HashMap<u32, Vec<usize>> = HashMap::new();
        let mut cond_remaining = Vec::with_capacity(trace.path_conds.len());
        for (ci, pc) in trace.path_conds.iter().enumerate() {
            let vars = trace.arena.vars(pc.expr);
            cond_remaining.push(vars.len() as u32);
            for v in vars {
                var_conds.entry(v.0).or_default().push(ci);
            }
        }
        PruneState {
            program,
            assignment: vec![None; trace.sym_vars.len()],
            assign_trail: Vec::new(),
            memory: HashMap::new(),
            mem_trail: Vec::new(),
            cond_remaining,
            cond_trail: Vec::new(),
            var_conds,
            owner: HashMap::new(),
            owner_trail: Vec::new(),
        }
    }

    fn marks(&self) -> (usize, usize, usize, usize) {
        (
            self.assign_trail.len(),
            self.mem_trail.len(),
            self.cond_trail.len(),
            self.owner_trail.len(),
        )
    }

    fn undo_to(&mut self, marks: (usize, usize, usize, usize)) {
        while self.assign_trail.len() > marks.0 {
            let v = self.assign_trail.pop().expect("assign trail");
            self.assignment[v as usize] = None;
        }
        while self.mem_trail.len() > marks.1 {
            let (key, prev) = self.mem_trail.pop().expect("mem trail");
            match prev {
                Some(v) => {
                    self.memory.insert(key, v);
                }
                None => {
                    self.memory.remove(&key);
                }
            }
        }
        while self.cond_trail.len() > marks.2 {
            let ci = self.cond_trail.pop().expect("cond trail");
            self.cond_remaining[ci] += 1;
        }
        while self.owner_trail.len() > marks.3 {
            let (m, prev) = self.owner_trail.pop().expect("owner trail");
            match prev {
                Some(t) => {
                    self.owner.insert(m, t);
                }
                None => {
                    self.owner.remove(&m);
                }
            }
        }
    }

    fn eval(&self, trace: &SymTrace, e: clap_symex::ExprId) -> Option<i64> {
        let a = &self.assignment;
        trace.arena.eval(e, &|v: clap_symex::SymVarId| a[v.index()])
    }

    fn cell(&self, trace: &SymTrace, addr: clap_symex::SymAddr) -> Option<(u32, i64)> {
        let idx = match addr.index {
            None => 0,
            Some(e) => self.eval(trace, e)?,
        };
        Some((addr.global.0, idx))
    }

    fn read_cell(&self, key: (u32, i64)) -> Option<i64> {
        match self.memory.get(&key) {
            Some(v) => *v,
            None => {
                let g = clap_ir::GlobalId(key.0);
                Some(SymTrace::init_value(self.program, g))
            }
        }
    }

    fn write_cell(&mut self, key: (u32, i64), value: Option<i64>) {
        let prev = self.memory.insert(key, value);
        self.mem_trail.push((key, prev));
    }

    fn assign(&mut self, trace: &SymTrace, var: u32, value: i64) -> bool {
        debug_assert!(self.assignment[var as usize].is_none());
        self.assignment[var as usize] = Some(value);
        self.assign_trail.push(var);
        // Path conditions whose last variable just grounded can now veto.
        if let Some(conds) = self.var_conds.get(&var) {
            let conds = conds.clone();
            for ci in conds {
                self.cond_remaining[ci] -= 1;
                self.cond_trail.push(ci);
                if self.cond_remaining[ci] == 0 {
                    let expr = trace.path_conds[ci].expr;
                    if self.eval(trace, expr) == Some(0) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl<'a, 't> Generator<'a, 't> {
    /// Creates a generator over the constraint system with prefix pruning
    /// enabled. `budget` caps the number of schedules emitted across all
    /// calls (0 = unlimited).
    pub fn new(program: &'a Program, sys: &'a ConstraintSystem<'t>, budget: u64) -> Self {
        let mut generator = Self::without_pruning(sys, budget);
        generator.prune = Some(PruneState::new(program, sys.trace));
        generator
    }

    /// Creates a generator that enumerates blindly (the paper's plain
    /// generate-then-validate split; kept for the ablation benches).
    pub fn without_pruning(sys: &'a ConstraintSystem<'t>, budget: u64) -> Self {
        let n = sys.trace.sap_count();
        let mut succ = vec![Vec::new(); n];
        let mut indeg = vec![0u32; n];
        for &(a, b) in &sys.hard_edges {
            succ[a.index()].push(b.0);
            indeg[b.index()] += 1;
        }
        let mut wait_candidates = HashMap::new();
        for w in &sys.waits {
            let cands: Vec<u32> = w
                .signals
                .iter()
                .chain(w.broadcasts.iter())
                .map(|s| s.0)
                .collect();
            wait_candidates.insert(w.wait.0, cands);
        }
        Generator {
            sys,
            succ,
            indeg,
            emitted: vec![0; sys.trace.thread_count()],
            wait_candidates,
            done: vec![false; n],
            csp_used: Vec::new(),
            order: Vec::with_capacity(n),
            generated: 0,
            budget,
            nodes: 0,
            node_budget: 0,
            deadline: None,
            cancel: None,
            out_of_budget: false,
            prune: None,
        }
    }

    /// Caps the number of DFS nodes explored (0 = unlimited).
    pub fn set_node_budget(&mut self, nodes: u64) {
        self.node_budget = nodes;
    }

    /// Sets a wall-clock deadline checked periodically during the DFS.
    pub fn set_deadline(&mut self, deadline: Option<std::time::Instant>) {
        self.deadline = deadline;
    }

    /// Sets a cooperative cancellation flag checked periodically during
    /// the DFS (same cadence as the deadline).
    pub fn set_cancel(&mut self, cancel: Option<&'a std::sync::atomic::AtomicBool>) {
        self.cancel = cancel;
    }

    /// `true` when a node budget or deadline stopped the last run early.
    pub fn hit_budget(&self) -> bool {
        self.out_of_budget
    }

    /// Number of schedules generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Runs the enumeration for one CSP set. Returns `false` when `emit`
    /// asked to stop or the budget ran out.
    pub fn run(&mut self, csps: &[Csp], emit: &mut impl FnMut(&[SapId]) -> bool) -> bool {
        debug_assert!(self.order.is_empty());
        // CSPs keyed by (t1, k) for O(1) lookup; each fires at most once.
        let csp_map: HashMap<(u32, u32), (u32, usize)> = csps
            .iter()
            .enumerate()
            .map(|(i, c)| ((c.t1, c.k), (c.t2, i)))
            .collect();
        self.csp_used = vec![false; csps.len()];
        self.dfs(0, &csp_map, emit)
    }

    /// The SAPs of `thread` that are ready (all hard predecessors done)
    /// and wake-up-feasible.
    fn ready_of(&self, thread: u32) -> Vec<u32> {
        self.sys.trace.per_thread[thread as usize]
            .iter()
            .map(|s| s.0)
            .filter(|&s| !self.done[s as usize] && self.indeg[s as usize] == 0)
            .filter(|&s| self.wake_feasible(s))
            .collect()
    }

    /// A wait completion is only emittable once a candidate signal or
    /// broadcast is already in the schedule (cheap necessary condition;
    /// the validator enforces exact matching).
    fn wake_feasible(&self, s: u32) -> bool {
        match self.wait_candidates.get(&s) {
            None => true,
            Some(cands) => cands.iter().any(|&c| self.done[c as usize]),
        }
    }

    /// Emits a SAP; returns the pruning-trail marks and whether the
    /// prefix is still viable (on `false` the caller must retract).
    fn emit_sap(&mut self, s: u32) -> ((usize, usize, usize, usize), bool) {
        self.done[s as usize] = true;
        self.order.push(SapId(s));
        let t = self.sys.trace.sap(SapId(s)).thread.0;
        self.emitted[t as usize] += 1;
        for i in 0..self.succ[s as usize].len() {
            let y = self.succ[s as usize][i];
            self.indeg[y as usize] -= 1;
        }
        let Some(prune) = self.prune.as_mut() else {
            return ((0, 0, 0, 0), true);
        };
        let marks = prune.marks();
        let trace = self.sys.trace;
        let ok = match trace.sap(SapId(s)).kind {
            SapKind::Read { addr, var } => match prune.cell(trace, addr) {
                Some(key) => match prune.read_cell(key) {
                    Some(v) => prune.assign(trace, var.0, v),
                    None => true, // unknown cell: cannot prune
                },
                None => true,
            },
            SapKind::Write { addr, value } => {
                let v = prune.eval(trace, value);
                match prune.cell(trace, addr) {
                    Some(key) => {
                        prune.write_cell(key, v);
                        true
                    }
                    None => true, // unknown index: cannot track this cell
                }
            }
            SapKind::Lock(m) | SapKind::Wait { mutex: m, .. } => {
                if let std::collections::hash_map::Entry::Vacant(e) = prune.owner.entry(m.0) {
                    e.insert(t);
                    prune.owner_trail.push((m.0, None));
                    true
                } else {
                    false // mutex already held: illegal prefix
                }
            }
            SapKind::Unlock(m) => {
                if prune.owner.get(&m.0) == Some(&t) {
                    let prev = prune.owner.remove(&m.0);
                    prune.owner_trail.push((m.0, prev));
                    true
                } else {
                    false
                }
            }
            // Atomics are scalar cells: in the total-order model a SAP's
            // position is its commit, so the cell image evolves exactly
            // like the validator's.
            SapKind::AtomicLoad { global, var, .. } => match prune.read_cell((global.0, 0)) {
                Some(v) => prune.assign(trace, var.0, v),
                None => true,
            },
            SapKind::AtomicStore { global, value, .. } => {
                let v = prune.eval(trace, value);
                prune.write_cell((global.0, 0), v);
                true
            }
            SapKind::AtomicRmw {
                global, var, value, ..
            }
            | SapKind::AtomicCas {
                global, var, value, ..
            } => {
                // Indivisible read-modify-write: ground the old value,
                // then commit the written expression.
                match prune.read_cell((global.0, 0)) {
                    Some(old) => {
                        let ok = prune.assign(trace, var.0, old);
                        let v = prune.eval(trace, value);
                        prune.write_cell((global.0, 0), v);
                        ok
                    }
                    None => {
                        prune.write_cell((global.0, 0), None);
                        true
                    }
                }
            }
            _ => true,
        };
        (marks, ok)
    }

    fn retract_sap(&mut self, s: u32, marks: (usize, usize, usize, usize)) {
        if let Some(prune) = self.prune.as_mut() {
            prune.undo_to(marks);
        }
        for i in 0..self.succ[s as usize].len() {
            let y = self.succ[s as usize][i];
            self.indeg[y as usize] += 1;
        }
        let t = self.sys.trace.sap(SapId(s)).thread.0;
        self.emitted[t as usize] -= 1;
        self.order.pop();
        self.done[s as usize] = false;
    }

    /// Runs thread `cur` greedily, branching at choice points. Returns
    /// `false` to abort the whole enumeration.
    fn dfs(
        &mut self,
        cur: u32,
        csps: &HashMap<(u32, u32), (u32, usize)>,
        emit: &mut impl FnMut(&[SapId]) -> bool,
    ) -> bool {
        if self.order.len() == self.done.len() {
            self.generated += 1;
            let keep_going = emit(&self.order);
            let in_budget = self.budget == 0 || self.generated < self.budget;
            return keep_going && in_budget;
        }
        // A pending CSP preempts the current thread before its next SAP,
        // firing at most once.
        let next_k = self.emitted[cur as usize] + 1;
        if let Some(&(t2, idx)) = csps.get(&(cur, next_k)) {
            // Only a real preemption: the thread must actually have a
            // ready SAP to be preempted from.
            if !self.csp_used[idx] && !self.ready_of(cur).is_empty() {
                self.csp_used[idx] = true;
                let cont = self.switch_to(t2, csps, emit);
                self.csp_used[idx] = false;
                return cont;
            }
        }
        let ready = self.ready_of(cur);
        if ready.is_empty() {
            // Non-preemptive switch: branch over all threads with work.
            let threads: Vec<u32> = (0..self.sys.trace.thread_count() as u32)
                .filter(|&t| t != cur && !self.ready_of(t).is_empty())
                .collect();
            if threads.is_empty() {
                // Dead end (e.g. a wait with no emitted signal yet whose
                // signaller is itself blocked by a CSP mid-state).
                return true;
            }
            for t in threads {
                if !self.switch_to(t, csps, emit) {
                    return false;
                }
            }
            return true;
        }
        // Branch over the thread's ready SAPs (a chain under SC — single
        // choice; a DAG frontier under TSO/PSO — the paper's SAP-tree).
        for s in ready {
            self.nodes += 1;
            if self.node_budget > 0 && self.nodes >= self.node_budget {
                self.out_of_budget = true;
                return false;
            }
            if self.nodes.is_multiple_of(8192) {
                if let Some(c) = self.cancel {
                    if c.load(std::sync::atomic::Ordering::Relaxed) {
                        self.out_of_budget = true;
                        return false;
                    }
                }
                if let Some(d) = self.deadline {
                    if std::time::Instant::now() >= d {
                        self.out_of_budget = true;
                        return false;
                    }
                }
            }
            let (marks, viable) = self.emit_sap(s);
            let cont = if viable {
                self.dfs(cur, csps, emit)
            } else {
                true
            };
            self.retract_sap(s, marks);
            if !cont {
                return false;
            }
        }
        true
    }

    fn switch_to(
        &mut self,
        t2: u32,
        csps: &HashMap<(u32, u32), (u32, usize)>,
        emit: &mut impl FnMut(&[SapId]) -> bool,
    ) -> bool {
        if self.ready_of(t2).is_empty() {
            // The CSP's target cannot run here: prune this branch.
            return true;
        }
        self.dfs(t2, csps, emit)
    }
}

/// The CSP universe of a trace: preemption points before each SAP of each
/// thread, paired with every possible takeover thread. Preempting before a
/// thread's first SAP or before a must-interleave operation adds nothing
/// (those switches are free), so `k` is restricted to 2..=len at SAPs that
/// are not must-interleave.
pub fn csp_universe(sys: &ConstraintSystem<'_>) -> Vec<Csp> {
    let threads = sys.trace.thread_count() as u32;
    let mut universe = Vec::new();
    for (ti, saps) in sys.trace.per_thread.iter().enumerate() {
        for (pos, &s) in saps.iter().enumerate() {
            let k = pos as u32 + 1;
            if k == 1 {
                continue;
            }
            if matches!(
                sys.trace.sap(s).kind,
                SapKind::Wait { .. } | SapKind::Join { .. }
            ) {
                continue;
            }
            for t2 in 0..threads {
                if t2 as usize != ti {
                    universe.push(Csp {
                        t1: ti as u32,
                        k,
                        t2,
                    });
                }
            }
        }
    }
    universe
}

/// Number of distinct `(t1, k)` preemption points in the CSP universe.
///
/// A CSP set places at most one preemption per point, so enumerating every
/// set size up to this count covers **all** preemption placements: a
/// preemption-bounded search whose bound reaches this value (and whose
/// per-level caps never fired) is a complete search of the schedule space.
pub fn preemption_point_count(sys: &ConstraintSystem<'_>) -> usize {
    let mut points = std::collections::HashSet::new();
    for c in csp_universe(sys) {
        points.insert((c.t1, c.k));
    }
    points.len()
}

/// Enumerates CSP sets of exactly `size` over the universe of feasible
/// CSPs, calling `f` per set. CSPs within a set have distinct `(t1, k)`
/// preemption points. `f` returns `false` to stop.
pub fn for_each_csp_set(
    sys: &ConstraintSystem<'_>,
    size: usize,
    max_sets: u64,
    f: &mut impl FnMut(&[Csp]) -> bool,
) -> bool {
    let universe = csp_universe(sys);
    if size == 0 {
        return f(&[]);
    }
    let mut count = 0u64;
    let mut acc: Vec<Csp> = Vec::with_capacity(size);
    fn rec(
        universe: &[Csp],
        start: usize,
        size: usize,
        acc: &mut Vec<Csp>,
        count: &mut u64,
        max_sets: u64,
        f: &mut impl FnMut(&[Csp]) -> bool,
    ) -> bool {
        if acc.len() == size {
            *count += 1;
            if !f(acc) {
                return false;
            }
            return max_sets == 0 || *count < max_sets;
        }
        for i in start..universe.len() {
            let c = universe[i];
            if acc.iter().any(|p| p.t1 == c.t1 && p.k == c.k) {
                continue; // one preemption per point
            }
            acc.push(c);
            let cont = rec(universe, i + 1, size, acc, count, max_sets, f);
            acc.pop();
            if !cont {
                return false;
            }
        }
        true
    }
    rec(&universe, 0, size, &mut acc, &mut count, max_sets, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::build_failure;
    use clap_constraints::{validate, ConstraintSystem, Schedule};
    use clap_vm::MemModel;

    const LOST_UPDATE: &str = "global int x = 0;
         fn w() { let v: int = x; yield; x = v + 1; }
         fn main() { let a: thread = fork w(); let b: thread = fork w();
                     join a; join b; assert(x == 2, \"lost\"); }";

    #[test]
    fn zero_csp_schedules_respect_hard_edges() {
        let (program, trace) = build_failure(LOST_UPDATE, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let mut gen = Generator::new(&program, &sys, 0);
        let mut all = Vec::new();
        gen.run(&[], &mut |order| {
            all.push(order.to_vec());
            true
        });
        assert!(!all.is_empty());
        for order in &all {
            let s = Schedule::new(order.clone(), &trace);
            assert!(sys.respects_hard_edges(&s));
            // With zero preemptions each worker runs atomically, so the
            // lost update cannot manifest.
            assert!(validate(&program, &sys, &s).is_err());
        }
    }

    #[test]
    fn one_preemption_reproduces_lost_update() {
        let (program, trace) = build_failure(LOST_UPDATE, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let mut found = None;
        for_each_csp_set(&sys, 1, 0, &mut |set| {
            let mut gen = Generator::new(&program, &sys, 0);
            let mut keep = true;
            gen.run(set, &mut |order| {
                let s = Schedule::new(order.to_vec(), &trace);
                if validate(&program, &sys, &s).is_ok() {
                    found = Some((set.to_vec(), s));
                    keep = false;
                }
                keep
            });
            keep
        });
        let (set, schedule) = found.expect("one preemption suffices");
        assert_eq!(set.len(), 1);
        assert_eq!(schedule.context_switches(&trace), 1);
    }

    #[test]
    fn csp_sets_have_distinct_points() {
        let (program, trace) = build_failure(LOST_UPDATE, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let mut seen = 0u64;
        for_each_csp_set(&sys, 2, 500, &mut |set| {
            assert_eq!(set.len(), 2);
            assert!(!(set[0].t1 == set[1].t1 && set[0].k == set[1].k));
            seen += 1;
            true
        });
        assert!(seen > 0);
    }

    #[test]
    fn generator_budget_stops_enumeration() {
        let (program, trace) = build_failure(LOST_UPDATE, MemModel::Sc, 500);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let mut gen = Generator::new(&program, &sys, 2);
        let mut n = 0;
        gen.run(&[], &mut |_| {
            n += 1;
            true
        });
        assert!(gen.generated() <= 2);
        assert_eq!(n as u64, gen.generated());
        let _ = program;
    }
}
