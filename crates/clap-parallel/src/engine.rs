//! The parallel generate-and-validate driver (§4.3).
//!
//! One producer enumerates CSP sets of increasing size and generates the
//! candidate schedules for each; a pool of workers validates candidates
//! concurrently ("each single schedule generation and validation is
//! independent and fast"). Exhausting each preemption bound before the
//! next makes the first hit a **minimal-context-switch** reproduction.

use crate::gen::{for_each_csp_set, preemption_point_count, Generator};
use clap_constraints::{validate, ConstraintSystem, Schedule, Witness};
use clap_ir::Program;
use clap_symex::SapId;
use crossbeam::channel::{Receiver, Sender};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Parallel-search configuration.
///
/// The wall-clock budget is a [`Duration`], anchored when
/// [`solve_parallel`] is entered — not when the config is built — so time
/// spent recording or symbolically executing never eats the solve budget.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Validation workers (0 = one per available core, minus one for the
    /// producer).
    pub workers: usize,
    /// Smallest preemption bound to try. A portfolio that already
    /// exhausted bounds `0..=k` cleanly escalates with `min_cs = k + 1`
    /// instead of re-enumerating the lower levels.
    pub min_cs: usize,
    /// Largest preemption bound to try.
    pub max_cs: usize,
    /// Stop after this many validated schedules (the paper typically
    /// finds several before the stop signal lands).
    pub stop_after_good: usize,
    /// Cap on generated schedules per preemption level (0 = unlimited).
    pub max_generated_per_level: u64,
    /// Cap on CSP sets per level (0 = unlimited).
    pub max_sets_per_level: u64,
    /// Cap on generator DFS nodes per level (0 = unlimited); bounds
    /// pruned searches that rarely complete a schedule.
    pub max_nodes_per_level: u64,
    /// Wall-clock budget for this solve call (`None` = unbounded).
    pub timeout: Option<Duration>,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            workers: 0,
            min_cs: 0,
            max_cs: 3,
            stop_after_good: 1,
            max_generated_per_level: 2_000_000,
            max_sets_per_level: 200_000,
            max_nodes_per_level: 50_000_000,
            timeout: None,
        }
    }
}

/// Search counters (Table 3 columns) plus the completeness signal.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelStats {
    /// Candidate schedules generated.
    pub generated: u64,
    /// Candidates validated (some may be skipped after the stop signal).
    pub validated: u64,
    /// Correct (bug-reproducing) schedules found.
    pub good: u64,
    /// The preemption bound at which the search stopped.
    pub cs_bound: usize,
    /// Whether any per-level cap (sets, schedules, DFS nodes), the
    /// deadline, or an external cancellation cut the enumeration short.
    pub truncated: bool,
    /// Whether the search provably covered the **entire** schedule space:
    /// nothing was truncated and the preemption ladder reached the number
    /// of distinct preemption points in the trace. Only an
    /// [`ParallelOutcome::Exhausted`] with `complete == true` is a
    /// certificate of unsatisfiability; an incomplete exhaustion merely
    /// says no schedule exists within the searched bounds.
    pub complete: bool,
}

/// The outcome of the parallel search.
#[derive(Debug)]
pub enum ParallelOutcome {
    /// At least one schedule reproduces the bug; the first one found at
    /// the smallest preemption bound is returned.
    Found {
        /// The bug-reproducing schedule.
        schedule: Schedule,
        /// Its witness.
        witness: Witness,
        /// Preemptive context switches of the schedule (§4.2 metric).
        cs: usize,
        /// Effort counters.
        stats: ParallelStats,
    },
    /// Every preemption bound from `min_cs` up to `max_cs` was exhausted
    /// with no hit. **This is not an unsatisfiability proof unless
    /// [`ParallelStats::complete`] is set**: a capped ladder only shows
    /// that no schedule exists within the searched preemption bounds.
    Exhausted(ParallelStats),
    /// A budget (deadline, set cap, generation cap) or an external
    /// cancellation stopped the search.
    Budget(ParallelStats),
}

/// One preemption-bound rung handed to the persistent validator pool.
/// Workers drain `rx`, validate candidates, and send one `()` on
/// `done_tx` when the rung's channel closes — the producer counts those
/// to detect rung completion (the pool itself never joins between rungs).
struct Rung {
    rx: Receiver<(usize, Vec<SapId>)>,
    stop: AtomicBool,
    validated: AtomicU64,
    good: Mutex<Vec<(Schedule, Witness)>>,
    stop_after_good: usize,
    done_tx: Sender<()>,
}

struct ValidatorPoolState {
    epoch: u64,
    rung: Option<Arc<Rung>>,
    shutdown: bool,
}

struct ValidatorPool {
    state: Mutex<ValidatorPoolState>,
    cv: Condvar,
}

impl ParallelOutcome {
    /// The found schedule, if any.
    pub fn schedule(&self) -> Option<&Schedule> {
        match self {
            ParallelOutcome::Found { schedule, .. } => Some(schedule),
            _ => None,
        }
    }

    /// The effort counters regardless of outcome.
    pub fn stats(&self) -> ParallelStats {
        match self {
            ParallelOutcome::Found { stats, .. }
            | ParallelOutcome::Exhausted(stats)
            | ParallelOutcome::Budget(stats) => *stats,
        }
    }
}

/// Runs the §4.3 parallel search.
pub fn solve_parallel(
    program: &Program,
    system: &ConstraintSystem<'_>,
    config: ParallelConfig,
) -> ParallelOutcome {
    solve_parallel_cancellable(program, system, config, None)
}

/// [`solve_parallel`] with a cooperative cancellation hook: when `cancel`
/// is set by another thread (e.g. a portfolio race partner that already
/// found a schedule), the search stops at the next check point and
/// returns [`ParallelOutcome::Budget`] — cancellation is a budget event,
/// never an exhaustion claim.
pub fn solve_parallel_cancellable(
    program: &Program,
    system: &ConstraintSystem<'_>,
    config: ParallelConfig,
    cancel: Option<&AtomicBool>,
) -> ParallelOutcome {
    let deadline = config.timeout.map(|t| Instant::now() + t);
    let workers = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get().saturating_sub(1))
            .unwrap_or(1)
            .max(1)
    } else {
        config.workers
    };
    let mut stats = ParallelStats {
        cs_bound: config.min_cs,
        ..ParallelStats::default()
    };
    let mut budget_hit = false;
    let cancelled = || cancel.is_some_and(|c| c.load(Ordering::Relaxed));

    // Every emitted order is a full permutation of the trace's SAPs, so a
    // batch of k orders is one flat buffer of k·n ids — one allocation
    // and one channel hand-off per batch instead of per candidate.
    const BATCH_ORDERS: usize = 64;
    let n = system.trace.sap_count();

    // One validator pool for the whole preemption ladder: workers are
    // spawned once, park on a condvar between rungs, and pick each rung
    // up by epoch — the old per-rung scope paid a full spawn/join cycle
    // at every bound even when a rung generated almost nothing.
    let early = std::thread::scope(|scope| {
        let pool = Arc::new(ValidatorPool {
            state: Mutex::new(ValidatorPoolState {
                epoch: 0,
                rung: None,
                shutdown: false,
            }),
            cv: Condvar::new(),
        });
        for _ in 0..workers {
            let pool = Arc::clone(&pool);
            scope.spawn(move || {
                let _span = clap_obs::span("parallel.validator");
                // Scratch survives every rung of the ladder.
                let mut scratch = Schedule {
                    order: Vec::with_capacity(n),
                };
                let mut seen_epoch = 0u64;
                loop {
                    let rung = {
                        let mut st = pool.state.lock().expect("validator pool lock");
                        loop {
                            if st.shutdown {
                                return;
                            }
                            if st.epoch != seen_epoch {
                                seen_epoch = st.epoch;
                                break Arc::clone(st.rung.as_ref().expect("epoch implies rung"));
                            }
                            st = pool.cv.wait(st).expect("validator pool lock");
                        }
                    };
                    let rung_start = Instant::now();
                    let mut busy = Duration::ZERO;
                    let mut recv_wait = Duration::ZERO;
                    let mut checked: u64 = 0;
                    loop {
                        // Time blocked on the producer: starved validators
                        // show up as a high recv-wait share, distinguishing
                        // a generation-bound rung from a validation-bound
                        // one in the contention picture.
                        let t_wait = Instant::now();
                        let Ok((count, flat)) = rung.rx.recv() else {
                            recv_wait += t_wait.elapsed();
                            break;
                        };
                        recv_wait += t_wait.elapsed();
                        if rung.stop.load(Ordering::Relaxed) {
                            continue; // drain
                        }
                        let t = Instant::now();
                        for i in 0..count {
                            if rung.stop.load(Ordering::Relaxed) {
                                break;
                            }
                            rung.validated.fetch_add(1, Ordering::Relaxed);
                            checked += 1;
                            scratch.order.clear();
                            scratch.order.extend_from_slice(&flat[i * n..(i + 1) * n]);
                            if let Ok(witness) = validate(program, system, &scratch) {
                                let mut g = rung.good.lock().expect("good lock");
                                g.push((scratch.clone(), witness));
                                if g.len() >= rung.stop_after_good {
                                    rung.stop.store(true, Ordering::Relaxed);
                                }
                            }
                        }
                        busy += t.elapsed();
                    }
                    clap_obs::observe("parallel.validator.validated", checked);
                    let wall = rung_start.elapsed().as_nanos().max(1) as u64;
                    let busy_pct = 100 * busy.as_nanos() as u64 / wall;
                    clap_obs::observe("parallel.validator.busy_pct", busy_pct);
                    clap_obs::observe(
                        "parallel.validator.recv_wait_us",
                        recv_wait.as_micros() as u64,
                    );
                    let _ = rung.done_tx.send(());
                }
            });
        }

        let shutdown = |pool: &ValidatorPool| {
            let mut st = pool.state.lock().expect("validator pool lock");
            st.shutdown = true;
            st.rung = None;
            drop(st);
            pool.cv.notify_all();
        };

        for c in config.min_cs..=config.max_cs {
            stats.cs_bound = c;
            if cancelled() {
                stats.truncated = true;
                budget_hit = true;
                break;
            }
            let truncated = AtomicBool::new(false);
            let (tx, rx) = crossbeam::channel::bounded::<(usize, Vec<SapId>)>(64);
            let (done_tx, done_rx) = crossbeam::channel::bounded::<()>(workers);
            let rung = Arc::new(Rung {
                rx,
                stop: AtomicBool::new(false),
                validated: AtomicU64::new(0),
                good: Mutex::new(Vec::new()),
                stop_after_good: config.stop_after_good,
                done_tx,
            });
            {
                let mut st = pool.state.lock().expect("validator pool lock");
                st.epoch += 1;
                st.rung = Some(Arc::clone(&rung));
                drop(st);
                pool.cv.notify_all();
            }

            // Producer (this thread).
            let stop = &rung.stop;
            let mut generator = Generator::new(program, system, config.max_generated_per_level);
            generator.set_node_budget(config.max_nodes_per_level);
            generator.set_deadline(deadline);
            generator.set_cancel(cancel);
            let mut batch: Vec<SapId> = Vec::with_capacity(BATCH_ORDERS * n);
            let mut batch_count = 0usize;
            let exhausted_sets =
                for_each_csp_set(system, c, config.max_sets_per_level, &mut |set| {
                    if stop.load(Ordering::Relaxed) {
                        return false;
                    }
                    if cancelled() {
                        truncated.store(true, Ordering::Relaxed);
                        return false;
                    }
                    if let Some(deadline) = deadline {
                        if Instant::now() >= deadline {
                            truncated.store(true, Ordering::Relaxed);
                            return false;
                        }
                    }
                    generator.run(set, &mut |order| {
                        if stop.load(Ordering::Relaxed) {
                            return false;
                        }
                        batch.extend_from_slice(order);
                        batch_count += 1;
                        if batch_count < BATCH_ORDERS {
                            return true;
                        }
                        let full =
                            std::mem::replace(&mut batch, Vec::with_capacity(BATCH_ORDERS * n));
                        clap_obs::observe("parallel.batch_occupancy", batch_count as u64);
                        let sent = tx.send((batch_count, full)).is_ok();
                        batch_count = 0;
                        sent
                    })
                });
            if batch_count > 0 {
                clap_obs::observe("parallel.batch_occupancy", batch_count as u64);
                let _ = tx.send((batch_count, std::mem::take(&mut batch)));
            }
            if !exhausted_sets
                || generator.hit_budget()
                || (config.max_generated_per_level > 0
                    && generator.generated() >= config.max_generated_per_level)
            {
                // Either stopped on purpose (fine) or a cap fired.
                if !stop.load(Ordering::Relaxed) {
                    truncated.store(true, Ordering::Relaxed);
                }
            }
            // Close the rung's channel, then wait for every worker's done
            // signal: completion is counted, not inferred from joins.
            drop(tx);
            for _ in 0..workers {
                let _ = done_rx.recv();
            }

            stats.generated += generator.generated();
            stats.validated += rung.validated.load(Ordering::Relaxed);
            if truncated.load(Ordering::Relaxed) {
                stats.truncated = true;
            }
            let found = std::mem::take(&mut *rung.good.lock().expect("good lock"));
            stats.good += found.len() as u64;
            if let Some((schedule, witness)) = found.into_iter().next() {
                let cs = schedule.context_switches(system.trace);
                emit_stats(&stats);
                shutdown(&pool);
                return Some(ParallelOutcome::Found {
                    schedule,
                    witness,
                    cs,
                    stats,
                });
            }
            if stats.truncated {
                budget_hit = true;
                break;
            }
        }
        shutdown(&pool);
        None
    });
    if let Some(found) = early {
        return found;
    }
    // A complete search must have started at bound 0, never truncated, and
    // reached a bound covering every preemption point of the trace.
    stats.complete =
        !stats.truncated && config.min_cs == 0 && config.max_cs >= preemption_point_count(system);
    emit_stats(&stats);
    if budget_hit {
        ParallelOutcome::Budget(stats)
    } else {
        ParallelOutcome::Exhausted(stats)
    }
}

/// Reports the search effort (Table 3 columns) to the metrics stream.
fn emit_stats(stats: &ParallelStats) {
    clap_obs::add("parallel.generated", stats.generated);
    clap_obs::add("parallel.validated", stats.validated);
    clap_obs::add("parallel.good", stats.good);
    clap_obs::add(
        "parallel.rejected",
        stats.validated.saturating_sub(stats.good),
    );
    clap_obs::gauge(
        "parallel.cs_bound",
        i64::try_from(stats.cs_bound).unwrap_or(i64::MAX),
    );
    clap_obs::gauge("parallel.truncated", i64::from(stats.truncated));
    clap_obs::gauge("parallel.complete", i64::from(stats.complete));
}

/// `log10` of the worst-case number of schedules — the interleaving count
/// `(Σ nᵢ)! / Π (nᵢ!)` used for Table 3's "#worst" column.
pub fn worst_case_schedules_log10(system: &ConstraintSystem<'_>) -> f64 {
    fn log10_factorial(n: u64) -> f64 {
        (2..=n).map(|k| (k as f64).log10()).sum()
    }
    let total: u64 = system.trace.per_thread.iter().map(|t| t.len() as u64).sum();
    let mut v = log10_factorial(total);
    for t in &system.trace.per_thread {
        v -= log10_factorial(t.len() as u64);
    }
    v
}
