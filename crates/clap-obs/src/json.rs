//! A minimal JSON reader/writer — just enough for the sinks and their
//! tests, so the crate stays dependency-free. The writer side is
//! [`escape`]; the reader side is a strict recursive-descent [`parse`]
//! covering the full JSON grammar (objects keep key order).

use std::fmt::Write as _;

/// A parsed JSON value. Objects preserve their key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (floats and integers collapse to `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source key order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's keys in source order, if it is an object.
    pub fn keys(&self) -> Option<Vec<&str>> {
        match self {
            Value::Obj(entries) => Some(entries.iter().map(|(k, _)| k.as_str()).collect()),
            _ => None,
        }
    }
}

impl Value {
    /// Renders the value as a compact JSON document. Numbers that are
    /// exact integers (the only kind the CLAP encoders produce) render
    /// without a fractional part, so `parse ∘ render` is byte-stable for
    /// integer-valued documents.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Value::Str(s) => {
                out.push('"');
                out.push_str(&escape(s));
                out.push('"');
            }
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    out.push_str(&escape(k));
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset on malformed input or trailing
/// garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Advance over a run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_owned())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_owned())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| "bad \\u escape".to_owned())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape `\\{}`", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_documents() {
        let v = parse(r#"{"a": 1, "b": [true, null, "x\ny"], "c": -2.5e1}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_num(), Some(1.0));
        assert_eq!(v.get("c").unwrap().as_num(), Some(-25.0));
        let arr = v.get("b").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Value::Bool(true));
        assert_eq!(arr[1], Value::Null);
        assert_eq!(arr[2].as_str(), Some("x\ny"));
        assert_eq!(v.keys().unwrap(), vec!["a", "b", "c"]);
    }

    #[test]
    fn escape_and_parse_are_inverse() {
        let nasty = "quote\" slash\\ newline\n tab\t ctrl\u{1} unicode\u{263a}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(nasty));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn render_parse_round_trip_is_byte_stable() {
        let doc = r#"{"a":1,"b":[true,null,"x\ny"],"c":-25,"d":{"e":0.5}}"#;
        let v = parse(doc).unwrap();
        let rendered = v.render();
        assert_eq!(rendered, doc);
        assert_eq!(parse(&rendered).unwrap().render(), rendered);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }
}
