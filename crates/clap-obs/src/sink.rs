//! The three render targets for a [`Snapshot`]: human-readable summary,
//! machine-readable JSONL, and Chrome `trace_event` JSON.
//!
//! The JSONL schema is deliberately rigid — every record type has a fixed
//! key set in a fixed order — and [`validate_jsonl_line`] re-checks it, so
//! downstream tooling (and the repo's own snapshot test and CI step) can
//! rely on the stream shape.

use crate::json;
use crate::Snapshot;
use std::io::{self, Write};

/// Writes the human-readable summary: a span tree per thread followed by
/// the metric tables.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_summary(snap: &Snapshot, w: &mut impl Write) -> io::Result<()> {
    writeln!(
        w,
        "== clap-obs summary: {} in {} span(s), {} counter(s), {} gauge(s), {} hist(s), {} event(s) ==",
        fmt_ns(snap.elapsed_ns),
        snap.spans.len(),
        snap.counters.len(),
        snap.gauges.len(),
        snap.hists.len(),
        snap.events.len(),
    )?;
    if !snap.spans.is_empty() {
        writeln!(w, "spans:")?;
        let mut tid = u64::MAX;
        for s in &snap.spans {
            if s.tid != tid {
                tid = s.tid;
                writeln!(w, "  [tid {tid}]")?;
            }
            writeln!(
                w,
                "    {:indent$}{:<32} {:>10}  @{}",
                "",
                s.name,
                fmt_ns(s.dur_ns),
                fmt_ns(s.start_ns),
                indent = 2 * s.depth as usize,
            )?;
        }
    }
    if !snap.counters.is_empty() {
        writeln!(w, "counters:")?;
        for (name, value) in &snap.counters {
            writeln!(w, "  {name:<40} {value:>12}")?;
        }
    }
    if !snap.gauges.is_empty() {
        writeln!(w, "gauges:")?;
        for (name, value) in &snap.gauges {
            writeln!(w, "  {name:<40} {value:>12}")?;
        }
    }
    if !snap.hists.is_empty() {
        writeln!(w, "histograms:")?;
        for (name, h) in &snap.hists {
            writeln!(
                w,
                "  {name:<40} count={} sum={} min={} p50~{} p90~{} p95~{} p99~{} max={}",
                h.count(),
                h.sum(),
                h.min(),
                h.p50(),
                h.p90(),
                h.p95(),
                h.p99(),
                h.max()
            )?;
        }
    }
    if !snap.events.is_empty() {
        writeln!(w, "events:")?;
        for e in &snap.events {
            write!(w, "  @{} [tid {}] {}", fmt_ns(e.ts_ns), e.tid, e.name)?;
            for (k, v) in &e.fields {
                write!(w, " {k}={v}")?;
            }
            writeln!(w)?;
        }
    }
    Ok(())
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}

/// Writes the JSONL stream: one `meta` line, then every span, counter,
/// gauge, histogram, and event as its own line.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_jsonl(snap: &Snapshot, w: &mut impl Write) -> io::Result<()> {
    writeln!(
        w,
        "{{\"type\":\"meta\",\"version\":1,\"elapsed_ns\":{},\"spans\":{},\"counters\":{},\"gauges\":{},\"hists\":{},\"events\":{}}}",
        snap.elapsed_ns,
        snap.spans.len(),
        snap.counters.len(),
        snap.gauges.len(),
        snap.hists.len(),
        snap.events.len(),
    )?;
    if let Some(id) = &snap.trace_id {
        writeln!(
            w,
            "{{\"type\":\"trace\",\"trace_id\":\"{}\"}}",
            json::escape(id)
        )?;
    }
    for s in &snap.spans {
        writeln!(
            w,
            "{{\"type\":\"span\",\"name\":\"{}\",\"tid\":{},\"start_ns\":{},\"dur_ns\":{},\"depth\":{}}}",
            json::escape(&s.name),
            s.tid,
            s.start_ns,
            s.dur_ns,
            s.depth,
        )?;
    }
    for (name, value) in &snap.counters {
        writeln!(
            w,
            "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{value}}}",
            json::escape(name),
        )?;
    }
    for (name, value) in &snap.gauges {
        writeln!(
            w,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{value}}}",
            json::escape(name),
        )?;
    }
    for (name, h) in &snap.hists {
        write!(
            w,
            "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            json::escape(name),
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            h.p50(),
            h.p90(),
            h.p95(),
            h.p99(),
        )?;
        for (i, (upper, count)) in h.buckets().iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(w, "[{upper},{count}]")?;
        }
        writeln!(w, "]}}")?;
    }
    for e in &snap.events {
        write!(
            w,
            "{{\"type\":\"event\",\"name\":\"{}\",\"tid\":{},\"ts_ns\":{},\"fields\":{{",
            json::escape(&e.name),
            e.tid,
            e.ts_ns,
        )?;
        for (i, (k, v)) in e.fields.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(w, "\"{}\":\"{}\"", json::escape(k), json::escape(v))?;
        }
        writeln!(w, "}}}}")?;
    }
    Ok(())
}

/// The exact key sequence each JSONL record type carries.
pub const JSONL_SCHEMA: &[(&str, &[&str])] = &[
    (
        "meta",
        &[
            "type",
            "version",
            "elapsed_ns",
            "spans",
            "counters",
            "gauges",
            "hists",
            "events",
        ],
    ),
    ("trace", &["type", "trace_id"]),
    (
        "span",
        &["type", "name", "tid", "start_ns", "dur_ns", "depth"],
    ),
    ("counter", &["type", "name", "value"]),
    ("gauge", &["type", "name", "value"]),
    (
        "hist",
        &[
            "type", "name", "count", "sum", "min", "max", "p50", "p90", "p95", "p99", "buckets",
        ],
    ),
    ("event", &["type", "name", "tid", "ts_ns", "fields"]),
];

/// Exact field-key sequences for the structured events whose shape is a
/// stable contract (service and benchmark artifacts that downstream
/// tooling parses). Events not listed here are free-form; events whose
/// name falls under a [`STRICT_NAME_PREFIXES`] prefix **must** be listed.
pub const EVENT_FIELD_SCHEMA: &[(&str, &[&str])] = &[
    (
        "portfolio.attempt",
        &["engine", "cs_min", "cs_max", "outcome", "wall_us"],
    ),
    ("portfolio.winner", &["engine"]),
    ("bench.explore", &["host_cores", "repeats"]),
    (
        "bench.explore.cell",
        &[
            "workload",
            "seed_budget",
            "workers",
            "millis",
            "speedup",
            "seed",
        ],
    ),
    ("bench.vm", &["host_cores", "repeats"]),
    (
        "bench.vm.cell",
        &["workload", "phase", "backend", "millis", "steps", "speedup"],
    ),
    (
        "bench.serve",
        &["corpus", "workers", "queue_cap", "clients"],
    ),
    (
        "bench.serve.cell",
        &["program", "phase", "latency_us", "cached"],
    ),
    ("bench.serve.summary", &["cold_us", "warm_us", "speedup"]),
    (
        "bench.serve.shed",
        &["submitted", "accepted", "shed", "drained"],
    ),
    ("serve.job.done", &["job", "cached", "wall_us"]),
    ("serve.job.failed", &["job", "error"]),
    ("serve.job.trace", &["job", "trace_id", "queue_wait_us"]),
    ("serve.shutdown", &["drained"]),
    (
        "bench.diff",
        &[
            "old",
            "new",
            "margin_pct",
            "cells",
            "regressions",
            "improvements",
        ],
    ),
    (
        "bench.diff.cell",
        &["bench", "key", "old", "new", "delta_pct", "status"],
    ),
    (
        "bench.table1.row",
        &[
            "program",
            "loc",
            "threads",
            "shared_vars",
            "instructions",
            "branches",
            "saps",
            "constraints",
            "variables",
            "time_symbolic_ns",
            "time_solve_ns",
            "cs",
            "success",
        ],
    ),
    (
        "bench.table2.row",
        &[
            "program",
            "native_ns",
            "leap_ns",
            "clap_ns",
            "leap_bytes",
            "clap_bytes",
            "time_reduction_pct",
            "space_reduction_pct",
        ],
    ),
    (
        "bench.table3.row",
        &[
            "program",
            "worst_log10",
            "generated",
            "cs_bound",
            "good",
            "found",
            "par_time_ns",
            "seq_time_ns",
            "auto_time_ns",
            "auto_winner",
        ],
    ),
    // One cell of Table 4: the same recorded C11 failure re-encoded and
    // solved under one memory model.
    (
        "bench.atomics",
        &[
            "program",
            "model",
            "hb_edges",
            "order_vars",
            "clauses",
            "solve_ns",
            "sat",
        ],
    ),
];

/// Name prefixes under strict validation: counters, gauges, and
/// histograms must appear in [`KNOWN_STRICT_METRICS`], events in
/// [`EVENT_FIELD_SCHEMA`]. Everything else (pipeline internals, debug
/// probes) stays free-form.
pub const STRICT_NAME_PREFIXES: &[&str] = &["serve.", "bench.", "check.oracle.", "solver."];

/// Every counter/gauge/histogram name the service, benchmark, and
/// differential-oracle layers may emit under a strict prefix. A
/// misspelled `serve.*` or `check.oracle.*` metric fails
/// [`validate_jsonl_line`] instead of silently forking the namespace.
pub const KNOWN_STRICT_METRICS: &[&str] = &[
    "serve.cache.hit",
    "serve.cache.miss",
    "serve.cache.coalesced",
    "serve.cache.entries",
    "serve.cache.journal.loaded",
    "serve.cache.journal.skipped",
    "serve.queue.depth",
    "serve.queue.rejected",
    "serve.jobs.submitted",
    "serve.jobs.completed",
    "serve.jobs.failed",
    "serve.job.wall_us",
    "serve.http.requests",
    "serve.http.errors",
    "serve.queue.wait_us",
    "serve.cache.hit_ratio_pct",
    "serve.http.latency_us.submit",
    "serve.http.latency_us.status",
    "serve.http.latency_us.report",
    "serve.http.latency_us.metrics",
    "serve.http.latency_us.shutdown",
    "serve.http.latency_us.other",
    "check.oracle.executions",
    "check.oracle.failing",
    "check.oracle.bound_prunes",
    "check.oracle.deadlocks",
    "check.oracle.atomics",
    "solver.hb_edges",
    "solver.decisions",
    "solver.conflicts",
    "solver.propagations",
    "solver.order_graph.queries",
    "solver.order_graph.visits",
    "solver.order_graph.edges",
];

fn strict(name: &str) -> bool {
    STRICT_NAME_PREFIXES.iter().any(|p| name.starts_with(p))
}

/// Validates one JSONL line against [`JSONL_SCHEMA`], returning the record
/// type. Names under a [`STRICT_NAME_PREFIXES`] prefix are additionally
/// checked against the name registries: events must match their
/// [`EVENT_FIELD_SCHEMA`] field sequence exactly, metrics must be listed
/// in [`KNOWN_STRICT_METRICS`].
///
/// # Errors
///
/// Returns a description of the first schema violation: malformed JSON, an
/// unknown record type, missing/extra/misordered keys, a wrongly typed
/// field, or an unregistered/misshapen strict-prefix record.
pub fn validate_jsonl_line(line: &str) -> Result<&'static str, String> {
    let v = json::parse(line).map_err(|e| format!("malformed JSON: {e}"))?;
    let ty = v
        .get("type")
        .and_then(json::Value::as_str)
        .ok_or_else(|| "missing `type`".to_owned())?;
    let (ty_static, keys) = JSONL_SCHEMA
        .iter()
        .find(|(t, _)| *t == ty)
        .ok_or_else(|| format!("unknown record type `{ty}`"))?;
    let got = v
        .keys()
        .ok_or_else(|| "record is not an object".to_owned())?;
    if got != *keys {
        return Err(format!(
            "key mismatch for `{ty}`: got {got:?}, want {keys:?}"
        ));
    }
    for key in keys.iter().skip(1) {
        let field = v.get(key).expect("key checked above");
        let ok = match (*ty_static, *key) {
            (_, "name") => field.as_str().is_some(),
            ("trace", "trace_id") => field.as_str().is_some(),
            ("event", "fields") => match field {
                json::Value::Obj(entries) => entries.iter().all(|(_, fv)| fv.as_str().is_some()),
                _ => false,
            },
            ("hist", "buckets") => match field {
                json::Value::Arr(pairs) => pairs.iter().all(|p| {
                    p.as_arr().is_some_and(|pair| {
                        pair.len() == 2 && pair.iter().all(|n| n.as_num().is_some())
                    })
                }),
                _ => false,
            },
            _ => field.as_num().is_some(),
        };
        if !ok {
            return Err(format!("field `{key}` of `{ty}` has the wrong type"));
        }
    }
    if *ty_static == "hist" {
        // A non-empty histogram must carry its bucket bounds: quantiles
        // without the buckets they came from are unverifiable.
        let count = v.get("count").and_then(json::Value::as_num).unwrap_or(0.0);
        let buckets = match v.get("buckets") {
            Some(json::Value::Arr(pairs)) => pairs.len(),
            _ => 0,
        };
        if count > 0.0 && buckets == 0 {
            return Err("hist record with samples but no bucket bounds".to_owned());
        }
    }
    let name = v.get("name").and_then(json::Value::as_str).unwrap_or("");
    if strict(name) {
        match *ty_static {
            "event" => {
                let want = EVENT_FIELD_SCHEMA
                    .iter()
                    .find(|(n, _)| *n == name)
                    .map(|(_, fields)| *fields)
                    .ok_or_else(|| format!("unregistered strict event `{name}`"))?;
                let got: Vec<&str> = match v.get("fields") {
                    Some(json::Value::Obj(entries)) => {
                        entries.iter().map(|(k, _)| k.as_str()).collect()
                    }
                    _ => Vec::new(),
                };
                if got != want {
                    return Err(format!(
                        "event `{name}` fields drifted: got {got:?}, want {want:?}"
                    ));
                }
            }
            "counter" | "gauge" | "hist" if !KNOWN_STRICT_METRICS.contains(&name) => {
                return Err(format!("unregistered strict metric `{name}`"));
            }
            _ => {}
        }
    }
    Ok(ty_static)
}

/// Writes Chrome `trace_event` JSON: spans as complete (`X`) events,
/// counters/gauges as counter (`C`) samples, and events as instants (`i`).
/// Loadable in `about:tracing` and Perfetto.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_chrome_trace(snap: &Snapshot, w: &mut impl Write) -> io::Result<()> {
    let us = |ns: u64| ns as f64 / 1e3;
    writeln!(w, "{{\"traceEvents\":[")?;
    let mut first = true;
    let sep = |w: &mut dyn Write, first: &mut bool| -> io::Result<()> {
        if *first {
            *first = false;
            Ok(())
        } else {
            writeln!(w, ",")
        }
    };
    if let Some(id) = &snap.trace_id {
        // Label the process with the request's trace id so stitched
        // client/worker traces identify themselves in the viewer.
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"process_labels\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{{\"labels\":\"trace:{}\"}}}}",
            json::escape(id),
        )?;
    }
    for s in &snap.spans {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"{}\",\"cat\":\"clap\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"dur\":{:.3}}}",
            json::escape(&s.name),
            s.tid,
            us(s.start_ns),
            us(s.dur_ns),
        )?;
    }
    for (name, value) in &snap.counters {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"{}\",\"cat\":\"metric\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{:.3},\"args\":{{\"value\":{value}}}}}",
            json::escape(name),
            us(snap.elapsed_ns),
        )?;
    }
    for (name, value) in &snap.gauges {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"{}\",\"cat\":\"metric\",\"ph\":\"C\",\"pid\":1,\"tid\":0,\"ts\":{:.3},\"args\":{{\"value\":{value}}}}}",
            json::escape(name),
            us(snap.elapsed_ns),
        )?;
    }
    for e in &snap.events {
        sep(w, &mut first)?;
        write!(
            w,
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{:.3},\"s\":\"t\",\"args\":{{",
            json::escape(&e.name),
            e.tid,
            us(e.ts_ns),
        )?;
        for (i, (k, v)) in e.fields.iter().enumerate() {
            if i > 0 {
                write!(w, ",")?;
            }
            write!(w, "\"{}\":\"{}\"", json::escape(k), json::escape(v))?;
        }
        write!(w, "}}}}")?;
    }
    writeln!(w, "\n],\"displayTimeUnit\":\"ms\"}}")?;
    Ok(())
}

/// Sanitizes a dotted metric name into a Prometheus metric name:
/// `serve.http.latency_us.submit` → `clap_serve_http_latency_us_submit`.
pub fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 5);
    out.push_str("clap_");
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || (c == '_' && i > 0) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Writes the Prometheus text exposition (format version 0.0.4) of a
/// snapshot: counters and gauges as single samples, histograms as
/// cumulative `_bucket{le="..."}` series with `_sum`/`_count` plus
/// companion `_p50`/`_p90`/`_p95`/`_p99` gauges precomputed from the log
/// buckets. Served by `clap-serve GET /metrics`.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_prometheus(snap: &Snapshot, w: &mut impl Write) -> io::Result<()> {
    for (name, value) in &snap.counters {
        let n = prometheus_name(name);
        writeln!(w, "# TYPE {n} counter")?;
        writeln!(w, "{n} {value}")?;
    }
    for (name, value) in &snap.gauges {
        let n = prometheus_name(name);
        writeln!(w, "# TYPE {n} gauge")?;
        writeln!(w, "{n} {value}")?;
    }
    for (name, h) in &snap.hists {
        let n = prometheus_name(name);
        writeln!(w, "# TYPE {n} histogram")?;
        let mut cum = 0u64;
        for &(upper, count) in h.buckets() {
            cum += count;
            writeln!(w, "{n}_bucket{{le=\"{upper}\"}} {cum}")?;
        }
        writeln!(w, "{n}_bucket{{le=\"+Inf\"}} {}", h.count())?;
        writeln!(w, "{n}_sum {}", h.sum())?;
        writeln!(w, "{n}_count {}", h.count())?;
        for (q, v) in [
            ("p50", h.p50()),
            ("p90", h.p90()),
            ("p95", h.p95()),
            ("p99", h.p99()),
        ] {
            writeln!(w, "# TYPE {n}_{q} gauge")?;
            writeln!(w, "{n}_{q} {v}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{add, disable, enable, event, gauge, observe, reset, snapshot, span, test_lock};

    fn sample_snapshot() -> Snapshot {
        let _l = test_lock();
        reset();
        enable();
        {
            let _root = span("record");
            let _child = span("explore.worker");
            add("explore.seeds", 42);
            gauge("schedule.context_switches", 1);
            observe("parallel.batch_occupancy", 64);
            event("dbg.frontier", &[("thread", "2".to_owned())]);
        }
        disable();
        snapshot()
    }

    #[test]
    fn jsonl_lines_all_validate() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_jsonl(&snap, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut types = Vec::new();
        for line in text.lines() {
            types.push(validate_jsonl_line(line).unwrap_or_else(|e| panic!("{e}: {line}")));
        }
        assert_eq!(types[0], "meta");
        for ty in ["span", "counter", "gauge", "hist", "event"] {
            assert!(types.contains(&ty), "missing record type {ty}");
        }
    }

    #[test]
    fn validator_rejects_drift() {
        assert!(validate_jsonl_line("not json").is_err());
        assert!(validate_jsonl_line(r#"{"type":"mystery"}"#).is_err());
        // Missing a key.
        assert!(validate_jsonl_line(r#"{"type":"counter","name":"x"}"#).is_err());
        // Extra key.
        assert!(
            validate_jsonl_line(r#"{"type":"counter","name":"x","value":1,"unit":"s"}"#).is_err()
        );
        // Wrong type.
        assert!(validate_jsonl_line(r#"{"type":"counter","name":"x","value":"1"}"#).is_err());
        // Reordered keys.
        assert!(validate_jsonl_line(r#"{"type":"counter","value":1,"name":"x"}"#).is_err());
        // Correct line passes.
        assert_eq!(
            validate_jsonl_line(r#"{"type":"counter","name":"x","value":1}"#).unwrap(),
            "counter"
        );
    }

    #[test]
    fn strict_prefix_names_are_registry_checked() {
        // A registered serve counter passes; a misspelled one fails.
        assert_eq!(
            validate_jsonl_line(r#"{"type":"counter","name":"serve.cache.hit","value":3}"#)
                .unwrap(),
            "counter"
        );
        assert!(
            validate_jsonl_line(r#"{"type":"counter","name":"serve.cache.hits","value":3}"#)
                .is_err()
        );
        // A registered serve event with the exact field sequence passes.
        assert_eq!(
            validate_jsonl_line(
                r#"{"type":"event","name":"serve.job.done","tid":0,"ts_ns":1,"fields":{"job":"3","cached":"true","wall_us":"12"}}"#
            )
            .unwrap(),
            "event"
        );
        // Drifted fields and unregistered serve events fail.
        assert!(validate_jsonl_line(
            r#"{"type":"event","name":"serve.job.done","tid":0,"ts_ns":1,"fields":{"job":"3"}}"#
        )
        .is_err());
        assert!(validate_jsonl_line(
            r#"{"type":"event","name":"serve.mystery","tid":0,"ts_ns":1,"fields":{}}"#
        )
        .is_err());
        // The solver and atomic-oracle metrics are registered; typos fail.
        assert_eq!(
            validate_jsonl_line(r#"{"type":"counter","name":"solver.hb_edges","value":42}"#)
                .unwrap(),
            "counter"
        );
        assert_eq!(
            validate_jsonl_line(r#"{"type":"counter","name":"check.oracle.atomics","value":4}"#)
                .unwrap(),
            "counter"
        );
        assert!(
            validate_jsonl_line(r#"{"type":"counter","name":"solver.hb_edge","value":42}"#)
                .is_err()
        );
        // The Table 4 per-model cell event carries its exact field set.
        assert_eq!(
            validate_jsonl_line(
                r#"{"type":"event","name":"bench.atomics","tid":0,"ts_ns":1,"fields":{"program":"seqlock","model":"C11","hb_edges":"31","order_vars":"24","clauses":"190","solve_ns":"52000","sat":"true"}}"#
            )
            .unwrap(),
            "event"
        );
        // Non-strict names stay free-form.
        assert_eq!(
            validate_jsonl_line(
                r#"{"type":"event","name":"dbg.anything","tid":0,"ts_ns":1,"fields":{"x":"y"}}"#
            )
            .unwrap(),
            "event"
        );
        assert_eq!(
            validate_jsonl_line(r#"{"type":"counter","name":"explore.novel","value":1}"#).unwrap(),
            "counter"
        );
    }

    #[test]
    fn chrome_trace_is_valid_json_with_all_phases() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_chrome_trace(&snap, &mut buf).unwrap();
        let doc = crate::json::parse(&String::from_utf8(buf).unwrap()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(events.len() >= 5);
        let names: Vec<&str> = events
            .iter()
            .map(|e| e.get("name").unwrap().as_str().unwrap())
            .collect();
        assert!(names.contains(&"record"));
        assert!(names.contains(&"explore.seeds"));
        for e in events {
            let ph = e.get("ph").unwrap().as_str().unwrap();
            assert!(matches!(ph, "X" | "C" | "i"), "unexpected phase {ph}");
        }
    }

    #[test]
    fn hist_records_must_carry_bucket_bounds() {
        // A well-formed hist line with bounds passes.
        assert_eq!(
            validate_jsonl_line(
                r#"{"type":"hist","name":"h","count":2,"sum":30,"min":10,"max":20,"p50":10,"p90":20,"p95":20,"p99":20,"buckets":[[10,1],[20,1]]}"#
            )
            .unwrap(),
            "hist"
        );
        // Samples but no bucket bounds: rejected.
        assert!(validate_jsonl_line(
            r#"{"type":"hist","name":"h","count":2,"sum":30,"min":10,"max":20,"p50":10,"p90":20,"p95":20,"p99":20,"buckets":[]}"#
        )
        .is_err());
        // Old shape without the buckets key at all: rejected.
        assert!(validate_jsonl_line(
            r#"{"type":"hist","name":"h","count":2,"sum":30,"min":10,"max":20,"p50":10,"p90":20,"p99":20}"#
        )
        .is_err());
        // Malformed bucket pair: rejected.
        assert!(validate_jsonl_line(
            r#"{"type":"hist","name":"h","count":1,"sum":10,"min":10,"max":10,"p50":10,"p90":10,"p95":10,"p99":10,"buckets":[[10]]}"#
        )
        .is_err());
    }

    #[test]
    fn trace_records_validate() {
        assert_eq!(
            validate_jsonl_line(r#"{"type":"trace","trace_id":"d1c3b00c0ffee777"}"#).unwrap(),
            "trace"
        );
        assert!(validate_jsonl_line(r#"{"type":"trace","trace_id":7}"#).is_err());
        assert!(validate_jsonl_line(r#"{"type":"trace"}"#).is_err());
    }

    #[test]
    fn trace_id_flows_into_jsonl_and_chrome_sinks() {
        let mut snap = sample_snapshot();
        snap.trace_id = Some("cafe1234beef5678".to_owned());
        let mut buf = Vec::new();
        write_jsonl(&snap, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let trace_line = text.lines().nth(1).expect("trace line after meta");
        assert_eq!(
            trace_line,
            r#"{"type":"trace","trace_id":"cafe1234beef5678"}"#
        );
        for line in text.lines() {
            validate_jsonl_line(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        let mut buf = Vec::new();
        write_chrome_trace(&snap, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("trace:cafe1234beef5678"));
        crate::json::parse(&text).unwrap();
    }

    #[test]
    fn prometheus_exposition_has_buckets_and_quantiles() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_prometheus(&snap, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("# TYPE clap_explore_seeds counter"));
        assert!(text.contains("clap_explore_seeds 42"));
        assert!(text.contains("# TYPE clap_schedule_context_switches gauge"));
        assert!(text.contains("# TYPE clap_parallel_batch_occupancy histogram"));
        assert!(text.contains("clap_parallel_batch_occupancy_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("clap_parallel_batch_occupancy_count 1"));
        for q in ["p50", "p95", "p99"] {
            assert!(
                text.contains(&format!("clap_parallel_batch_occupancy_{q} ")),
                "missing {q}:\n{text}"
            );
        }
        // Cumulative bucket counts are monotone.
        let mut last = 0u64;
        for line in text.lines().filter(|l| l.contains("_bucket{le=\"")) {
            if line.contains("+Inf") {
                continue;
            }
            let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(n >= last, "bucket counts not cumulative: {line}");
            last = n;
        }
    }

    #[test]
    fn summary_renders_every_section() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_summary(&snap, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        for needle in [
            "spans:",
            "counters:",
            "gauges:",
            "histograms:",
            "events:",
            "record",
            "explore.seeds",
        ] {
            assert!(text.contains(needle), "summary missing {needle}:\n{text}");
        }
    }
}
