//! Structured observability for the CLAP pipeline.
//!
//! A process-global [`Collector`] gathers **hierarchical spans** (wall-time
//! accounting, per thread, nested by scope) and **metrics** — monotonic
//! counters, last-value gauges, power-of-two-bucket histograms, and one-off
//! structured events. Everything is a no-op while the collector is
//! disabled: the fast path of every probe is a single relaxed atomic load,
//! so always-on instrumentation costs nothing in production runs.
//!
//! Three sinks render a [`Snapshot`] of the collected data:
//!
//! * [`sink::write_summary`] — human-readable span tree + metric tables;
//! * [`sink::write_jsonl`] — one JSON object per line, machine-readable
//!   (schema checked by [`sink::validate_jsonl_line`]);
//! * [`sink::write_chrome_trace`] — Chrome `trace_event` JSON, loadable in
//!   `about:tracing` / [Perfetto](https://ui.perfetto.dev) for
//!   flamegraph-style viewing.
//!
//! The [`Observer`] bundles sink destinations so a pipeline entry point can
//! `install()` the collector, run, and `flush()` the files in one gesture.
//!
//! # Example
//!
//! ```
//! clap_obs::reset();
//! clap_obs::enable();
//! {
//!     let _phase = clap_obs::span("solve");
//!     clap_obs::add("solver.decisions", 17);
//!     clap_obs::observe("solver.batch", 64);
//! }
//! let snap = clap_obs::snapshot();
//! assert_eq!(snap.counters["solver.decisions"], 17);
//! assert_eq!(snap.spans.len(), 1);
//! clap_obs::disable();
//! ```

pub mod json;
pub mod sink;

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// One finished span: a named scope on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Scope name (dotted lowercase, e.g. `explore.worker`).
    pub name: Cow<'static, str>,
    /// Collector-assigned thread id (0 is the first thread seen).
    pub tid: u64,
    /// Start, in nanoseconds since the collector was reset.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth on its thread (0 = root).
    pub depth: u32,
}

/// One structured annotation: a named instant with string fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name.
    pub name: String,
    /// Collector-assigned thread id.
    pub tid: u64,
    /// Timestamp in nanoseconds since the collector was reset.
    pub ts_ns: u64,
    /// Ordered key/value payload.
    pub fields: Vec<(String, String)>,
}

/// Power-of-two-bucket histogram (bucket `i` holds values with `i`
/// significant bits, so `[2^(i-1), 2^i)`).
#[derive(Debug, Clone)]
struct Hist {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Hist {
    fn new() -> Self {
        Hist {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }

    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    /// The bucket upper bound at which the cumulative count reaches
    /// `q` (in per-mille) of the total.
    fn quantile(&self, q_permille: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (self.count * q_permille).div_ceil(1000);
        let mut cum = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= target {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(500),
            p90: self.quantile(900),
            p99: self.quantile(990),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Aggregated histogram statistics as exported by [`snapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Approximate 50th percentile (bucket upper bound).
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

struct State {
    start: Instant,
    epoch: u64,
    next_tid: u64,
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, Hist>,
    events: Vec<EventRecord>,
}

impl State {
    fn new() -> Self {
        State {
            start: Instant::now(),
            epoch: 0,
            next_tid: 0,
            spans: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            events: Vec::new(),
        }
    }
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::new()))
}

thread_local! {
    static TLS: RefCell<Tls> = const { RefCell::new(Tls { tid: None, depth: 0 }) };
}

struct Tls {
    /// Cached `(collector epoch, thread id)` — a reset bumps the epoch,
    /// invalidating every thread's cache so ids never collide.
    tid: Option<(u64, u64)>,
    depth: u32,
}

fn thread_id(st: &mut State) -> u64 {
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        match tls.tid {
            Some((epoch, t)) if epoch == st.epoch => t,
            _ => {
                let t = st.next_tid;
                st.next_tid += 1;
                tls.tid = Some((st.epoch, t));
                t
            }
        }
    })
}

/// Turns the collector on. Probes start recording immediately.
pub fn enable() {
    ENABLED.store(true, Ordering::Release);
}

/// Turns the collector off. Probes become single-atomic-load no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether the collector is currently recording.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all collected data and restarts the clock. Thread-id
/// assignments restart too: the reset bumps the collector epoch, which
/// invalidates every thread's cached id on its next probe.
pub fn reset() {
    let mut st = state().lock().expect("obs state");
    let epoch = st.epoch + 1;
    *st = State::new();
    st.epoch = epoch;
}

/// An RAII guard for one span; records the span when dropped.
#[must_use = "a span measures the scope it is alive in"]
pub struct SpanGuard {
    info: Option<(Cow<'static, str>, Instant)>,
}

/// Opens a span named `name` on the current thread. When the collector is
/// disabled this is a no-op returning an inert guard.
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { info: None };
    }
    TLS.with(|tls| tls.borrow_mut().depth += 1);
    SpanGuard {
        info: Some((name.into(), Instant::now())),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((name, started)) = self.info.take() else {
            return;
        };
        let depth = TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            tls.depth = tls.depth.saturating_sub(1);
            tls.depth
        });
        if !is_enabled() {
            return; // disabled mid-span: drop the record
        }
        let dur_ns = started.elapsed().as_nanos() as u64;
        let mut st = state().lock().expect("obs state");
        let start_ns = started.saturating_duration_since(st.start).as_nanos() as u64;
        let tid = thread_id(&mut st);
        st.spans.push(SpanRecord {
            name,
            tid,
            start_ns,
            dur_ns,
            depth,
        });
    }
}

/// Adds `delta` to the counter `name`.
pub fn add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut st = state().lock().expect("obs state");
    match st.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            st.counters.insert(name.to_owned(), delta);
        }
    }
}

/// Sets the gauge `name` to `value` (last write wins).
pub fn gauge(name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    let mut st = state().lock().expect("obs state");
    match st.gauges.get_mut(name) {
        Some(v) => *v = value,
        None => {
            st.gauges.insert(name.to_owned(), value);
        }
    }
}

/// Records one sample into the histogram `name`.
pub fn observe(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut st = state().lock().expect("obs state");
    match st.hists.get_mut(name) {
        Some(h) => h.record(value),
        None => {
            let mut h = Hist::new();
            h.record(value);
            st.hists.insert(name.to_owned(), h);
        }
    }
}

/// Records a structured instant event with string fields.
pub fn event(name: &str, fields: &[(&str, String)]) {
    if !is_enabled() {
        return;
    }
    let mut st = state().lock().expect("obs state");
    let ts_ns = st.start.elapsed().as_nanos() as u64;
    let tid = thread_id(&mut st);
    st.events.push(EventRecord {
        name: name.to_owned(),
        tid,
        ts_ns,
        fields: fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    });
}

/// An immutable copy of everything collected so far.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Nanoseconds since the collector was reset.
    pub elapsed_ns: u64,
    /// Finished spans, sorted by `(tid, start_ns, depth)`.
    pub spans: Vec<SpanRecord>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub hists: BTreeMap<String, HistSummary>,
    /// Instant events in recording order.
    pub events: Vec<EventRecord>,
}

/// A position in the collector's stream, taken with [`mark`]: the point
/// from which [`snapshot_since`] reports deltas. Used by services running
/// several observed pipelines in one process to attribute a window of the
/// shared stream to one job.
#[derive(Debug, Clone)]
pub struct Mark {
    epoch: u64,
    spans: usize,
    events: usize,
    counters: BTreeMap<String, u64>,
}

/// Records the current stream position for a later [`snapshot_since`].
pub fn mark() -> Mark {
    let st = state().lock().expect("obs state");
    Mark {
        epoch: st.epoch,
        spans: st.spans.len(),
        events: st.events.len(),
        counters: st.counters.clone(),
    }
}

/// A snapshot of what was collected **after** `mark`: spans and events
/// recorded since, and counters as deltas (zero-delta counters are
/// omitted). Gauges and histograms are reported cumulatively — a gauge is
/// last-write-wins and bucket counts cannot be subtracted faithfully. If
/// the collector was [`reset`] after the mark was taken, the full current
/// snapshot is returned (the old positions are meaningless).
///
/// Note that in a concurrent process the window contains *everything*
/// recorded during it, including spans of other threads' work; records
/// stay attributable through their `tid`.
pub fn snapshot_since(mark: &Mark) -> Snapshot {
    let st = state().lock().expect("obs state");
    if st.epoch != mark.epoch {
        drop(st);
        return snapshot();
    }
    let mut spans: Vec<SpanRecord> = st.spans[mark.spans.min(st.spans.len())..].to_vec();
    spans.sort_by(|a, b| {
        (a.tid, a.start_ns, a.depth, &a.name).cmp(&(b.tid, b.start_ns, b.depth, &b.name))
    });
    let counters = st
        .counters
        .iter()
        .filter_map(|(k, v)| {
            let delta = v - mark.counters.get(k).copied().unwrap_or(0);
            (delta > 0).then(|| (k.clone(), delta))
        })
        .collect();
    Snapshot {
        elapsed_ns: st.start.elapsed().as_nanos() as u64,
        spans,
        counters,
        gauges: st.gauges.clone(),
        hists: st
            .hists
            .iter()
            .map(|(k, h)| (k.clone(), h.summary()))
            .collect(),
        events: st.events[mark.events.min(st.events.len())..].to_vec(),
    }
}

/// Takes a snapshot of the collector (works whether enabled or not).
pub fn snapshot() -> Snapshot {
    let st = state().lock().expect("obs state");
    let mut spans = st.spans.clone();
    spans.sort_by(|a, b| {
        (a.tid, a.start_ns, a.depth, &a.name).cmp(&(b.tid, b.start_ns, b.depth, &b.name))
    });
    Snapshot {
        elapsed_ns: st.start.elapsed().as_nanos() as u64,
        spans,
        counters: st.counters.clone(),
        gauges: st.gauges.clone(),
        hists: st
            .hists
            .iter()
            .map(|(k, h)| (k.clone(), h.summary()))
            .collect(),
        events: st.events.clone(),
    }
}

/// Sink destinations for one observed run, carried by
/// `clap_core::PipelineConfig::with_observer` and the CLI's
/// `--trace`/`--metrics`/`-v` flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Observer {
    /// Write a Chrome `trace_event` JSON file here.
    pub trace_path: Option<PathBuf>,
    /// Write the JSONL metric/span stream here.
    pub metrics_path: Option<PathBuf>,
    /// Print the human-readable summary to stderr.
    pub summary: bool,
}

impl Observer {
    /// An observer with no sinks (collector stays untouched).
    pub fn none() -> Self {
        Observer::default()
    }

    /// Adds a Chrome trace output file.
    #[must_use]
    pub fn with_trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Adds a JSONL metrics output file.
    #[must_use]
    pub fn with_metrics(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_path = Some(path.into());
        self
    }

    /// Enables the stderr summary.
    #[must_use]
    pub fn with_summary(mut self) -> Self {
        self.summary = true;
        self
    }

    /// `true` when any sink is configured.
    pub fn is_active(&self) -> bool {
        self.trace_path.is_some() || self.metrics_path.is_some() || self.summary
    }

    /// Derives a per-job observer: every file sink path gains a
    /// `.job<id>` component before its extension (`out.jsonl` →
    /// `out.job3.jsonl`), so concurrent pipelines in one process write
    /// disjoint files instead of clobbering a shared path.
    #[must_use]
    pub fn for_job(&self, job_id: u64) -> Self {
        let suffix = |path: &PathBuf| -> PathBuf {
            let mut p = path.clone();
            let stem = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let name = match p.extension() {
                Some(ext) => format!("{stem}.job{job_id}.{}", ext.to_string_lossy()),
                None => format!("{stem}.job{job_id}"),
            };
            p.set_file_name(name);
            p
        };
        Observer {
            trace_path: self.trace_path.as_ref().map(&suffix),
            metrics_path: self.metrics_path.as_ref().map(&suffix),
            summary: self.summary,
        }
    }

    /// Resets and enables the global collector — a no-op when no sink is
    /// configured, so default configs never pay for instrumentation.
    pub fn install(&self) {
        if self.is_active() {
            reset();
            enable();
        }
    }

    /// Writes every configured sink from a fresh snapshot.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the sink files.
    pub fn flush(&self) -> io::Result<()> {
        if !self.is_active() {
            return Ok(());
        }
        self.write_sinks(&snapshot())
    }

    /// Writes every configured sink from a [`snapshot_since`] delta — the
    /// per-job flush used by services: each job marks the stream when it
    /// starts and flushes only its own window on completion, without
    /// resetting the process-global collector other jobs are feeding.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the sink files.
    pub fn flush_since(&self, mark: &Mark) -> io::Result<()> {
        if !self.is_active() {
            return Ok(());
        }
        self.write_sinks(&snapshot_since(mark))
    }

    fn write_sinks(&self, snap: &Snapshot) -> io::Result<()> {
        if let Some(path) = &self.metrics_path {
            let mut buf = Vec::new();
            sink::write_jsonl(snap, &mut buf)?;
            std::fs::write(path, buf)?;
        }
        if let Some(path) = &self.trace_path {
            let mut buf = Vec::new();
            sink::write_chrome_trace(snap, &mut buf)?;
            std::fs::write(path, buf)?;
        }
        if self.summary {
            let mut err = io::stderr().lock();
            sink::write_summary(snap, &mut err)?;
        }
        Ok(())
    }
}

/// Serializes tests that use the process-global collector. Rust runs the
/// tests of one binary concurrently, so any test that calls
/// [`reset`]/[`enable`]/[`snapshot`] must hold this guard for its whole
/// body. Not part of the stable API.
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_record_nothing() {
        let _l = test_lock();
        reset();
        disable();
        add("c", 5);
        gauge("g", 1);
        observe("h", 2);
        event("e", &[("k", "v".to_owned())]);
        let _s = span("s");
        drop(_s);
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn spans_nest_and_carry_depth() {
        let _l = test_lock();
        reset();
        enable();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        disable();
        let snap = snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.tid, inner.tid);
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let _l = test_lock();
        reset();
        enable();
        add("x", 2);
        add("x", 3);
        gauge("y", 10);
        gauge("y", -4);
        disable();
        let snap = snapshot();
        assert_eq!(snap.counters["x"], 5);
        assert_eq!(snap.gauges["y"], -4);
    }

    #[test]
    fn histogram_summaries_are_sane() {
        let _l = test_lock();
        reset();
        enable();
        for v in [1u64, 2, 3, 4, 100] {
            observe("h", v);
        }
        disable();
        let h = snapshot().hists["h"];
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 110);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 100);
        assert!(h.p50 >= 2 && h.p50 <= 7, "p50 = {}", h.p50);
        assert_eq!(h.p99, 100);
    }

    #[test]
    fn threads_get_distinct_ids() {
        let _l = test_lock();
        reset();
        enable();
        let _main = span("main-span");
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _w = span("worker");
                });
            }
        });
        drop(_main);
        disable();
        let snap = snapshot();
        let mut tids: Vec<u64> = snap.spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "three distinct threads: {:?}", snap.spans);
    }

    #[test]
    fn snapshot_since_reports_only_the_window() {
        let _l = test_lock();
        reset();
        enable();
        add("before", 7);
        add("both", 2);
        {
            let _s = span("early");
        }
        let m = mark();
        add("both", 3);
        add("after", 1);
        {
            let _s = span("late");
        }
        event("window.event", &[]);
        disable();
        let delta = snapshot_since(&m);
        assert_eq!(delta.counters.get("both"), Some(&3));
        assert_eq!(delta.counters.get("after"), Some(&1));
        assert!(!delta.counters.contains_key("before"), "zero-delta omitted");
        assert_eq!(delta.spans.len(), 1);
        assert_eq!(delta.spans[0].name, "late");
        assert_eq!(delta.events.len(), 1);
        assert_eq!(delta.events[0].name, "window.event");
    }

    #[test]
    fn snapshot_since_survives_reset() {
        let _l = test_lock();
        reset();
        enable();
        let m = mark();
        reset();
        add("fresh", 1);
        disable();
        // Positions from a previous epoch are meaningless: fall back to
        // the full snapshot instead of slicing out of bounds.
        let delta = snapshot_since(&m);
        assert_eq!(delta.counters.get("fresh"), Some(&1));
    }

    #[test]
    fn for_job_suffixes_every_file_sink() {
        let obs = Observer::none()
            .with_trace("/tmp/out.trace.json")
            .with_metrics("/tmp/metrics.jsonl");
        let job = obs.for_job(7);
        assert_eq!(
            job.trace_path.as_deref(),
            Some(std::path::Path::new("/tmp/out.trace.job7.json"))
        );
        assert_eq!(
            job.metrics_path.as_deref(),
            Some(std::path::Path::new("/tmp/metrics.job7.jsonl"))
        );
        let bare = Observer::none().with_metrics("/tmp/metrics").for_job(2);
        assert_eq!(
            bare.metrics_path.as_deref(),
            Some(std::path::Path::new("/tmp/metrics.job2"))
        );
    }

    #[test]
    fn quantile_bounds() {
        let mut h = Hist::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        let s = h.summary();
        assert!(s.p50 <= 15);
        assert_eq!(s.p99, 15, "99 of 100 samples sit in the [8,15] bucket");
        assert_eq!(s.max, 1_000_000);
    }
}
