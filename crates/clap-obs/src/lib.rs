//! Structured observability for the CLAP pipeline.
//!
//! A process-global [`Collector`] gathers **hierarchical spans** (wall-time
//! accounting, per thread, nested by scope) and **metrics** — monotonic
//! counters, last-value gauges, log-bucketed quantile [`Histogram`]s, and
//! one-off structured events. Everything is a no-op while the collector is
//! disabled: the fast path of every probe is a single relaxed atomic load,
//! so always-on instrumentation costs nothing in production runs.
//!
//! Three sinks render a [`Snapshot`] of the collected data:
//!
//! * [`sink::write_summary`] — human-readable span tree + metric tables;
//! * [`sink::write_jsonl`] — one JSON object per line, machine-readable
//!   (schema checked by [`sink::validate_jsonl_line`]);
//! * [`sink::write_chrome_trace`] — Chrome `trace_event` JSON, loadable in
//!   `about:tracing` / [Perfetto](https://ui.perfetto.dev) for
//!   flamegraph-style viewing;
//! * [`sink::write_prometheus`] — Prometheus-compatible text exposition
//!   (served by `clap-serve GET /metrics`).
//!
//! The [`Observer`] bundles sink destinations so a pipeline entry point can
//! `install()` the collector, run, and `flush()` the files in one gesture.
//!
//! # Example
//!
//! ```
//! clap_obs::reset();
//! clap_obs::enable();
//! {
//!     let _phase = clap_obs::span("solve");
//!     clap_obs::add("solver.decisions", 17);
//!     clap_obs::observe("solver.batch", 64);
//! }
//! let snap = clap_obs::snapshot();
//! assert_eq!(snap.counters["solver.decisions"], 17);
//! assert_eq!(snap.spans.len(), 1);
//! clap_obs::disable();
//! ```

pub mod json;
pub mod sink;

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// One finished span: a named scope on one thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Scope name (dotted lowercase, e.g. `explore.worker`).
    pub name: Cow<'static, str>,
    /// Collector-assigned thread id (0 is the first thread seen).
    pub tid: u64,
    /// Start, in nanoseconds since the collector was reset.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth on its thread (0 = root).
    pub depth: u32,
}

/// One structured annotation: a named instant with string fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventRecord {
    /// Event name.
    pub name: String,
    /// Collector-assigned thread id.
    pub tid: u64,
    /// Timestamp in nanoseconds since the collector was reset.
    pub ts_ns: u64,
    /// Ordered key/value payload.
    pub fields: Vec<(String, String)>,
}

/// Sub-bucket resolution of [`Histogram`]: each power-of-two octave is
/// split into `2^SUB_BUCKET_BITS` equal-width sub-buckets, bounding the
/// relative error of any reported quantile to `2^-SUB_BUCKET_BITS`
/// (6.25%).
pub const SUB_BUCKET_BITS: u32 = 4;

const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// Log-bucketed histogram (HdrHistogram-style, zero-dependency).
///
/// Values below `2^SUB_BUCKET_BITS` land in exact unit buckets; above,
/// each power-of-two octave is split into [`SUB_BUCKETS`](SUB_BUCKET_BITS)
/// equal-width sub-buckets, so every quantile is reported as a bucket
/// upper bound within 6.25% of the true sample. Buckets are stored
/// sparsely as sorted `(upper_inclusive, count)` pairs: snapshots carry
/// their bounds, serialize losslessly, and [`merge`](Histogram::merge)
/// exactly across workers or service windows (merge is associative and
/// commutative — the bucket grid is fixed, so merging never re-buckets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: Vec<(u64, u64)>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: Vec::new(),
        }
    }

    /// Inclusive upper bound of the log bucket containing `v`.
    pub fn bucket_upper(v: u64) -> u64 {
        if v < SUB_BUCKETS {
            return v; // exact linear region
        }
        let exp = 63 - v.leading_zeros(); // position of the leading bit
        let scale = exp - SUB_BUCKET_BITS; // sub-bucket width = 2^scale
        v | ((1u64 << scale) - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        let upper = Self::bucket_upper(v);
        match self.buckets.binary_search_by_key(&upper, |&(u, _)| u) {
            Ok(i) => self.buckets[i].1 += 1,
            Err(i) => self.buckets.insert(i, (upper, 1)),
        }
    }

    /// Folds another histogram into this one. Because both sides share
    /// the fixed bucket grid, the merge is exact: the result is
    /// indistinguishable from having recorded every sample into one
    /// histogram (up to the saturating `sum`).
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ua, ca)), Some(&&(ub, cb))) => match ua.cmp(&ub) {
                    std::cmp::Ordering::Less => {
                        merged.push((ua, ca));
                        a.next();
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((ub, cb));
                        b.next();
                    }
                    std::cmp::Ordering::Equal => {
                        merged.push((ua, ca + cb));
                        a.next();
                        b.next();
                    }
                },
                (Some(&&x), None) => {
                    merged.push(x);
                    a.next();
                }
                (None, Some(&&x)) => {
                    merged.push(x);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// `true` when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The occupied buckets as sorted `(upper_inclusive, count)` pairs.
    pub fn buckets(&self) -> &[(u64, u64)] {
        &self.buckets
    }

    /// The bucket upper bound at which the cumulative count reaches
    /// fraction `q` (clamped to `[0, 1]`) of the total, capped at the
    /// exact observed maximum.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for &(upper, c) in &self.buckets {
            cum += c;
            if cum >= target {
                return upper.min(self.max);
            }
        }
        self.max
    }

    /// Approximate 50th percentile (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Approximate 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// Approximate 95th percentile.
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// Approximate 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

struct State {
    start: Instant,
    epoch: u64,
    next_tid: u64,
    spans: Vec<SpanRecord>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    hists: BTreeMap<String, Histogram>,
    events: Vec<EventRecord>,
}

impl State {
    fn new() -> Self {
        State {
            start: Instant::now(),
            epoch: 0,
            next_tid: 0,
            spans: Vec::new(),
            counters: BTreeMap::new(),
            gauges: BTreeMap::new(),
            hists: BTreeMap::new(),
            events: Vec::new(),
        }
    }
}

fn state() -> &'static Mutex<State> {
    static STATE: OnceLock<Mutex<State>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(State::new()))
}

thread_local! {
    static TLS: RefCell<Tls> = const { RefCell::new(Tls { tid: None, depth: 0 }) };
}

struct Tls {
    /// Cached `(collector epoch, thread id)` — a reset bumps the epoch,
    /// invalidating every thread's cache so ids never collide.
    tid: Option<(u64, u64)>,
    depth: u32,
}

fn thread_id(st: &mut State) -> u64 {
    TLS.with(|tls| {
        let mut tls = tls.borrow_mut();
        match tls.tid {
            Some((epoch, t)) if epoch == st.epoch => t,
            _ => {
                let t = st.next_tid;
                st.next_tid += 1;
                tls.tid = Some((st.epoch, t));
                t
            }
        }
    })
}

/// Turns the collector on. Probes start recording immediately.
pub fn enable() {
    ENABLED.store(true, Ordering::Release);
}

/// Turns the collector off. Probes become single-atomic-load no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::Release);
}

/// Whether the collector is currently recording.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clears all collected data and restarts the clock. Thread-id
/// assignments restart too: the reset bumps the collector epoch, which
/// invalidates every thread's cached id on its next probe.
pub fn reset() {
    let mut st = state().lock().expect("obs state");
    let epoch = st.epoch + 1;
    *st = State::new();
    st.epoch = epoch;
}

/// An RAII guard for one span; records the span when dropped.
#[must_use = "a span measures the scope it is alive in"]
pub struct SpanGuard {
    info: Option<(Cow<'static, str>, Instant)>,
}

/// Opens a span named `name` on the current thread. When the collector is
/// disabled this is a no-op returning an inert guard.
pub fn span(name: impl Into<Cow<'static, str>>) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { info: None };
    }
    TLS.with(|tls| tls.borrow_mut().depth += 1);
    SpanGuard {
        info: Some((name.into(), Instant::now())),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((name, started)) = self.info.take() else {
            return;
        };
        let depth = TLS.with(|tls| {
            let mut tls = tls.borrow_mut();
            tls.depth = tls.depth.saturating_sub(1);
            tls.depth
        });
        if !is_enabled() {
            return; // disabled mid-span: drop the record
        }
        let dur_ns = started.elapsed().as_nanos() as u64;
        let mut st = state().lock().expect("obs state");
        let start_ns = started.saturating_duration_since(st.start).as_nanos() as u64;
        let tid = thread_id(&mut st);
        st.spans.push(SpanRecord {
            name,
            tid,
            start_ns,
            dur_ns,
            depth,
        });
    }
}

/// Adds `delta` to the counter `name`.
pub fn add(name: &str, delta: u64) {
    if !is_enabled() {
        return;
    }
    let mut st = state().lock().expect("obs state");
    match st.counters.get_mut(name) {
        Some(v) => *v += delta,
        None => {
            st.counters.insert(name.to_owned(), delta);
        }
    }
}

/// Sets the gauge `name` to `value` (last write wins).
pub fn gauge(name: &str, value: i64) {
    if !is_enabled() {
        return;
    }
    let mut st = state().lock().expect("obs state");
    match st.gauges.get_mut(name) {
        Some(v) => *v = value,
        None => {
            st.gauges.insert(name.to_owned(), value);
        }
    }
}

/// Records one sample into the histogram `name`.
pub fn observe(name: &str, value: u64) {
    if !is_enabled() {
        return;
    }
    let mut st = state().lock().expect("obs state");
    match st.hists.get_mut(name) {
        Some(h) => h.record(value),
        None => {
            let mut h = Histogram::new();
            h.record(value);
            st.hists.insert(name.to_owned(), h);
        }
    }
}

/// Records a structured instant event with string fields.
pub fn event(name: &str, fields: &[(&str, String)]) {
    if !is_enabled() {
        return;
    }
    let mut st = state().lock().expect("obs state");
    let ts_ns = st.start.elapsed().as_nanos() as u64;
    let tid = thread_id(&mut st);
    st.events.push(EventRecord {
        name: name.to_owned(),
        tid,
        ts_ns,
        fields: fields
            .iter()
            .map(|(k, v)| ((*k).to_owned(), v.clone()))
            .collect(),
    });
}

/// An immutable copy of everything collected so far.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Nanoseconds since the collector was reset.
    pub elapsed_ns: u64,
    /// Finished spans, sorted by `(tid, start_ns, depth)`.
    pub spans: Vec<SpanRecord>,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Full mergeable histograms by name (bucket bounds included).
    pub hists: BTreeMap<String, Histogram>,
    /// Instant events in recording order.
    pub events: Vec<EventRecord>,
    /// Trace id this snapshot belongs to, when it covers one traced
    /// request's window (set by [`Observer::with_trace_id`]).
    pub trace_id: Option<String>,
}

/// A position in the collector's stream, taken with [`mark`]: the point
/// from which [`snapshot_since`] reports deltas. Used by services running
/// several observed pipelines in one process to attribute a window of the
/// shared stream to one job.
#[derive(Debug, Clone)]
pub struct Mark {
    epoch: u64,
    spans: usize,
    events: usize,
    counters: BTreeMap<String, u64>,
}

/// Records the current stream position for a later [`snapshot_since`].
pub fn mark() -> Mark {
    let st = state().lock().expect("obs state");
    Mark {
        epoch: st.epoch,
        spans: st.spans.len(),
        events: st.events.len(),
        counters: st.counters.clone(),
    }
}

/// A snapshot of what was collected **after** `mark`: spans and events
/// recorded since, and counters as deltas (zero-delta counters are
/// omitted). Gauges and histograms are reported cumulatively — a gauge is
/// last-write-wins and bucket counts cannot be subtracted faithfully. If
/// the collector was [`reset`] after the mark was taken, the full current
/// snapshot is returned (the old positions are meaningless).
///
/// Note that in a concurrent process the window contains *everything*
/// recorded during it, including spans of other threads' work; records
/// stay attributable through their `tid`.
pub fn snapshot_since(mark: &Mark) -> Snapshot {
    let st = state().lock().expect("obs state");
    if st.epoch != mark.epoch {
        drop(st);
        return snapshot();
    }
    let mut spans: Vec<SpanRecord> = st.spans[mark.spans.min(st.spans.len())..].to_vec();
    spans.sort_by(|a, b| {
        (a.tid, a.start_ns, a.depth, &a.name).cmp(&(b.tid, b.start_ns, b.depth, &b.name))
    });
    let counters = st
        .counters
        .iter()
        .filter_map(|(k, v)| {
            let delta = v - mark.counters.get(k).copied().unwrap_or(0);
            (delta > 0).then(|| (k.clone(), delta))
        })
        .collect();
    Snapshot {
        elapsed_ns: st.start.elapsed().as_nanos() as u64,
        spans,
        counters,
        gauges: st.gauges.clone(),
        hists: st.hists.clone(),
        events: st.events[mark.events.min(st.events.len())..].to_vec(),
        trace_id: None,
    }
}

/// Takes a snapshot of the collector (works whether enabled or not).
pub fn snapshot() -> Snapshot {
    let st = state().lock().expect("obs state");
    let mut spans = st.spans.clone();
    spans.sort_by(|a, b| {
        (a.tid, a.start_ns, a.depth, &a.name).cmp(&(b.tid, b.start_ns, b.depth, &b.name))
    });
    Snapshot {
        elapsed_ns: st.start.elapsed().as_nanos() as u64,
        spans,
        counters: st.counters.clone(),
        gauges: st.gauges.clone(),
        hists: st.hists.clone(),
        events: st.events.clone(),
        trace_id: None,
    }
}

/// Sink destinations for one observed run, carried by
/// `clap_core::PipelineConfig::with_observer` and the CLI's
/// `--trace`/`--metrics`/`-v` flags.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Observer {
    /// Write a Chrome `trace_event` JSON file here.
    pub trace_path: Option<PathBuf>,
    /// Write the JSONL metric/span stream here.
    pub metrics_path: Option<PathBuf>,
    /// Print the human-readable summary to stderr.
    pub summary: bool,
    /// Trace id stamped into every snapshot this observer flushes, so
    /// sink files can be joined back to the request that produced them.
    pub trace_id: Option<String>,
}

impl Observer {
    /// An observer with no sinks (collector stays untouched).
    pub fn none() -> Self {
        Observer::default()
    }

    /// Adds a Chrome trace output file.
    #[must_use]
    pub fn with_trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace_path = Some(path.into());
        self
    }

    /// Adds a JSONL metrics output file.
    #[must_use]
    pub fn with_metrics(mut self, path: impl Into<PathBuf>) -> Self {
        self.metrics_path = Some(path.into());
        self
    }

    /// Enables the stderr summary.
    #[must_use]
    pub fn with_summary(mut self) -> Self {
        self.summary = true;
        self
    }

    /// Stamps a trace id into every snapshot this observer flushes: the
    /// JSONL sink gains a `trace` record and the Chrome trace gains
    /// process metadata, so one id links client, wire, and job files.
    #[must_use]
    pub fn with_trace_id(mut self, id: impl Into<String>) -> Self {
        self.trace_id = Some(id.into());
        self
    }

    /// `true` when any sink is configured.
    pub fn is_active(&self) -> bool {
        self.trace_path.is_some() || self.metrics_path.is_some() || self.summary
    }

    /// Derives a per-job observer: every file sink path gains a
    /// `.job<id>` component before its extension (`out.jsonl` →
    /// `out.job3.jsonl`), so concurrent pipelines in one process write
    /// disjoint files instead of clobbering a shared path.
    #[must_use]
    pub fn for_job(&self, job_id: u64) -> Self {
        let suffix = |path: &PathBuf| -> PathBuf {
            let mut p = path.clone();
            let stem = p
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let name = match p.extension() {
                Some(ext) => format!("{stem}.job{job_id}.{}", ext.to_string_lossy()),
                None => format!("{stem}.job{job_id}"),
            };
            p.set_file_name(name);
            p
        };
        Observer {
            trace_path: self.trace_path.as_ref().map(&suffix),
            metrics_path: self.metrics_path.as_ref().map(&suffix),
            summary: self.summary,
            trace_id: self.trace_id.clone(),
        }
    }

    /// Resets and enables the global collector — a no-op when no sink is
    /// configured, so default configs never pay for instrumentation.
    pub fn install(&self) {
        if self.is_active() {
            reset();
            enable();
        }
    }

    /// Writes every configured sink from a fresh snapshot.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the sink files.
    pub fn flush(&self) -> io::Result<()> {
        if !self.is_active() {
            return Ok(());
        }
        let mut snap = snapshot();
        snap.trace_id.clone_from(&self.trace_id);
        self.write_sinks(&snap)
    }

    /// Writes every configured sink from a [`snapshot_since`] delta — the
    /// per-job flush used by services: each job marks the stream when it
    /// starts and flushes only its own window on completion, without
    /// resetting the process-global collector other jobs are feeding.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the sink files.
    pub fn flush_since(&self, mark: &Mark) -> io::Result<()> {
        if !self.is_active() {
            return Ok(());
        }
        let mut snap = snapshot_since(mark);
        snap.trace_id.clone_from(&self.trace_id);
        self.write_sinks(&snap)
    }

    fn write_sinks(&self, snap: &Snapshot) -> io::Result<()> {
        if let Some(path) = &self.metrics_path {
            let mut buf = Vec::new();
            sink::write_jsonl(snap, &mut buf)?;
            std::fs::write(path, buf)?;
        }
        if let Some(path) = &self.trace_path {
            let mut buf = Vec::new();
            sink::write_chrome_trace(snap, &mut buf)?;
            std::fs::write(path, buf)?;
        }
        if self.summary {
            let mut err = io::stderr().lock();
            sink::write_summary(snap, &mut err)?;
        }
        Ok(())
    }
}

/// Serializes tests that use the process-global collector. Rust runs the
/// tests of one binary concurrently, so any test that calls
/// [`reset`]/[`enable`]/[`snapshot`] must hold this guard for its whole
/// body. Not part of the stable API.
#[doc(hidden)]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probes_record_nothing() {
        let _l = test_lock();
        reset();
        disable();
        add("c", 5);
        gauge("g", 1);
        observe("h", 2);
        event("e", &[("k", "v".to_owned())]);
        let _s = span("s");
        drop(_s);
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.hists.is_empty());
        assert!(snap.events.is_empty());
    }

    #[test]
    fn spans_nest_and_carry_depth() {
        let _l = test_lock();
        reset();
        enable();
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        disable();
        let snap = snapshot();
        assert_eq!(snap.spans.len(), 2);
        let outer = snap.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.depth, 0);
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.tid, inner.tid);
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn counters_accumulate_and_gauges_overwrite() {
        let _l = test_lock();
        reset();
        enable();
        add("x", 2);
        add("x", 3);
        gauge("y", 10);
        gauge("y", -4);
        disable();
        let snap = snapshot();
        assert_eq!(snap.counters["x"], 5);
        assert_eq!(snap.gauges["y"], -4);
    }

    #[test]
    fn histogram_summaries_are_sane() {
        let _l = test_lock();
        reset();
        enable();
        for v in [1u64, 2, 3, 4, 100] {
            observe("h", v);
        }
        disable();
        let snap = snapshot();
        let h = &snap.hists["h"];
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 110);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!(h.p50() >= 2 && h.p50() <= 7, "p50 = {}", h.p50());
        assert_eq!(h.p99(), 100);
    }

    #[test]
    fn threads_get_distinct_ids() {
        let _l = test_lock();
        reset();
        enable();
        let _main = span("main-span");
        std::thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    let _w = span("worker");
                });
            }
        });
        drop(_main);
        disable();
        let snap = snapshot();
        let mut tids: Vec<u64> = snap.spans.iter().map(|s| s.tid).collect();
        tids.sort_unstable();
        tids.dedup();
        assert_eq!(tids.len(), 3, "three distinct threads: {:?}", snap.spans);
    }

    #[test]
    fn snapshot_since_reports_only_the_window() {
        let _l = test_lock();
        reset();
        enable();
        add("before", 7);
        add("both", 2);
        {
            let _s = span("early");
        }
        let m = mark();
        add("both", 3);
        add("after", 1);
        {
            let _s = span("late");
        }
        event("window.event", &[]);
        disable();
        let delta = snapshot_since(&m);
        assert_eq!(delta.counters.get("both"), Some(&3));
        assert_eq!(delta.counters.get("after"), Some(&1));
        assert!(!delta.counters.contains_key("before"), "zero-delta omitted");
        assert_eq!(delta.spans.len(), 1);
        assert_eq!(delta.spans[0].name, "late");
        assert_eq!(delta.events.len(), 1);
        assert_eq!(delta.events[0].name, "window.event");
    }

    #[test]
    fn snapshot_since_survives_reset() {
        let _l = test_lock();
        reset();
        enable();
        let m = mark();
        reset();
        add("fresh", 1);
        disable();
        // Positions from a previous epoch are meaningless: fall back to
        // the full snapshot instead of slicing out of bounds.
        let delta = snapshot_since(&m);
        assert_eq!(delta.counters.get("fresh"), Some(&1));
    }

    #[test]
    fn for_job_suffixes_every_file_sink() {
        let obs = Observer::none()
            .with_trace("/tmp/out.trace.json")
            .with_metrics("/tmp/metrics.jsonl");
        let job = obs.for_job(7);
        assert_eq!(
            job.trace_path.as_deref(),
            Some(std::path::Path::new("/tmp/out.trace.job7.json"))
        );
        assert_eq!(
            job.metrics_path.as_deref(),
            Some(std::path::Path::new("/tmp/metrics.job7.jsonl"))
        );
        let bare = Observer::none().with_metrics("/tmp/metrics").for_job(2);
        assert_eq!(
            bare.metrics_path.as_deref(),
            Some(std::path::Path::new("/tmp/metrics.job2"))
        );
    }

    #[test]
    fn quantile_bounds() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1_000_000);
        assert_eq!(h.p50(), 10, "10 < 16 sits in an exact unit bucket");
        assert_eq!(h.p99(), 10, "99 of 100 samples are exactly 10");
        assert_eq!(h.max(), 1_000_000);
    }

    /// The log-bucket invariant every quantile estimate must satisfy:
    /// the true sample lies inside the reported bucket.
    fn assert_in_bucket(estimate: u64, truth: u64) {
        assert_eq!(
            Histogram::bucket_upper(truth),
            Histogram::bucket_upper(estimate),
            "estimate {estimate} not in the bucket of true value {truth}"
        );
        let rel = (estimate as f64 - truth as f64) / truth.max(1) as f64;
        assert!(
            rel.abs() <= 1.0 / SUB_BUCKETS as f64,
            "relative error {rel} above 1/{SUB_BUCKETS} (estimate {estimate}, truth {truth})"
        );
    }

    #[test]
    fn quantiles_of_known_distributions_land_in_the_right_bucket() {
        // Uniform 1..=10_000 recorded in a worst-case (descending) order.
        let mut h = Histogram::new();
        for v in (1..=10_000u64).rev() {
            h.record(v);
        }
        assert_eq!(h.count(), 10_000);
        assert_in_bucket(h.p50(), 5_000);
        assert_in_bucket(h.p90(), 9_000);
        assert_in_bucket(h.p95(), 9_500);
        assert_in_bucket(h.p99(), 9_900);
        assert_eq!(h.quantile(1.0), 10_000);
        assert_eq!(h.min(), 1);

        // Point mass with a far outlier: quantiles must not leak toward it.
        let mut h = Histogram::new();
        for _ in 0..999 {
            h.record(100);
        }
        h.record(u64::MAX);
        assert_in_bucket(h.p50(), 100);
        assert_in_bucket(h.p99(), 100);
        assert_eq!(h.max(), u64::MAX);

        // Exponentially spread decades.
        let mut h = Histogram::new();
        for decade in 0..6u32 {
            for _ in 0..100 {
                h.record(10u64.pow(decade));
            }
        }
        assert_in_bucket(h.p50(), 100); // 300th of 600 samples
        assert_in_bucket(h.p90(), 100_000);
    }

    #[test]
    fn merge_is_associative_and_matches_single_recording() {
        let samples: Vec<u64> = (0..3_000u64)
            .map(|i| (i * 2_654_435_761) % 1_000_000)
            .collect();
        let mut whole = Histogram::new();
        for &v in &samples {
            whole.record(v);
        }
        let thirds: Vec<Histogram> = samples
            .chunks(1_000)
            .map(|c| {
                let mut h = Histogram::new();
                for &v in c {
                    h.record(v);
                }
                h
            })
            .collect();
        // (a ⊕ b) ⊕ c
        let mut left = thirds[0].clone();
        left.merge(&thirds[1]);
        left.merge(&thirds[2]);
        // a ⊕ (b ⊕ c)
        let mut bc = thirds[1].clone();
        bc.merge(&thirds[2]);
        let mut right = thirds[0].clone();
        right.merge(&bc);
        assert_eq!(left, right, "merge must be associative");
        assert_eq!(left, whole, "merged shards must equal one-shot recording");
        let mut empty = Histogram::new();
        empty.merge(&whole);
        assert_eq!(empty, whole, "empty is a merge identity");
    }

    #[test]
    fn bucket_upper_is_monotone_and_idempotent() {
        let mut prev = 0;
        for v in (0..4096u64).chain([u64::MAX - 1, u64::MAX]) {
            let u = Histogram::bucket_upper(v);
            assert!(u >= v, "upper bound below value at {v}");
            assert!(u >= prev, "bucket bounds must be monotone at {v}");
            assert_eq!(Histogram::bucket_upper(u), u, "upper must be a fixpoint");
            prev = u;
        }
    }
}
