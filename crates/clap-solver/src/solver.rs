//! The sequential constraint solver: a DPLL(T)-style backtracking search
//! whose theory is the incremental order graph.
//!
//! The paper observes (§4) that the solver "only needs to find a solution
//! for the order variables that essentially maps each Read to a certain
//! Write in a discrete finite domain, subject to the order constraints".
//! That is literally the search space here:
//!
//! * **decisions** — each read picks a source (a write or the initial
//!   value), each completed wait picks the signal/broadcast that woke it,
//!   and each leftover binary order disjunction (lock-region order,
//!   no-intervening-write exclusion) picks a side;
//! * **propagation** — order edges go into the [`OrderGraph`] (conflict =
//!   cycle), values flow from chosen writes into symbolic variables, and
//!   path/bug/index-equality conditions are evaluated as soon as their
//!   variables are grounded;
//! * **conflict** — chronological backtracking over the decision trail.
//!
//! A satisfying assignment is linearized into a [`Schedule`] with a
//! same-thread-preferring topological sort (few preemptions) and re-checked
//! with the independent validator as a safety net.

use crate::ordergraph::OrderGraph;
use clap_constraints::{validate, ConstraintSystem, ReadSource, Schedule, Witness};
use clap_ir::Program;
use clap_symex::{ExprId, SapId, SymVarId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Search effort counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Decisions taken.
    pub decisions: u64,
    /// Conflicts hit.
    pub conflicts: u64,
    /// Propagation passes executed.
    pub propagations: u64,
}

/// A bug-reproducing solution.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The computed schedule.
    pub schedule: Schedule,
    /// Its witness (values + reads-from), from the independent validator.
    pub witness: Witness,
    /// Search effort.
    pub stats: SolveStats,
}

/// The result of a solve call.
#[derive(Debug, Clone)]
pub enum SolveOutcome {
    /// A schedule was found.
    Sat(Box<Solution>),
    /// No schedule satisfies the constraints.
    Unsat(SolveStats),
    /// The deadline or decision budget ran out first.
    Timeout(SolveStats),
}

impl SolveOutcome {
    /// The solution, if satisfiable.
    pub fn solution(&self) -> Option<&Solution> {
        match self {
            SolveOutcome::Sat(s) => Some(s),
            _ => None,
        }
    }
}

/// Solver limits.
///
/// The wall-clock budget is a [`Duration`], anchored when [`solve`] (or
/// [`solve_cancellable`]) is entered — not when the config is built — so
/// time spent in earlier pipeline phases never eats the solve budget.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolverConfig {
    /// Wall-clock budget for this solve call (`None` = unbounded).
    pub timeout: Option<Duration>,
    /// Decision budget (0 = unlimited).
    pub max_decisions: u64,
}

/// Solves the constraint system, producing a bug-reproducing schedule.
pub fn solve(
    program: &Program,
    system: &ConstraintSystem<'_>,
    config: SolverConfig,
) -> SolveOutcome {
    solve_cancellable(program, system, config, None)
}

/// [`solve`] with a cooperative cancellation hook: when `cancel` is set by
/// another thread (e.g. a portfolio race partner that already found a
/// schedule), the search stops at the next decision and returns
/// [`SolveOutcome::Timeout`] — cancellation is a budget event, never an
/// unsatisfiability claim.
pub fn solve_cancellable(
    program: &Program,
    system: &ConstraintSystem<'_>,
    config: SolverConfig,
    cancel: Option<&AtomicBool>,
) -> SolveOutcome {
    let mut search = Search::new(program, system, config);
    search.deadline = config.timeout.map(|t| Instant::now() + t);
    search.cancel = cancel;
    let mut outcome = search.run();
    // Soundness valve: the channel/mailbox encoding is incomplete — the
    // try_send/try_recv result variables are grounded only by the
    // validator, and FIFO/capacity legality is re-checked rather than
    // encoded exhaustively — so an exhausted search over a trace with
    // channel operations must not claim unsatisfiability. The same holds
    // for C11 atomics: store-to-load forwarding is pinned with hard edges
    // and the seq_cst total order is approximated by fences, so the
    // encoding may exclude real executions.
    if system.trace.has_channel_ops() || system.trace.has_atomic_ops() {
        if let SolveOutcome::Unsat(stats) = outcome {
            outcome = SolveOutcome::Timeout(stats);
        }
    }
    let stats = match &outcome {
        SolveOutcome::Sat(s) => s.stats,
        SolveOutcome::Unsat(s) | SolveOutcome::Timeout(s) => *s,
    };
    clap_obs::add("solver.hb_edges", system.hard_edges.len() as u64);
    clap_obs::add("solver.decisions", stats.decisions);
    clap_obs::add("solver.conflicts", stats.conflicts);
    clap_obs::add("solver.propagations", stats.propagations);
    clap_obs::add("solver.order_graph.queries", search.graph.query_count());
    clap_obs::add("solver.order_graph.visits", search.graph.visit_count());
    clap_obs::add("solver.order_graph.edges", search.graph.edge_count());
    outcome
}

#[derive(Debug, Clone)]
enum Pending {
    /// Two expressions that must be equal (link index guards).
    Eq(ExprId, ExprId),
    /// A boolean expression that must be truthy (path conditions, bug).
    Truthy(ExprId),
    /// Under an optional equality guard, at least one edge must hold.
    Choice {
        guard: Option<(ExprId, ExprId)>,
        edges: Vec<(u32, u32)>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DecisionVar {
    Read(usize),
    Wait(usize),
    ChanRecv(usize),
    Choice(usize),
}

struct Frame {
    var: DecisionVar,
    cand: usize,
    graph_mark: usize,
    assign_mark: usize,
    resolved_mark: usize,
    pending_len: usize,
    consumed_mark: usize,
}

struct Search<'p, 'a, 't> {
    program: &'p Program,
    sys: &'a ConstraintSystem<'t>,
    config: SolverConfig,
    /// Wall-clock deadline, anchored at solve entry from `config.timeout`.
    deadline: Option<Instant>,
    /// External cooperative stop flag (portfolio racing).
    cancel: Option<&'p AtomicBool>,
    graph: OrderGraph,
    assignment: Vec<Option<i64>>,
    assign_trail: Vec<SymVarId>,
    /// Chosen candidate per read (index into `sys.reads[i].candidates`).
    links: Vec<Option<usize>>,
    /// Chosen candidate per wait (index into signals ++ broadcasts).
    wait_choice: Vec<Option<usize>>,
    /// Chosen candidate per channel/mailbox recv (index into `sends`,
    /// or `sends.len()` for the drained-after-close outcome).
    recv_choice: Vec<Option<usize>>,
    consumed: HashMap<SapId, bool>,
    consumed_trail: Vec<SapId>,
    pending: Vec<Pending>,
    resolved: Vec<bool>,
    resolved_trail: Vec<usize>,
    frames: Vec<Frame>,
    stats: SolveStats,
}

enum StepResult {
    Ok,
    Conflict,
}

impl<'p, 'a, 't> Search<'p, 'a, 't> {
    fn new(program: &'p Program, sys: &'a ConstraintSystem<'t>, config: SolverConfig) -> Self {
        Search {
            program,
            sys,
            config,
            deadline: None,
            cancel: None,
            graph: OrderGraph::new(sys.trace.sap_count()),
            assignment: vec![None; sys.trace.sym_vars.len()],
            assign_trail: Vec::new(),
            links: vec![None; sys.reads.len()],
            wait_choice: vec![None; sys.waits.len()],
            recv_choice: vec![None; sys.recvs.len()],
            consumed: HashMap::new(),
            consumed_trail: Vec::new(),
            pending: Vec::new(),
            resolved: Vec::new(),
            resolved_trail: Vec::new(),
            frames: Vec::new(),
            stats: SolveStats::default(),
        }
    }

    fn eval(&self, e: ExprId) -> Option<i64> {
        let a = &self.assignment;
        self.sys.trace.arena.eval(e, &|v: SymVarId| a[v.index()])
    }

    fn push_pending(&mut self, p: Pending) {
        self.pending.push(p);
        self.resolved.push(false);
    }

    fn mark_resolved(&mut self, idx: usize) {
        if !self.resolved[idx] {
            self.resolved[idx] = true;
            self.resolved_trail.push(idx);
        }
    }

    fn assign(&mut self, var: SymVarId, value: i64) {
        debug_assert!(self.assignment[var.index()].is_none());
        self.assignment[var.index()] = Some(value);
        self.assign_trail.push(var);
    }

    /// Installs the level-0 constraints. Returns `Conflict` for
    /// immediately unsatisfiable systems.
    fn install_base(&mut self) -> StepResult {
        for &(a, b) in &self.sys.hard_edges {
            if !self.graph.add_edge(a.0, b.0) {
                return StepResult::Conflict;
            }
        }
        // Path conditions and the bug predicate.
        let conds: Vec<ExprId> = self
            .sys
            .trace
            .path_conds
            .iter()
            .map(|pc| pc.expr)
            .chain(std::iter::once(self.sys.trace.bug))
            .collect();
        for e in conds {
            self.push_pending(Pending::Truthy(e));
        }
        // Lock regions: pairwise mutual exclusion; open regions are last.
        for regions in self.sys.lock_regions.values() {
            let open: Vec<_> = regions.iter().filter(|r| r.unlock.is_none()).collect();
            if open.len() > 1 {
                return StepResult::Conflict;
            }
            for (i, a) in regions.iter().enumerate() {
                for b in regions.iter().skip(i + 1) {
                    match (a.unlock, b.unlock) {
                        (Some(ua), Some(ub)) => {
                            self.push_pending(Pending::Choice {
                                guard: None,
                                edges: vec![(ua.0, b.lock.0), (ub.0, a.lock.0)],
                            });
                        }
                        (None, Some(ub)) => {
                            if !self.graph.add_edge(ub.0, a.lock.0) {
                                return StepResult::Conflict;
                            }
                        }
                        (Some(ua), None) => {
                            if !self.graph.add_edge(ua.0, b.lock.0) {
                                return StepResult::Conflict;
                            }
                        }
                        (None, None) => unreachable!("checked above"),
                    }
                }
            }
        }
        StepResult::Ok
    }

    /// Runs propagation to a fixpoint.
    fn propagate(&mut self) -> StepResult {
        loop {
            self.stats.propagations += 1;
            let mut changed = false;
            // Value propagation: linked reads whose source value grounds.
            for i in 0..self.links.len() {
                let Some(j) = self.links[i] else { continue };
                let rc = &self.sys.reads[i];
                let var = rc.var;
                if self.assignment[var.index()].is_some() {
                    continue;
                }
                match rc.candidates[j] {
                    ReadSource::Init => {
                        let v = rc.init_value;
                        self.assign(var, v);
                        changed = true;
                    }
                    ReadSource::Write(w) => {
                        let value = match self.sys.trace.sap(w).kind {
                            clap_symex::SapKind::Write { value, .. }
                            | clap_symex::SapKind::AtomicStore { value, .. }
                            | clap_symex::SapKind::AtomicRmw { value, .. }
                            | clap_symex::SapKind::AtomicCas { value, .. } => value,
                            _ => unreachable!("candidate is a write"),
                        };
                        if let Some(v) = self.eval(value) {
                            self.assign(var, v);
                            changed = true;
                        }
                    }
                }
            }
            // Value propagation: matched recvs whose send value grounds.
            for i in 0..self.recv_choice.len() {
                let Some(j) = self.recv_choice[i] else {
                    continue;
                };
                let rc = &self.sys.recvs[i];
                if self.assignment[rc.var.index()].is_some() || j >= rc.sends.len() {
                    // Drained outcome: assigned -1 at decision time.
                    continue;
                }
                let value = match self.sys.trace.sap(rc.sends[j]).kind {
                    clap_symex::SapKind::Send { value, .. }
                    | clap_symex::SapKind::TrySend { value, .. }
                    | clap_symex::SapKind::MailboxSend { value, .. } => value,
                    _ => unreachable!("candidate is a send"),
                };
                let var = rc.var;
                if let Some(v) = self.eval(value) {
                    self.assign(var, v);
                    changed = true;
                }
            }
            // Pending constraints.
            for idx in 0..self.pending.len() {
                if self.resolved[idx] {
                    continue;
                }
                match self.pending[idx].clone() {
                    Pending::Eq(a, b) => match (self.eval(a), self.eval(b)) {
                        (Some(x), Some(y)) if x == y => {
                            self.mark_resolved(idx);
                            changed = true;
                        }
                        (Some(x), Some(y)) if x != y => return StepResult::Conflict,
                        _ => {}
                    },
                    Pending::Truthy(e) => match self.eval(e) {
                        Some(0) => return StepResult::Conflict,
                        Some(_) => {
                            self.mark_resolved(idx);
                            changed = true;
                        }
                        None => {}
                    },
                    Pending::Choice { guard, edges } => {
                        if let Some((a, b)) = guard {
                            match (self.eval(a), self.eval(b)) {
                                (Some(x), Some(y)) if x != y => {
                                    // Guard false: vacuously satisfied.
                                    self.mark_resolved(idx);
                                    changed = true;
                                    continue;
                                }
                                (Some(_), Some(_)) => {} // guard holds
                                _ => continue,           // unknown: defer
                            }
                        }
                        if edges.iter().any(|&(x, y)| self.graph.implies(x, y)) {
                            self.mark_resolved(idx);
                            changed = true;
                            continue;
                        }
                        let possible: Vec<(u32, u32)> = edges
                            .iter()
                            .copied()
                            .filter(|&(x, y)| !self.graph.forbids(x, y))
                            .collect();
                        match possible.len() {
                            0 => return StepResult::Conflict,
                            1 => {
                                let (x, y) = possible[0];
                                if !self.graph.add_edge(x, y) {
                                    return StepResult::Conflict;
                                }
                                self.mark_resolved(idx);
                                changed = true;
                            }
                            _ => {}
                        }
                    }
                }
            }
            if !changed {
                return StepResult::Ok;
            }
        }
    }

    /// Picks the next decision variable (fail-first) or `None` when all
    /// constraints are decided/resolved.
    fn pick_decision(&mut self) -> Option<(DecisionVar, usize)> {
        let mut best: Option<(DecisionVar, usize)> = None;
        for i in 0..self.links.len() {
            if self.links[i].is_some() {
                continue;
            }
            let count = self.feasible_read_cands(i).len();
            if best.map(|(_, c)| count < c).unwrap_or(true) {
                best = Some((DecisionVar::Read(i), count));
            }
        }
        for i in 0..self.wait_choice.len() {
            if self.wait_choice[i].is_some() {
                continue;
            }
            let count = self.feasible_wait_cands(i).len();
            if best.map(|(_, c)| count < c).unwrap_or(true) {
                best = Some((DecisionVar::Wait(i), count));
            }
        }
        for i in 0..self.recv_choice.len() {
            if self.recv_choice[i].is_some() {
                continue;
            }
            let count = self.feasible_recv_cands(i).len();
            if best.map(|(_, c)| count < c).unwrap_or(true) {
                best = Some((DecisionVar::ChanRecv(i), count));
            }
        }
        if best.is_none() {
            // All reads/waits decided: branch on an unresolved choice with
            // several live edges (guards are decidable by now).
            for idx in 0..self.pending.len() {
                if self.resolved[idx] {
                    continue;
                }
                if let Pending::Choice { guard, edges } = self.pending[idx].clone() {
                    if let Some((a, b)) = guard {
                        match (self.eval(a), self.eval(b)) {
                            (Some(x), Some(y)) if x != y => continue,
                            _ => {}
                        }
                    }
                    let live = edges
                        .iter()
                        .filter(|&&(x, y)| !self.graph.forbids(x, y))
                        .count();
                    if live >= 2 {
                        return Some((DecisionVar::Choice(idx), live));
                    }
                }
            }
        }
        best
    }

    fn feasible_read_cands(&mut self, i: usize) -> Vec<usize> {
        let rc = &self.sys.reads[i];
        let r = rc.read.0;
        let mut out = Vec::new();
        for (j, cand) in rc.candidates.iter().enumerate() {
            match cand {
                ReadSource::Init => out.push(j),
                ReadSource::Write(w) => {
                    if !self.graph.forbids(w.0, r) {
                        out.push(j);
                    }
                }
            }
        }
        out
    }

    fn feasible_wait_cands(&mut self, i: usize) -> Vec<usize> {
        let wc = &self.sys.waits[i];
        let rel = wc.release.0;
        let w = wc.wait.0;
        let mut out = Vec::new();
        let all: Vec<(SapId, bool)> = wc
            .signals
            .iter()
            .map(|&s| (s, true))
            .chain(wc.broadcasts.iter().map(|&b| (b, false)))
            .collect();
        for (j, (s, exclusive)) in all.iter().enumerate() {
            if *exclusive && self.consumed.get(s).copied().unwrap_or(false) {
                continue;
            }
            if self.graph.forbids(rel, s.0) || self.graph.forbids(s.0, w) {
                continue;
            }
            out.push(j);
        }
        out
    }

    fn feasible_recv_cands(&mut self, i: usize) -> Vec<usize> {
        let rc = self.sys.recvs[i].clone();
        let r = rc.recv.0;
        let mut out = Vec::new();
        for (j, s) in rc.sends.iter().enumerate() {
            if self.consumed.get(s).copied().unwrap_or(false) {
                continue;
            }
            if self.graph.forbids(s.0, r) {
                continue;
            }
            out.push(j);
        }
        if rc.closes.iter().any(|&c| !self.graph.forbids(c.0, r)) {
            out.push(rc.sends.len());
        }
        out
    }

    /// Applies a candidate for a decision variable.
    fn apply(&mut self, var: DecisionVar, cand: usize) -> StepResult {
        match var {
            DecisionVar::Read(i) => {
                let rc = self.sys.reads[i].clone();
                self.links[i] = Some(cand);
                match rc.candidates[cand] {
                    ReadSource::Init => {
                        // No aliasing write may precede the read.
                        for &w2 in &rc.aliasing_writes {
                            let guard = self.alias_guard(rc.addr, w2);
                            self.push_pending(Pending::Choice {
                                guard,
                                edges: vec![(rc.read.0, w2.0)],
                            });
                        }
                    }
                    ReadSource::Write(w) => {
                        if !self.graph.add_edge(w.0, rc.read.0) {
                            return StepResult::Conflict;
                        }
                        // The link itself requires the addresses to match.
                        if let Some(guard) = self.alias_guard(rc.addr, w) {
                            self.push_pending(Pending::Eq(guard.0, guard.1));
                        }
                        // No aliasing write between w and the read.
                        for &w2 in &rc.aliasing_writes {
                            if w2 == w {
                                continue;
                            }
                            let guard = self.alias_guard(rc.addr, w2);
                            self.push_pending(Pending::Choice {
                                guard,
                                edges: vec![(w2.0, w.0), (rc.read.0, w2.0)],
                            });
                        }
                    }
                }
                StepResult::Ok
            }
            DecisionVar::Wait(i) => {
                let wc = self.sys.waits[i].clone();
                self.wait_choice[i] = Some(cand);
                let all: Vec<(SapId, bool)> = wc
                    .signals
                    .iter()
                    .map(|&s| (s, true))
                    .chain(wc.broadcasts.iter().map(|&b| (b, false)))
                    .collect();
                let Some(&(s, exclusive)) = all.get(cand) else {
                    return StepResult::Conflict;
                };
                if exclusive {
                    if self.consumed.get(&s).copied().unwrap_or(false) {
                        return StepResult::Conflict;
                    }
                    self.consumed.insert(s, true);
                    self.consumed_trail.push(s);
                }
                if !self.graph.add_edge(wc.release.0, s.0) || !self.graph.add_edge(s.0, wc.wait.0) {
                    return StepResult::Conflict;
                }
                StepResult::Ok
            }
            DecisionVar::ChanRecv(i) => {
                let rc = self.sys.recvs[i].clone();
                self.recv_choice[i] = Some(cand);
                if cand < rc.sends.len() {
                    // Match a send: consumed exclusively, ordered before
                    // the recv. (FIFO order within the channel is the
                    // validator's job.)
                    let s = rc.sends[cand];
                    if self.consumed.get(&s).copied().unwrap_or(false) {
                        return StepResult::Conflict;
                    }
                    self.consumed.insert(s, true);
                    self.consumed_trail.push(s);
                    if !self.graph.add_edge(s.0, rc.recv.0) {
                        return StepResult::Conflict;
                    }
                } else {
                    // Drained outcome: some close precedes the recv and it
                    // returns -1.
                    let Some(&close) = rc
                        .closes
                        .iter()
                        .find(|&&c| !self.graph.forbids(c.0, rc.recv.0))
                    else {
                        return StepResult::Conflict;
                    };
                    if !self.graph.add_edge(close.0, rc.recv.0) {
                        return StepResult::Conflict;
                    }
                    if self.assignment[rc.var.index()].is_none() {
                        self.assign(rc.var, -1);
                    }
                }
                StepResult::Ok
            }
            DecisionVar::Choice(idx) => {
                let Pending::Choice { edges, .. } = self.pending[idx].clone() else {
                    unreachable!("choice decision on a non-choice")
                };
                let live: Vec<(u32, u32)> = edges
                    .iter()
                    .copied()
                    .filter(|&(x, y)| !self.graph.forbids(x, y))
                    .collect();
                let Some(&(x, y)) = live.get(cand) else {
                    return StepResult::Conflict;
                };
                if !self.graph.add_edge(x, y) {
                    return StepResult::Conflict;
                }
                self.mark_resolved(idx);
                StepResult::Ok
            }
        }
    }

    /// The index-equality guard for "this read aliases this write", or
    /// `None` when aliasing is definite.
    fn alias_guard(&self, raddr: clap_symex::SymAddr, w: SapId) -> Option<(ExprId, ExprId)> {
        let windex = match self.sys.trace.sap(w).kind {
            clap_symex::SapKind::Write { addr: waddr, .. } => waddr.index,
            // Atomic writes target scalar locations: aliasing is definite.
            clap_symex::SapKind::AtomicStore { .. }
            | clap_symex::SapKind::AtomicRmw { .. }
            | clap_symex::SapKind::AtomicCas { .. } => None,
            _ => unreachable!("aliasing entry is a write"),
        };
        match (raddr.index, windex) {
            (Some(a), Some(b)) => {
                let arena = &self.sys.trace.arena;
                match (arena.as_const(a), arena.as_const(b)) {
                    (Some(_), Some(_)) => None, // concrete: prefiltered equal
                    _ => Some((a, b)),
                }
            }
            _ => None,
        }
    }

    fn cand_count(&mut self, var: DecisionVar) -> usize {
        match var {
            DecisionVar::Read(i) => self.sys.reads[i].candidates.len(),
            DecisionVar::Wait(i) => {
                self.sys.waits[i].signals.len() + self.sys.waits[i].broadcasts.len()
            }
            DecisionVar::ChanRecv(i) => {
                let rc = &self.sys.recvs[i];
                rc.sends.len() + usize::from(!rc.closes.is_empty())
            }
            DecisionVar::Choice(idx) => match &self.pending[idx] {
                Pending::Choice { edges, .. } => edges.len(),
                _ => 0,
            },
        }
    }

    fn undo_frame(&mut self, frame: &Frame) {
        match frame.var {
            DecisionVar::Read(i) => self.links[i] = None,
            DecisionVar::Wait(i) => self.wait_choice[i] = None,
            DecisionVar::ChanRecv(i) => self.recv_choice[i] = None,
            DecisionVar::Choice(_) => {}
        }
        self.graph.undo_to(frame.graph_mark);
        while self.assign_trail.len() > frame.assign_mark {
            let v = self.assign_trail.pop().expect("assign trail");
            self.assignment[v.index()] = None;
        }
        while self.resolved_trail.len() > frame.resolved_mark {
            let idx = self.resolved_trail.pop().expect("resolved trail");
            if idx < frame.pending_len {
                self.resolved[idx] = false;
            }
        }
        self.pending.truncate(frame.pending_len);
        self.resolved.truncate(frame.pending_len);
        while self.consumed_trail.len() > frame.consumed_mark {
            let s = self.consumed_trail.pop().expect("consumed trail");
            self.consumed.insert(s, false);
        }
    }

    fn out_of_budget(&self) -> bool {
        if self.config.max_decisions > 0 && self.stats.decisions >= self.config.max_decisions {
            return true;
        }
        if let Some(cancel) = self.cancel {
            if cancel.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            // Checking time every decision is cheap relative to search.
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    fn run(&mut self) -> SolveOutcome {
        if matches!(self.install_base(), StepResult::Conflict) {
            return SolveOutcome::Unsat(self.stats);
        }
        if matches!(self.propagate(), StepResult::Conflict) {
            return SolveOutcome::Unsat(self.stats);
        }
        loop {
            if self.out_of_budget() {
                return SolveOutcome::Timeout(self.stats);
            }
            let Some((var, _)) = self.pick_decision() else {
                // Everything decided and propagated: extract the schedule.
                match self.extract() {
                    Some(solution) => return SolveOutcome::Sat(Box::new(solution)),
                    None => {
                        // Extraction failed (validator disagreement):
                        // treat as a conflict to stay sound.
                        if !self.backtrack() {
                            return SolveOutcome::Unsat(self.stats);
                        }
                        continue;
                    }
                }
            };
            // Open a decision frame at candidate 0.
            self.stats.decisions += 1;
            let frame = Frame {
                var,
                cand: 0,
                graph_mark: self.graph.mark(),
                assign_mark: self.assign_trail.len(),
                resolved_mark: self.resolved_trail.len(),
                pending_len: self.pending.len(),
                consumed_mark: self.consumed_trail.len(),
            };
            self.frames.push(frame);
            if !self.try_current() {
                return SolveOutcome::Unsat(self.stats);
            }
        }
    }

    /// Tries candidates of the top frame (starting at its `cand`),
    /// backtracking deeper frames as needed. Returns `false` on overall
    /// UNSAT.
    fn try_current(&mut self) -> bool {
        loop {
            let Some(top) = self.frames.last() else {
                return false;
            };
            let var = top.var;
            let cand = top.cand;
            if cand >= self.cand_count(var) {
                if !self.backtrack() {
                    return false;
                }
                continue;
            }
            let applied = matches!(self.apply(var, cand), StepResult::Ok);
            if applied && matches!(self.propagate(), StepResult::Ok) {
                return true;
            }
            self.stats.conflicts += 1;
            // Retry the same frame with the next candidate.
            let frame_snapshot = {
                let top = self.frames.last().expect("frame");
                Frame {
                    var: top.var,
                    cand: top.cand,
                    graph_mark: top.graph_mark,
                    assign_mark: top.assign_mark,
                    resolved_mark: top.resolved_mark,
                    pending_len: top.pending_len,
                    consumed_mark: top.consumed_mark,
                }
            };
            self.undo_frame(&frame_snapshot);
            self.frames.last_mut().expect("frame").cand += 1;
        }
    }

    /// Pops the top frame and advances its parent to the next candidate.
    /// Returns `false` when the root is exhausted (UNSAT).
    fn backtrack(&mut self) -> bool {
        let Some(frame) = self.frames.pop() else {
            return false;
        };
        // The frame's effects were already undone when its last candidate
        // conflicted; nothing further to rewind here. The *parent* frame
        // must now move on.
        let _ = frame;
        match self.frames.last_mut() {
            Some(parent) => {
                let snapshot = Frame {
                    var: parent.var,
                    cand: parent.cand,
                    graph_mark: parent.graph_mark,
                    assign_mark: parent.assign_mark,
                    resolved_mark: parent.resolved_mark,
                    pending_len: parent.pending_len,
                    consumed_mark: parent.consumed_mark,
                };
                self.undo_frame(&snapshot);
                self.frames.last_mut().expect("parent").cand += 1;
                // Delegate to try_current from the caller loop.
                self.stats.conflicts += 1;
                self.try_current()
            }
            None => false,
        }
    }

    /// Linearizes the order graph and validates the schedule.
    fn extract(&mut self) -> Option<Solution> {
        let trace = self.sys.trace;
        let order = self
            .graph
            .linearize(|x, last| {
                last.is_some_and(|l| trace.sap(SapId(x)).thread == trace.sap(SapId(l)).thread)
            })
            .expect("order graph is acyclic by construction");
        let schedule = Schedule::new(order.into_iter().map(SapId).collect(), trace);
        match validate(self.program, self.sys, &schedule) {
            Ok(witness) => Some(Solution {
                schedule,
                witness,
                stats: self.stats,
            }),
            Err(_) => None,
        }
    }
}
