//! The sequential CLAP constraint solver: maps each shared read to a
//! write (or the initial value), each wait to its signal, and orders the
//! shared access points, producing a deterministic bug-reproducing
//! [`clap_constraints::Schedule`].
//!
//! The solver is a from-scratch replacement for the paper's use of STP: a
//! backtracking DPLL(T)-style search whose theory solver is an incremental
//! order graph (cycle detection = conflict) and whose value reasoning is
//! plain evaluation of the symbolic expressions as reads get grounded.
//! See [`solver`] for the search and [`ordergraph`] for the theory.

pub mod ordergraph;
pub mod solver;

pub use ordergraph::OrderGraph;
pub use solver::{solve, solve_cancellable, Solution, SolveOutcome, SolveStats, SolverConfig};

#[cfg(test)]
mod tests {
    use super::*;
    use clap_analysis::analyze;
    use clap_constraints::{validate, ConstraintSystem};
    use clap_ir::parse;
    use clap_profile::{decode_log, BlTables, PathRecorder};
    use clap_symex::{execute, FailureContext, SymTrace};
    use clap_vm::{MemModel, Outcome, RandomScheduler, Vm};

    fn build_failure(src: &str, model: MemModel, max_seed: u64) -> (clap_ir::Program, SymTrace) {
        let program = parse(src).unwrap();
        let sharing = analyze(&program);
        let tables = BlTables::build(&program);
        let mut vm = Vm::with_shared(&program, model, sharing.shared_spec());
        for seed in 0..max_seed {
            vm.reset();
            let mut rec = PathRecorder::new(&tables);
            let outcome = vm.run(&mut RandomScheduler::new(seed), &mut rec);
            if let Outcome::AssertFailed { .. } = outcome {
                let failure = FailureContext::from_vm(&vm);
                let paths = decode_log(&program, &tables, &rec.finish()).unwrap();
                let trace = execute(&program, &sharing.shared_spec(), &paths, &failure).unwrap();
                return (program, trace);
            }
        }
        panic!("no failing seed in 0..{max_seed}");
    }

    fn solve_failure(src: &str, model: MemModel, max_seed: u64) {
        let (program, trace) = build_failure(src, model, max_seed);
        let sys = ConstraintSystem::build(&program, &trace, model);
        let outcome = solve(&program, &sys, SolverConfig::default());
        let solution = outcome
            .solution()
            .unwrap_or_else(|| panic!("solver must find a schedule: {outcome:?}"));
        // The independent validator must accept it (solve() already did
        // this; re-check to guard the public contract).
        validate(&program, &sys, &solution.schedule).expect("schedule validates");
    }

    #[test]
    fn solves_lost_update() {
        solve_failure(
            "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }",
            MemModel::Sc,
            500,
        );
    }

    #[test]
    fn solves_locked_race() {
        // The lock bounds where the lost update can happen; the solver
        // must respect the critical sections.
        solve_failure(
            "global int x = 0; mutex m;
             fn w() { lock(m); let v: int = x; unlock(m); yield; lock(m); x = v + 1; unlock(m); }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }",
            MemModel::Sc,
            2000,
        );
    }

    #[test]
    fn solves_order_violation_with_condvars() {
        solve_failure(
            "global int ready = 0; global int got = 0; mutex m; cond c;
             fn consumer() {
                 lock(m);
                 while (ready == 0) { wait(c, m); }
                 got = got + 1;
                 unlock(m);
             }
             fn main() {
                 let t: thread = fork consumer();
                 lock(m); ready = 1; signal(c); unlock(m);
                 join t;
                 let g: int = got;
                 assert(g == 0, \"consumer ran\");
             }",
            MemModel::Sc,
            500,
        );
    }

    #[test]
    fn solves_tso_store_buffering() {
        solve_failure(
            "global int x = 0; global int y = 0;
             global int r1 = -1; global int r2 = -1;
             fn t1() { x = 1; r1 = y; }
             fn t2() { y = 1; r2 = x; }
             fn main() {
                 let a: thread = fork t1(); let b: thread = fork t2();
                 join a; join b;
                 assert(r1 + r2 > 0, \"SB\");
             }",
            MemModel::Tso,
            500,
        );
    }

    #[test]
    fn solves_pso_message_passing() {
        solve_failure(
            "global int data = 0; global int flag = 0; global int seen = -1;
             fn writer() { data = 1; flag = 1; }
             fn reader() { let f: int = flag; if (f == 1) { seen = data; } }
             fn main() {
                 let w: thread = fork writer(); let r: thread = fork reader();
                 join w; join r;
                 assert(seen != 0, \"MP\");
             }",
            MemModel::Pso,
            6000,
        );
    }

    #[test]
    fn unsat_when_bug_cannot_happen() {
        // Take a genuine failing trace, then replace its bug predicate
        // with an unsatisfiable one: the solver must prove UNSAT rather
        // than hand back some schedule.
        let (program, mut trace) = build_failure(
            "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }",
            MemModel::Sc,
            500,
        );
        trace.bug = trace.arena.constant(0);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let outcome = solve(&program, &sys, SolverConfig::default());
        assert!(matches!(outcome, SolveOutcome::Unsat(_)), "got {outcome:?}");
    }

    const CHAN_LOST_CLOSE: &str = "global int sum = 0;
         chan ch(1);
         fn producer() { send(ch, 5); send(ch, 7); }
         fn consumer() {
             let a: int = recv(ch);
             let b: int = recv(ch);
             sum = a + b;
         }
         fn main() {
             let p: thread = fork producer();
             let c: thread = fork consumer();
             close(ch);
             join p; join c;
             assert(sum == 12, \"lost send\");
         }";

    #[test]
    fn solves_channel_lost_close() {
        solve_failure(CHAN_LOST_CLOSE, MemModel::Sc, 2000);
    }

    #[test]
    fn channel_traces_never_certify_unsat() {
        // The channel constraint encoding is incomplete (see
        // clap-constraints), so an Unsat result on a trace with channel
        // ops is a budget statement, not a proof: the valve must report
        // Timeout instead of certifying Unsat.
        let (program, mut trace) = build_failure(CHAN_LOST_CLOSE, MemModel::Sc, 2000);
        trace.bug = trace.arena.constant(0);
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let outcome = solve(&program, &sys, SolverConfig::default());
        assert!(
            matches!(outcome, SolveOutcome::Timeout(_)),
            "valve must downgrade Unsat on channel traces, got {outcome:?}"
        );
    }

    #[test]
    fn solver_reports_small_context_switch_schedules() {
        let (program, trace) = build_failure(
            "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }",
            MemModel::Sc,
            500,
        );
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let outcome = solve(&program, &sys, SolverConfig::default());
        let solution = outcome.solution().expect("sat");
        let cs = solution.schedule.context_switches(&trace);
        assert!(
            cs <= 3,
            "same-thread-preferring linearization keeps cs small, got {cs}"
        );
    }

    #[test]
    fn decision_budget_times_out() {
        let (program, trace) = build_failure(
            "global int x = 0;
             fn w() { let i: int = 0; while (i < 6) { let v: int = x; yield; x = v + 1; i = i + 1; } }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 12, \"lost\"); }",
            MemModel::Sc,
            5000,
        );
        let sys = ConstraintSystem::build(&program, &trace, MemModel::Sc);
        let outcome = solve(
            &program,
            &sys,
            SolverConfig {
                timeout: None,
                max_decisions: 1,
            },
        );
        assert!(matches!(outcome, SolveOutcome::Timeout(_)));
    }

    #[test]
    fn signal_exclusivity_respected() {
        // Two consumers each complete a wait; two signals exist. The
        // solver must give each wait its own signal — and the resulting
        // schedule must validate (the validator re-checks the matching).
        solve_failure(
            "global int ready = 0; global int done = 0; mutex m; cond c;
             fn consumer() {
                 lock(m);
                 while (ready == 0) { wait(c, m); }
                 ready = ready - 1;
                 done = done + 1;
                 unlock(m);
             }
             fn main() {
                 let c1: thread = fork consumer();
                 let c2: thread = fork consumer();
                 lock(m); ready = 1; signal(c); unlock(m);
                 lock(m); ready = ready + 1; signal(c); unlock(m);
                 join c1; join c2;
                 let d: int = done;
                 assert(d == 1, \"both consumers ran\");
             }",
            MemModel::Sc,
            6000,
        );
    }

    #[test]
    fn broadcast_wakes_multiple_waits_in_solution() {
        // Both waiters park, one broadcast wakes both (non-exclusive
        // matching), then the unprotected increments race: the lost
        // update (`woke == 1`) is the recorded bug.
        solve_failure(
            "global int gate = 0; global int woke = 0; mutex m; cond c;
             fn waiter() {
                 lock(m);
                 while (gate == 0) { wait(c, m); }
                 unlock(m);
                 let w: int = woke;
                 yield;
                 woke = w + 1;
             }
             fn main() {
                 let a: thread = fork waiter();
                 let b: thread = fork waiter();
                 lock(m); gate = 1; broadcast(c); unlock(m);
                 join a; join b;
                 let w: int = woke;
                 assert(w == 2, \"an increment was lost\");
             }",
            MemModel::Sc,
            8000,
        );
    }

    #[test]
    fn solves_array_race_with_symbolic_indices() {
        solve_failure(
            "global int a[4]; global int k = 0;
             fn w(i: int) { let idx: int = k; a[(idx + 1) & 3] = i; }
             fn main() { k = 1;
                         let t1: thread = fork w(1); let t2: thread = fork w(2);
                         join t1; join t2;
                         let v: int = a[2];
                         assert(v == 1, \"who wrote slot 2\"); }",
            MemModel::Sc,
            4000,
        );
    }
}
