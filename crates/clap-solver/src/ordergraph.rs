//! An incremental directed graph over order variables with cycle
//! rejection and trail-based undo — the solver's order theory.
//!
//! `add_edge(a, b)` asserts `O_a < O_b`; it fails (and leaves the graph
//! unchanged) when the opposite is already implied, i.e. when `b` reaches
//! `a`. Reachability is answered by a stamped DFS, and every accepted edge
//! is recorded on a trail so the backtracking search can rewind to any
//! earlier mark in O(#edges undone).

/// The incremental order graph.
#[derive(Debug, Clone)]
pub struct OrderGraph {
    succ: Vec<Vec<u32>>,
    trail: Vec<u32>,
    stamp: u64,
    visited: Vec<u64>,
    queries: u64,
    nodes_visited: u64,
    edges_added: u64,
}

impl OrderGraph {
    /// Creates a graph over `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        OrderGraph {
            succ: vec![Vec::new(); n],
            trail: Vec::new(),
            stamp: 0,
            visited: vec![0; n],
            queries: 0,
            nodes_visited: 0,
            edges_added: 0,
        }
    }

    /// Reachability queries answered over the graph's lifetime.
    pub fn query_count(&self) -> u64 {
        self.queries
    }

    /// Nodes expanded across all DFS queries (the propagation work).
    pub fn visit_count(&self) -> u64 {
        self.nodes_visited
    }

    /// Edges accepted over the graph's lifetime (including later-undone
    /// ones).
    pub fn edge_count(&self) -> u64 {
        self.edges_added
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succ.len()
    }

    /// `true` when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succ.is_empty()
    }

    /// `true` when a directed path `a ⇒ b` exists (including `a == b`).
    pub fn reaches(&mut self, a: u32, b: u32) -> bool {
        if a == b {
            return true;
        }
        self.queries += 1;
        self.stamp += 1;
        let stamp = self.stamp;
        let mut stack = vec![a];
        self.visited[a as usize] = stamp;
        while let Some(x) = stack.pop() {
            self.nodes_visited += 1;
            for &y in &self.succ[x as usize] {
                if y == b {
                    return true;
                }
                if self.visited[y as usize] != stamp {
                    self.visited[y as usize] = stamp;
                    stack.push(y);
                }
            }
        }
        false
    }

    /// `true` when `O_a < O_b` is already implied.
    pub fn implies(&mut self, a: u32, b: u32) -> bool {
        a != b && self.reaches(a, b)
    }

    /// `true` when asserting `O_a < O_b` would create a cycle (i.e. the
    /// graph implies `O_b <= O_a`).
    pub fn forbids(&mut self, a: u32, b: u32) -> bool {
        self.reaches(b, a)
    }

    /// Asserts `O_a < O_b`. Returns `false` (graph unchanged) when this
    /// would create a cycle.
    pub fn add_edge(&mut self, a: u32, b: u32) -> bool {
        if self.reaches(b, a) {
            return false;
        }
        // Duplicate edges are skipped to keep DFS fast on undo-heavy
        // searches; linear scan is fine at the degrees we see.
        if self.succ[a as usize].contains(&b) {
            return true;
        }
        self.succ[a as usize].push(b);
        self.trail.push(a);
        self.edges_added += 1;
        true
    }

    /// A rewind point for [`OrderGraph::undo_to`].
    pub fn mark(&self) -> usize {
        self.trail.len()
    }

    /// Removes every edge added after `mark`.
    pub fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let a = self.trail.pop().expect("trail entry");
            self.succ[a as usize].pop();
        }
    }

    /// A topological order of all nodes that prefers to keep emitting
    /// nodes accepted by `prefer` (used to linearize schedules with few
    /// preemptions: `prefer` says "same thread as the last emitted SAP").
    ///
    /// Returns `None` if the graph has a cycle (cannot happen when all
    /// edges went through [`OrderGraph::add_edge`]).
    pub fn linearize(&self, mut prefer: impl FnMut(u32, Option<u32>) -> bool) -> Option<Vec<u32>> {
        let n = self.succ.len();
        let mut indeg = vec![0usize; n];
        for succs in &self.succ {
            for &y in succs {
                indeg[y as usize] += 1;
            }
        }
        let mut ready: Vec<u32> = (0..n as u32).filter(|&x| indeg[x as usize] == 0).collect();
        let mut out = Vec::with_capacity(n);
        let mut last: Option<u32> = None;
        while !ready.is_empty() {
            // Prefer a ready node the caller likes (e.g. same thread).
            let pick = ready.iter().position(|&x| prefer(x, last)).unwrap_or(0);
            let x = ready.swap_remove(pick);
            out.push(x);
            last = Some(x);
            for &y in &self.succ[x as usize] {
                indeg[y as usize] -= 1;
                if indeg[y as usize] == 0 {
                    ready.push(y);
                }
            }
        }
        (out.len() == n).then_some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_cycles() {
        let mut g = OrderGraph::new(3);
        assert!(g.add_edge(0, 1));
        assert!(g.add_edge(1, 2));
        assert!(!g.add_edge(2, 0), "closing the cycle is rejected");
        assert!(g.implies(0, 2));
        assert!(g.forbids(2, 0));
        assert!(!g.forbids(0, 2));
    }

    #[test]
    fn undo_restores_state() {
        let mut g = OrderGraph::new(4);
        g.add_edge(0, 1);
        let mark = g.mark();
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert!(g.implies(0, 3));
        g.undo_to(mark);
        assert!(!g.implies(0, 3));
        assert!(g.implies(0, 1));
        // The previously-cyclic edge is now acceptable.
        assert!(g.add_edge(3, 0));
    }

    #[test]
    fn duplicate_edges_are_noops() {
        let mut g = OrderGraph::new(2);
        assert!(g.add_edge(0, 1));
        let mark = g.mark();
        assert!(g.add_edge(0, 1));
        assert_eq!(g.mark(), mark, "duplicate adds nothing to the trail");
    }

    #[test]
    fn linearize_respects_edges_and_preference() {
        let mut g = OrderGraph::new(6);
        // Two "threads": 0→1→2 and 3→4→5.
        for (a, b) in [(0, 1), (1, 2), (3, 4), (4, 5)] {
            g.add_edge(a, b);
        }
        // Prefer continuing the same "thread" (nodes 0-2 vs 3-5).
        let order = g
            .linearize(|x, last| last.is_some_and(|l| (l < 3) == (x < 3)))
            .unwrap();
        assert_eq!(order.len(), 6);
        let pos = |x: u32| order.iter().position(|&y| y == x).unwrap();
        for (a, b) in [(0, 1), (1, 2), (3, 4), (4, 5)] {
            assert!(pos(a) < pos(b));
        }
        // With the preference, the two chains come out contiguously.
        let firsts: Vec<bool> = order.iter().map(|&x| x < 3).collect();
        let switches = firsts.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(switches, 1);
    }

    proptest::proptest! {
        #[test]
        fn random_edge_sets_stay_acyclic(edges in proptest::collection::vec((0u32..12, 0u32..12), 0..60)) {
            let mut g = OrderGraph::new(12);
            for (a, b) in edges {
                if a != b {
                    g.add_edge(a, b);
                }
            }
            // If all insertions kept the invariant, a full topological
            // order must exist.
            let order = g.linearize(|_, _| false).expect("acyclic");
            let mut pos = [0; 12];
            for (i, &x) in order.iter().enumerate() {
                pos[x as usize] = i;
            }
            for (a, succs) in g.succ.iter().enumerate() {
                for &b in succs {
                    proptest::prop_assert!(pos[a] < pos[b as usize]);
                }
            }
        }
    }
}
