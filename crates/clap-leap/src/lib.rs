//! The LEAP baseline (Huang, Liu, Zhang — FSE 2010), reimplemented as a
//! VM monitor: the state-of-the-art record/replay technique the paper
//! compares against in Table 2.
//!
//! LEAP records, **per shared variable**, the global order of accesses to
//! it (an *access vector* of thread ids). Doing so requires synchronizing
//! the recorder itself: every shared access acquires a per-variable lock
//! before appending to that variable's vector. This is exactly the cost
//! CLAP avoids — and the reason LEAP's overhead explodes on benchmarks
//! with dense shared accesses (racey: 4289% in the paper) while CLAP's
//! stays proportional to control-flow density only.
//!
//! The recorder here takes a real [`parking_lot::Mutex`] per variable so
//! the measured overhead includes genuine atomic operations, and the log
//! is the varint-encoded access vectors, giving the Table 2 space column.
//!
//! [`LeapReplayer`] enforces a recorded log by gating each thread's next
//! shared access on the per-variable vectors — LEAP's replay semantics
//! (sound for SC executions, which is what LEAP supports).

use clap_vm::{AccessEvent, Action, Monitor, Scheduler, StepPreview, SyncEvent, ThreadId, Vm};
use parking_lot::Mutex;
use std::collections::HashMap;

/// One recorded access-order entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// The accessing thread.
    pub thread: ThreadId,
    /// `true` for writes.
    pub is_write: bool,
}

/// The per-variable access vectors plus sync-object orders.
#[derive(Debug, Default)]
pub struct LeapLog {
    /// Access vectors keyed by flattened address.
    pub accesses: HashMap<u32, Vec<AccessRecord>>,
    /// Acquisition orders per mutex (lock/wait-reacquire events).
    pub mutex_orders: HashMap<u32, Vec<ThreadId>>,
}

impl LeapLog {
    /// Encoded size in bytes: one varint thread id plus a read/write bit
    /// per access record, plus per-vector headers — the "Space" column.
    pub fn size_bytes(&self) -> usize {
        let mut bytes = 0usize;
        let varint_len = |mut v: u64| {
            let mut n = 1;
            while v >= 0x80 {
                v >>= 7;
                n += 1;
            }
            n
        };
        for (addr, vec) in &self.accesses {
            bytes += varint_len(*addr as u64) + varint_len(vec.len() as u64);
            for r in vec {
                bytes += varint_len(((r.thread.0 as u64) << 1) | r.is_write as u64);
            }
        }
        for (m, vec) in &self.mutex_orders {
            bytes += varint_len(*m as u64) + varint_len(vec.len() as u64);
            bytes += vec.iter().map(|t| varint_len(t.0 as u64)).sum::<usize>();
        }
        bytes
    }

    /// Total number of recorded access events.
    pub fn event_count(&self) -> usize {
        self.accesses.values().map(Vec::len).sum::<usize>()
            + self.mutex_orders.values().map(Vec::len).sum::<usize>()
    }
}

/// The LEAP recorder monitor.
///
/// Each shared variable gets its own lock-protected access vector; each
/// access pays one lock acquisition plus an append — the synchronization
/// the paper's Table 2 measures.
pub struct LeapRecorder {
    /// One locked vector per flattened address, created on demand.
    vectors: HashMap<u32, Mutex<Vec<AccessRecord>>>,
    mutex_vectors: HashMap<u32, Mutex<Vec<ThreadId>>>,
}

impl Default for LeapRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LeapRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        LeapRecorder {
            vectors: HashMap::new(),
            mutex_vectors: HashMap::new(),
        }
    }

    /// Finalizes into the log artifact.
    pub fn finish(self) -> LeapLog {
        LeapLog {
            accesses: self
                .vectors
                .into_iter()
                .map(|(a, v)| (a, v.into_inner()))
                .collect(),
            mutex_orders: self
                .mutex_vectors
                .into_iter()
                .map(|(m, v)| (m, v.into_inner()))
                .collect(),
        }
    }
}

impl std::fmt::Debug for LeapRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LeapRecorder({} variables)", self.vectors.len())
    }
}

impl Monitor for LeapRecorder {
    fn on_access(&mut self, thread: ThreadId, event: &AccessEvent) {
        // The entry may need creating first (outside the hot path in real
        // LEAP, which preallocates per static variable).
        let cell = self
            .vectors
            .entry(event.addr.0)
            .or_insert_with(|| Mutex::new(Vec::new()));
        // The measured cost: a real lock acquisition per shared access.
        cell.lock().push(AccessRecord {
            thread,
            is_write: event.is_write,
        });
    }

    fn on_sync(&mut self, thread: ThreadId, event: &SyncEvent) {
        let m = match event {
            SyncEvent::Lock(m) | SyncEvent::Wait(_, m) => m.0,
            _ => return,
        };
        let cell = self
            .mutex_vectors
            .entry(m)
            .or_insert_with(|| Mutex::new(Vec::new()));
        cell.lock().push(thread);
    }
}

/// Replays a [`LeapLog`]: each thread's next shared access (or lock
/// acquisition) is released only when it heads the per-object vector.
#[derive(Debug)]
pub struct LeapReplayer {
    log: LeapLog,
    /// Consumption cursor per address.
    access_pos: HashMap<u32, usize>,
    mutex_pos: HashMap<u32, usize>,
    stuck: bool,
}

impl LeapReplayer {
    /// Creates a replayer from a recorded log.
    pub fn new(log: LeapLog) -> Self {
        LeapReplayer {
            access_pos: log.accesses.keys().map(|&a| (a, 0)).collect(),
            mutex_pos: log.mutex_orders.keys().map(|&m| (m, 0)).collect(),
            log,
            stuck: false,
        }
    }

    /// `true` when the replayer could not follow the log.
    pub fn is_stuck(&self) -> bool {
        self.stuck
    }

    fn access_allowed(&self, addr: u32, t: ThreadId, is_write: bool) -> bool {
        match self.log.accesses.get(&addr) {
            None => true, // unrecorded variable: unconstrained
            Some(vec) => {
                let pos = self.access_pos[&addr];
                vec.get(pos)
                    .is_some_and(|r| r.thread == t && r.is_write == is_write)
            }
        }
    }

    fn mutex_allowed(&self, m: u32, t: ThreadId) -> bool {
        match self.log.mutex_orders.get(&m) {
            None => true,
            Some(vec) => {
                let pos = self.mutex_pos[&m];
                vec.get(pos).is_some_and(|&x| x == t)
            }
        }
    }
}

impl Scheduler for LeapReplayer {
    fn pick(&mut self, vm: &Vm<'_>, actions: &[Action]) -> usize {
        use clap_vm::SapPreviewKind as K;
        let mut fallback = None;
        for (i, action) in actions.iter().enumerate() {
            let Action::Step(t) = *action else {
                // LEAP replays SC executions: no drains exist.
                continue;
            };
            match vm.preview_step(t) {
                StepPreview::Invisible
                | StepPreview::AssertStep
                | StepPreview::ThreadExit
                | StepPreview::BufferedStore { .. } => {
                    fallback.get_or_insert(i);
                }
                StepPreview::Sap { kind, .. } => {
                    let allowed = match kind {
                        K::Read(addr) | K::AtomicLoad(addr, _) => {
                            self.access_allowed(addr.0, t, false)
                        }
                        K::Write(addr)
                        | K::AtomicStore(addr, _)
                        | K::AtomicRmw(addr, _)
                        | K::AtomicCas(addr, _) => self.access_allowed(addr.0, t, true),
                        K::Lock(m) => self.mutex_allowed(m.0, t),
                        K::WaitAcquire(_) => true,
                        // Unlock/fork/join/signal orders follow from the
                        // above plus program order.
                        _ => true,
                    };
                    if allowed {
                        // Consume the cursor eagerly: this action will be
                        // the one executed.
                        match kind {
                            K::Read(addr)
                            | K::Write(addr)
                            | K::AtomicLoad(addr, _)
                            | K::AtomicStore(addr, _)
                            | K::AtomicRmw(addr, _)
                            | K::AtomicCas(addr, _)
                                if self.log.accesses.contains_key(&addr.0) =>
                            {
                                *self.access_pos.get_mut(&addr.0).expect("cursor") += 1;
                            }
                            K::Lock(m) if self.log.mutex_orders.contains_key(&m.0) => {
                                *self.mutex_pos.get_mut(&m.0).expect("cursor") += 1;
                            }
                            _ => {}
                        }
                        return i;
                    }
                }
                StepPreview::WouldBlock => {}
            }
        }
        match fallback {
            Some(i) => i,
            None => {
                self.stuck = true;
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clap_ir::parse;
    use clap_vm::{MemModel, Outcome, RandomScheduler, Vm};

    const RACY: &str = "global int x = 0;
         fn w() { let v: int = x; yield; x = v + 1; }
         fn main() { let a: thread = fork w(); let b: thread = fork w();
                     join a; join b; assert(x == 2, \"lost\"); }";

    #[test]
    fn records_access_vectors() {
        let p = parse(RACY).unwrap();
        let mut vm = Vm::new(&p, MemModel::Sc);
        let mut rec = LeapRecorder::new();
        let mut sched = RandomScheduler::new(1);
        vm.run(&mut sched, &mut rec);
        let log = rec.finish();
        // x has 3 reads + 2 writes = 5 accesses.
        assert_eq!(log.event_count(), 5);
        assert!(log.size_bytes() > 0);
    }

    #[test]
    fn log_grows_with_shared_accesses_unlike_clap() {
        let small_src = "global int x = 0; fn main() { x = 1; }";
        let large_src = "global int x = 0;
             fn main() { let i: int = 0; while (i < 100) { x = x + 1; i = i + 1; } }";
        let size = |src: &str| {
            let p = parse(src).unwrap();
            let mut vm = Vm::new(&p, MemModel::Sc);
            let mut rec = LeapRecorder::new();
            vm.run(&mut RandomScheduler::new(0), &mut rec);
            rec.finish().size_bytes()
        };
        let (small, large) = (size(small_src), size(large_src));
        assert!(
            large > small + 150,
            "LEAP logs scale with access count: {small} vs {large}"
        );
    }

    #[test]
    fn leap_replay_reproduces_failing_interleaving() {
        let p = parse(RACY).unwrap();
        // Find a failing seed while recording with LEAP.
        for seed in 0..500 {
            let mut vm = Vm::new(&p, MemModel::Sc);
            let mut rec = LeapRecorder::new();
            let outcome = vm.run(&mut RandomScheduler::new(seed), &mut rec);
            if let Outcome::AssertFailed { assert, .. } = outcome {
                let log = rec.finish();
                let mut replay_vm = Vm::new(&p, MemModel::Sc);
                let mut replayer = LeapReplayer::new(log);
                let replay_outcome = replay_vm.run(&mut replayer, &mut clap_vm::NullMonitor);
                assert!(!replayer.is_stuck());
                assert_eq!(
                    replay_outcome,
                    Outcome::AssertFailed {
                        assert,
                        thread: clap_vm::ThreadId(0)
                    },
                    "LEAP replay reproduces the same failure"
                );
                return;
            }
        }
        panic!("no failing seed");
    }

    #[test]
    fn mutex_orders_recorded() {
        let p = parse(
            "global int x = 0; mutex m;
             fn w() { lock(m); x = x + 1; unlock(m); }
             fn main() { let a: thread = fork w(); let b: thread = fork w(); join a; join b; }",
        )
        .unwrap();
        let mut vm = Vm::new(&p, MemModel::Sc);
        let mut rec = LeapRecorder::new();
        vm.run(&mut RandomScheduler::new(5), &mut rec);
        let log = rec.finish();
        let m_order = log.mutex_orders.values().next().expect("mutex recorded");
        assert_eq!(m_order.len(), 2, "two acquisitions");
    }
}
