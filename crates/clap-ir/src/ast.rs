//! Surface-syntax AST produced by the parser.
//!
//! The AST mirrors the DSL grammar; names are unresolved strings. The
//! semantic checker ([`crate::sema`]) validates it and the lowering pass
//! ([`crate::lower`]) turns it into the CFG-level [`crate::Program`].

use crate::error::Span;

/// The type of a DSL value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer (wrapping arithmetic).
    Int,
    /// Boolean.
    Bool,
    /// Opaque thread handle returned by `fork`.
    Thread,
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Bool => write!(f, "bool"),
            Type::Thread => write!(f, "thread"),
        }
    }
}

/// A whole compilation unit: declarations plus functions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    /// Global variable declarations in source order.
    pub globals: Vec<GlobalAst>,
    /// Mutex declarations in source order.
    pub mutexes: Vec<NamedDecl>,
    /// Condition-variable declarations in source order.
    pub conds: Vec<NamedDecl>,
    /// Bounded-channel declarations in source order.
    pub chans: Vec<ChanAst>,
    /// C11-style atomic cell declarations in source order.
    pub atomics: Vec<AtomicAst>,
    /// Function definitions in source order.
    pub functions: Vec<FunctionAst>,
}

/// A C11-style memory ordering annotation on an atomic operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AtomicOrd {
    /// No ordering beyond per-location coherence.
    Relaxed,
    /// Load side of a release→acquire synchronizes-with edge.
    Acquire,
    /// Store side of a release→acquire synchronizes-with edge.
    Release,
    /// Full fence; participates in a single total order.
    SeqCst,
}

impl AtomicOrd {
    /// Parses the surface spelling of an ordering, if it is one.
    pub fn from_name(name: &str) -> Option<AtomicOrd> {
        Some(match name {
            "relaxed" => AtomicOrd::Relaxed,
            "acquire" => AtomicOrd::Acquire,
            "release" => AtomicOrd::Release,
            "seq_cst" => AtomicOrd::SeqCst,
            _ => return None,
        })
    }
}

impl std::fmt::Display for AtomicOrd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AtomicOrd::Relaxed => "relaxed",
            AtomicOrd::Acquire => "acquire",
            AtomicOrd::Release => "release",
            AtomicOrd::SeqCst => "seq_cst",
        };
        write!(f, "{s}")
    }
}

/// An `atomic int name = init;` declaration: a scalar cell accessed only
/// through `load`/`store`/`fetch_add`/`cas` with ordering annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomicAst {
    /// Cell name.
    pub name: String,
    /// Initial value.
    pub init: i64,
    /// Declaration site.
    pub span: Span,
}

/// A `chan ch(cap);` declaration: a bounded FIFO channel of 64-bit values.
#[derive(Debug, Clone, PartialEq)]
pub struct ChanAst {
    /// Channel name.
    pub name: String,
    /// Capacity; 0 means rendezvous (a send needs a waiting receiver).
    pub cap: usize,
    /// Declaration site.
    pub span: Span,
}

/// A `global int name = init;` or `global int name[len];` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct GlobalAst {
    /// Variable name.
    pub name: String,
    /// Array length, or `None` for a scalar.
    pub len: Option<usize>,
    /// Initial value for scalars (arrays are zero-initialized).
    pub init: i64,
    /// Declaration site.
    pub span: Span,
}

/// A `mutex m;` or `cond c;` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct NamedDecl {
    /// Object name.
    pub name: String,
    /// Declaration site.
    pub span: Span,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionAst {
    /// Function name.
    pub name: String,
    /// Parameter names and types.
    pub params: Vec<(String, Type)>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Definition site.
    pub span: Span,
}

/// A place an assignment can target.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// A scalar variable (local or global).
    Var(String),
    /// An indexed global array element.
    Index(String, Expr),
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `let name: ty = expr;`
    Let {
        /// Local variable name.
        name: String,
        /// Declared type.
        ty: Type,
        /// Initializer; for `thread` locals this must be a `fork`.
        init: LetInit,
        /// Statement site.
        span: Span,
    },
    /// `lvalue = expr;`
    Assign {
        /// Assignment target.
        lhs: LValue,
        /// Value.
        rhs: Expr,
        /// Statement site.
        span: Span,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then_body: Vec<Stmt>,
        /// Else branch (possibly empty).
        else_body: Vec<Stmt>,
        /// Statement site.
        span: Span,
    },
    /// `while (cond) { .. }`
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
        /// Statement site.
        span: Span,
    },
    /// `lock(m);`
    Lock {
        /// Mutex name.
        mutex: String,
        /// Statement site.
        span: Span,
    },
    /// `unlock(m);`
    Unlock {
        /// Mutex name.
        mutex: String,
        /// Statement site.
        span: Span,
    },
    /// `join handle;`
    Join {
        /// Thread-handle expression (a local of type `thread`).
        handle: Expr,
        /// Statement site.
        span: Span,
    },
    /// `wait(c, m);` — releases `m`, blocks on `c`, reacquires `m`.
    Wait {
        /// Condition-variable name.
        cond: String,
        /// Mutex name.
        mutex: String,
        /// Statement site.
        span: Span,
    },
    /// `signal(c);`
    Signal {
        /// Condition-variable name.
        cond: String,
        /// Statement site.
        span: Span,
    },
    /// `broadcast(c);`
    Broadcast {
        /// Condition-variable name.
        cond: String,
        /// Statement site.
        span: Span,
    },
    /// `send(ch, expr);` — blocking bounded-channel send.
    Send {
        /// Channel name.
        chan: String,
        /// Value sent.
        value: Expr,
        /// Statement site.
        span: Span,
    },
    /// `close(ch);` — mark the channel closed (idempotent).
    Close {
        /// Channel name.
        chan: String,
        /// Statement site.
        span: Span,
    },
    /// `mailbox_send(handle, expr);` — deposit a message in an actor's
    /// mailbox (dropped silently if the actor already exited).
    MailboxSend {
        /// Thread-handle expression naming the target actor.
        target: Expr,
        /// Value sent.
        value: Expr,
        /// Statement site.
        span: Span,
    },
    /// `store(a, expr, ord);` — atomic store with an ordering annotation.
    AtomicStore {
        /// Atomic cell name.
        atomic: String,
        /// Value stored.
        value: Expr,
        /// Memory ordering.
        ord: AtomicOrd,
        /// Statement site.
        span: Span,
    },
    /// `yield;`
    Yield {
        /// Statement site.
        span: Span,
    },
    /// `assert(expr, "message");`
    Assert {
        /// Property that must hold.
        cond: Expr,
        /// Failure message (the bug label).
        message: String,
        /// Statement site.
        span: Span,
    },
    /// `return expr?;`
    Return {
        /// Optional return value.
        value: Option<Expr>,
        /// Statement site.
        span: Span,
    },
    /// `f(args);`, `x = f(args);`, or `a[i] = f(args);` — a direct call
    /// statement.
    Call {
        /// Destination place, if the result is used.
        dst: Option<LValue>,
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Statement site.
        span: Span,
    },
}

impl Stmt {
    /// The source location of the statement.
    pub fn span(&self) -> Span {
        match self {
            Stmt::Let { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::Lock { span, .. }
            | Stmt::Unlock { span, .. }
            | Stmt::Join { span, .. }
            | Stmt::Wait { span, .. }
            | Stmt::Signal { span, .. }
            | Stmt::Broadcast { span, .. }
            | Stmt::Send { span, .. }
            | Stmt::Close { span, .. }
            | Stmt::MailboxSend { span, .. }
            | Stmt::AtomicStore { span, .. }
            | Stmt::Yield { span }
            | Stmt::Assert { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Call { span, .. } => *span,
        }
    }
}

/// The initializer of a `let` statement.
#[derive(Debug, Clone, PartialEq)]
pub enum LetInit {
    /// A plain expression.
    Expr(Expr),
    /// `fork f(args)` — spawns a thread running `f`.
    Fork {
        /// Callee name.
        func: String,
        /// Arguments passed to the new thread's entry function.
        args: Vec<Expr>,
    },
    /// `f(args)` as an initializer — a call whose result seeds the local.
    Call {
        /// Callee name.
        func: String,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// `recv(ch)` — blocking receive; yields `-1` once the channel is
    /// closed and drained.
    Recv {
        /// Channel name.
        chan: String,
    },
    /// `try_recv(ch)` — non-blocking receive; `-1` when nothing is ready.
    TryRecv {
        /// Channel name.
        chan: String,
    },
    /// `try_send(ch, expr)` — non-blocking send; yields 1 on success, 0
    /// when the channel is full, closed, or (for rendezvous channels) has
    /// no waiting receiver.
    TrySend {
        /// Channel name.
        chan: String,
        /// Value offered.
        value: Expr,
    },
    /// `spawn_actor f(args)` — spawns a thread with an actor mailbox.
    SpawnActor {
        /// Callee name.
        func: String,
        /// Arguments passed to the new actor's entry function.
        args: Vec<Expr>,
    },
    /// `mailbox_recv()` — blocking receive from the calling thread's own
    /// mailbox.
    MailboxRecv,
    /// `load(a, ord)` — atomic load with an ordering annotation.
    AtomicLoad {
        /// Atomic cell name.
        atomic: String,
        /// Memory ordering.
        ord: AtomicOrd,
    },
    /// `fetch_add(a, expr, ord)` — atomic add; yields the old value.
    FetchAdd {
        /// Atomic cell name.
        atomic: String,
        /// Addend.
        value: Expr,
        /// Memory ordering.
        ord: AtomicOrd,
    },
    /// `cas(a, expected, desired, ord)` — atomic compare-and-swap; yields
    /// the old value (the swap happened iff the result equals `expected`).
    Cas {
        /// Atomic cell name.
        atomic: String,
        /// Value the cell must hold for the swap to happen.
        expected: Expr,
        /// Value installed on success.
        desired: Expr,
        /// Memory ordering.
        ord: AtomicOrd,
    },
}

/// Binary operators. `And`/`Or` evaluate both operands (no short circuit);
/// this keeps lowering branch-free, which keeps Ball–Larus paths aligned
/// with source-level branches only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+` (wrapping)
    Add,
    /// `-` (wrapping)
    Sub,
    /// `*` (wrapping)
    Mul,
    /// `/` (wrapping; division by zero yields 0, like a benign trap)
    Div,
    /// `%` (division by zero yields 0)
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (eager)
    And,
    /// `||` (eager)
    Or,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `<<` (masked to 0..63)
    Shl,
    /// `>>` (arithmetic, masked to 0..63)
    Shr,
}

impl BinOp {
    /// `true` if the operator produces a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// `true` if the operator combines booleans.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

impl std::fmt::Display for BinOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
            BinOp::BitAnd => "&",
            BinOp::BitOr => "|",
            BinOp::BitXor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
        };
        write!(f, "{s}")
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64, Span),
    /// Boolean literal.
    Bool(bool, Span),
    /// Variable reference (local or global scalar).
    Var(String, Span),
    /// Global array element `name[index]`.
    Index(String, Box<Expr>, Span),
    /// Unary operation.
    Unary(UnOp, Box<Expr>, Span),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>, Span),
}

impl Expr {
    /// The source location of the expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::Int(_, s)
            | Expr::Bool(_, s)
            | Expr::Var(_, s)
            | Expr::Index(_, _, s)
            | Expr::Unary(_, _, s)
            | Expr::Binary(_, _, _, s) => *s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Lt.is_logical());
    }

    #[test]
    fn type_display() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::Thread.to_string(), "thread");
    }

    #[test]
    fn stmt_span_accessor() {
        let s = Stmt::Yield {
            span: Span::new(4, 2),
        };
        assert_eq!(s.span(), Span::new(4, 2));
    }
}
