//! Recursive-descent parser with precedence climbing for expressions.
//!
//! Grammar sketch (EBNF, `*` repetition, `?` option):
//!
//! ```text
//! module    := (global | mutex | cond | function)*
//! global    := "global" "int" IDENT ("[" INT "]")? ("=" INT)? ";"
//! mutex     := "mutex" IDENT ";"
//! cond      := "cond" IDENT ";"
//! function  := "fn" IDENT "(" params? ")" block
//! params    := IDENT ":" type ("," IDENT ":" type)*
//! block     := "{" stmt* "}"
//! stmt      := let | assign | if | while | lock | unlock | join | wait
//!            | signal | broadcast | yield | assert | return | call
//! let       := "let" IDENT ":" type "=" (expr | "fork" IDENT "(" args ")" ) ";"
//! expr      := precedence-climbed binary expression over unary / primary
//! ```

use crate::ast::*;
use crate::error::{Error, Result, Span};
use crate::token::{Token, TokenKind};

/// Parses a token stream (as produced by [`crate::lexer::lex`]) into a
/// [`Module`].
///
/// # Errors
///
/// Returns [`Error::Parse`] when the token stream does not match the
/// grammar.
pub fn parse_tokens(tokens: &[Token]) -> Result<Module> {
    Parser { tokens, pos: 0 }.module()
}

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)]
            .kind
            .clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<()> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(Error::parse(
                self.span(),
                format!("expected `{kind}`, found `{}`", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            other => Err(Error::parse(
                self.span(),
                format!("expected identifier, found `{other}`"),
            )),
        }
    }

    fn int_lit(&mut self) -> Result<i64> {
        let negative = self.eat(&TokenKind::Minus);
        match self.peek().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(if negative { v.wrapping_neg() } else { v })
            }
            other => Err(Error::parse(
                self.span(),
                format!("expected integer, found `{other}`"),
            )),
        }
    }

    fn module(&mut self) -> Result<Module> {
        let mut module = Module::default();
        loop {
            let span = self.span();
            match self.peek() {
                TokenKind::Eof => return Ok(module),
                TokenKind::Global => {
                    self.bump();
                    self.expect(&TokenKind::TyInt)?;
                    let name = self.ident()?;
                    let len = if self.eat(&TokenKind::LBracket) {
                        let n = self.int_lit()?;
                        self.expect(&TokenKind::RBracket)?;
                        if n <= 0 {
                            return Err(Error::parse(span, "array length must be positive"));
                        }
                        Some(n as usize)
                    } else {
                        None
                    };
                    let init = if self.eat(&TokenKind::Assign) {
                        self.int_lit()?
                    } else {
                        0
                    };
                    if len.is_some() && init != 0 {
                        return Err(Error::parse(
                            span,
                            "array globals cannot take an initializer",
                        ));
                    }
                    self.expect(&TokenKind::Semi)?;
                    module.globals.push(GlobalAst {
                        name,
                        len,
                        init,
                        span,
                    });
                }
                TokenKind::Mutex => {
                    self.bump();
                    let name = self.ident()?;
                    self.expect(&TokenKind::Semi)?;
                    module.mutexes.push(NamedDecl { name, span });
                }
                TokenKind::Cond => {
                    self.bump();
                    let name = self.ident()?;
                    self.expect(&TokenKind::Semi)?;
                    module.conds.push(NamedDecl { name, span });
                }
                TokenKind::Chan => {
                    self.bump();
                    let name = self.ident()?;
                    self.expect(&TokenKind::LParen)?;
                    let cap = self.int_lit()?;
                    self.expect(&TokenKind::RParen)?;
                    self.expect(&TokenKind::Semi)?;
                    if !(0..=64).contains(&cap) {
                        return Err(Error::parse(
                            span,
                            "channel capacity must be between 0 and 64",
                        ));
                    }
                    module.chans.push(ChanAst {
                        name,
                        cap: cap as usize,
                        span,
                    });
                }
                TokenKind::Atomic => {
                    self.bump();
                    self.expect(&TokenKind::TyInt)?;
                    let name = self.ident()?;
                    let init = if self.eat(&TokenKind::Assign) {
                        self.int_lit()?
                    } else {
                        0
                    };
                    self.expect(&TokenKind::Semi)?;
                    module.atomics.push(AtomicAst { name, init, span });
                }
                TokenKind::Fn => {
                    module.functions.push(self.function()?);
                }
                other => {
                    return Err(Error::parse(
                        span,
                        format!("expected a declaration or `fn`, found `{other}`"),
                    ))
                }
            }
        }
    }

    fn ty(&mut self) -> Result<Type> {
        let span = self.span();
        match self.bump() {
            TokenKind::TyInt => Ok(Type::Int),
            TokenKind::TyBool => Ok(Type::Bool),
            TokenKind::TyThread => Ok(Type::Thread),
            other => Err(Error::parse(
                span,
                format!("expected a type, found `{other}`"),
            )),
        }
    }

    fn function(&mut self) -> Result<FunctionAst> {
        let span = self.span();
        self.expect(&TokenKind::Fn)?;
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                let pname = self.ident()?;
                self.expect(&TokenKind::Colon)?;
                let pty = self.ty()?;
                params.push((pname, pty));
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma)?;
            }
        }
        let body = self.block()?;
        Ok(FunctionAst {
            name,
            params,
            body,
            span,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&TokenKind::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            if matches!(self.peek(), TokenKind::Eof) {
                return Err(Error::parse(
                    self.span(),
                    "unexpected end of input inside block",
                ));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    fn args(&mut self) -> Result<Vec<Expr>> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if !self.eat(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(&TokenKind::Comma)?;
            }
        }
        Ok(args)
    }

    fn stmt(&mut self) -> Result<Stmt> {
        let span = self.span();
        match self.peek().clone() {
            TokenKind::Let => {
                self.bump();
                let name = self.ident()?;
                self.expect(&TokenKind::Colon)?;
                let ty = self.ty()?;
                self.expect(&TokenKind::Assign)?;
                let init = if self.eat(&TokenKind::Fork) {
                    let func = self.ident()?;
                    let args = self.args()?;
                    LetInit::Fork { func, args }
                } else if self.eat(&TokenKind::SpawnActor) {
                    let func = self.ident()?;
                    let args = self.args()?;
                    LetInit::SpawnActor { func, args }
                } else if self.eat(&TokenKind::Recv) {
                    self.expect(&TokenKind::LParen)?;
                    let chan = self.ident()?;
                    self.expect(&TokenKind::RParen)?;
                    LetInit::Recv { chan }
                } else if self.eat(&TokenKind::TryRecv) {
                    self.expect(&TokenKind::LParen)?;
                    let chan = self.ident()?;
                    self.expect(&TokenKind::RParen)?;
                    LetInit::TryRecv { chan }
                } else if self.eat(&TokenKind::TrySend) {
                    self.expect(&TokenKind::LParen)?;
                    let chan = self.ident()?;
                    self.expect(&TokenKind::Comma)?;
                    let value = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    LetInit::TrySend { chan, value }
                } else if self.eat(&TokenKind::MailboxRecv) {
                    self.expect(&TokenKind::LParen)?;
                    self.expect(&TokenKind::RParen)?;
                    LetInit::MailboxRecv
                } else if self.eat(&TokenKind::Load) {
                    self.expect(&TokenKind::LParen)?;
                    let atomic = self.ident()?;
                    let ord = self.ordering_arg()?;
                    self.expect(&TokenKind::RParen)?;
                    LetInit::AtomicLoad { atomic, ord }
                } else if self.eat(&TokenKind::FetchAdd) {
                    self.expect(&TokenKind::LParen)?;
                    let atomic = self.ident()?;
                    self.expect(&TokenKind::Comma)?;
                    let value = self.expr()?;
                    let ord = self.ordering_arg()?;
                    self.expect(&TokenKind::RParen)?;
                    LetInit::FetchAdd { atomic, value, ord }
                } else if self.eat(&TokenKind::Cas) {
                    self.expect(&TokenKind::LParen)?;
                    let atomic = self.ident()?;
                    self.expect(&TokenKind::Comma)?;
                    let expected = self.expr()?;
                    self.expect(&TokenKind::Comma)?;
                    let desired = self.expr()?;
                    let ord = self.ordering_arg()?;
                    self.expect(&TokenKind::RParen)?;
                    LetInit::Cas {
                        atomic,
                        expected,
                        desired,
                        ord,
                    }
                } else if let TokenKind::Ident(name2) = self.peek().clone() {
                    // Lookahead: `ident (` is a call initializer.
                    if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen) {
                        self.bump();
                        let args = self.args()?;
                        LetInit::Call { func: name2, args }
                    } else {
                        LetInit::Expr(self.expr()?)
                    }
                } else {
                    LetInit::Expr(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Let {
                    name,
                    ty,
                    init,
                    span,
                })
            }
            TokenKind::If => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let then_body = self.block()?;
                let else_body = if self.eat(&TokenKind::Else) {
                    if matches!(self.peek(), TokenKind::If) {
                        vec![self.stmt()?]
                    } else {
                        self.block()?
                    }
                } else {
                    Vec::new()
                };
                Ok(Stmt::If {
                    cond,
                    then_body,
                    else_body,
                    span,
                })
            }
            TokenKind::While => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                let body = self.block()?;
                Ok(Stmt::While { cond, body, span })
            }
            TokenKind::Lock => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mutex = self.ident()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Lock { mutex, span })
            }
            TokenKind::Unlock => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let mutex = self.ident()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Unlock { mutex, span })
            }
            TokenKind::Join => {
                self.bump();
                let handle = self.expr()?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Join { handle, span })
            }
            TokenKind::Wait => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.ident()?;
                self.expect(&TokenKind::Comma)?;
                let mutex = self.ident()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Wait { cond, mutex, span })
            }
            TokenKind::Signal => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.ident()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Signal { cond, span })
            }
            TokenKind::Broadcast => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.ident()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Broadcast { cond, span })
            }
            TokenKind::Send => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let chan = self.ident()?;
                self.expect(&TokenKind::Comma)?;
                let value = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Send { chan, value, span })
            }
            TokenKind::Close => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let chan = self.ident()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Close { chan, span })
            }
            TokenKind::MailboxSend => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let target = self.expr()?;
                self.expect(&TokenKind::Comma)?;
                let value = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::MailboxSend {
                    target,
                    value,
                    span,
                })
            }
            TokenKind::Store => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let atomic = self.ident()?;
                self.expect(&TokenKind::Comma)?;
                let value = self.expr()?;
                let ord = self.ordering_arg()?;
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::AtomicStore {
                    atomic,
                    value,
                    ord,
                    span,
                })
            }
            TokenKind::Yield => {
                self.bump();
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Yield { span })
            }
            TokenKind::Assert => {
                self.bump();
                self.expect(&TokenKind::LParen)?;
                let cond = self.expr()?;
                let message = if self.eat(&TokenKind::Comma) {
                    match self.bump() {
                        TokenKind::Str(s) => s,
                        other => {
                            return Err(Error::parse(
                                span,
                                format!("expected string message, found `{other}`"),
                            ))
                        }
                    }
                } else {
                    String::from("assertion failed")
                };
                self.expect(&TokenKind::RParen)?;
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Assert {
                    cond,
                    message,
                    span,
                })
            }
            TokenKind::Return => {
                self.bump();
                let value = if matches!(self.peek(), TokenKind::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(&TokenKind::Semi)?;
                Ok(Stmt::Return { value, span })
            }
            TokenKind::Ident(name) => {
                // assignment, call, or `x = f(..)` call-with-destination
                self.bump();
                match self.peek().clone() {
                    TokenKind::LParen => {
                        let args = self.args()?;
                        self.expect(&TokenKind::Semi)?;
                        Ok(Stmt::Call {
                            dst: None,
                            func: name,
                            args,
                            span,
                        })
                    }
                    TokenKind::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(&TokenKind::RBracket)?;
                        self.expect(&TokenKind::Assign)?;
                        // `a[i] = f(...)` is a call with an indexed
                        // destination.
                        if let TokenKind::Ident(callee) = self.peek().clone() {
                            if self.tokens.get(self.pos + 1).map(|t| &t.kind)
                                == Some(&TokenKind::LParen)
                            {
                                self.bump();
                                let args = self.args()?;
                                self.expect(&TokenKind::Semi)?;
                                return Ok(Stmt::Call {
                                    dst: Some(LValue::Index(name, index)),
                                    func: callee,
                                    args,
                                    span,
                                });
                            }
                        }
                        let rhs = self.expr()?;
                        self.expect(&TokenKind::Semi)?;
                        Ok(Stmt::Assign {
                            lhs: LValue::Index(name, index),
                            rhs,
                            span,
                        })
                    }
                    TokenKind::Assign => {
                        self.bump();
                        // `x = f(...)` where f is a call: detect `ident (`
                        if let TokenKind::Ident(callee) = self.peek().clone() {
                            if self.tokens.get(self.pos + 1).map(|t| &t.kind)
                                == Some(&TokenKind::LParen)
                            {
                                self.bump();
                                let args = self.args()?;
                                self.expect(&TokenKind::Semi)?;
                                return Ok(Stmt::Call {
                                    dst: Some(LValue::Var(name)),
                                    func: callee,
                                    args,
                                    span,
                                });
                            }
                        }
                        let rhs = self.expr()?;
                        self.expect(&TokenKind::Semi)?;
                        Ok(Stmt::Assign {
                            lhs: LValue::Var(name),
                            rhs,
                            span,
                        })
                    }
                    other => Err(Error::parse(
                        span,
                        format!("expected `=`, `[`, or `(` after identifier, found `{other}`"),
                    )),
                }
            }
            other => Err(Error::parse(
                span,
                format!("expected a statement, found `{other}`"),
            )),
        }
    }

    /// Parses an optional trailing `, ordering` argument of an atomic op;
    /// an omitted ordering means `seq_cst`.
    fn ordering_arg(&mut self) -> Result<AtomicOrd> {
        if !self.eat(&TokenKind::Comma) {
            return Ok(AtomicOrd::SeqCst);
        }
        let span = self.span();
        let name = self.ident()?;
        AtomicOrd::from_name(&name).ok_or_else(|| {
            Error::parse(
                span,
                format!("expected `relaxed`, `acquire`, `release`, or `seq_cst`, found `{name}`"),
            )
        })
    }

    /// Expression parsing via precedence climbing.
    fn expr(&mut self) -> Result<Expr> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = binop_of(self.peek()) {
            if prec < min_prec {
                break;
            }
            let span = self.span();
            self.bump();
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs), span);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr> {
        let span = self.span();
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            // Fold negation of integer literals so `-5` is a literal
            // (keeps unparse→parse round trips exact).
            if let Expr::Int(v, s) = inner {
                return Ok(Expr::Int(v.wrapping_neg(), s));
            }
            return Ok(Expr::Unary(UnOp::Neg, Box::new(inner), span));
        }
        if self.eat(&TokenKind::Not) {
            let inner = self.unary()?;
            return Ok(Expr::Unary(UnOp::Not, Box::new(inner), span));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr> {
        let span = self.span();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v, span)),
            TokenKind::True => Ok(Expr::Bool(true, span)),
            TokenKind::False => Ok(Expr::Bool(false, span)),
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LBracket) {
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket)?;
                    Ok(Expr::Index(name, Box::new(index), span))
                } else {
                    Ok(Expr::Var(name, span))
                }
            }
            TokenKind::LParen => {
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            other => Err(Error::parse(
                span,
                format!("expected an expression, found `{other}`"),
            )),
        }
    }
}

/// Binding power table: higher binds tighter.
fn binop_of(kind: &TokenKind) -> Option<(BinOp, u8)> {
    Some(match kind {
        TokenKind::OrOr => (BinOp::Or, 1),
        TokenKind::AndAnd => (BinOp::And, 2),
        TokenKind::Pipe => (BinOp::BitOr, 3),
        TokenKind::Caret => (BinOp::BitXor, 4),
        TokenKind::Amp => (BinOp::BitAnd, 5),
        TokenKind::EqEq => (BinOp::Eq, 6),
        TokenKind::NotEq => (BinOp::Ne, 6),
        TokenKind::Lt => (BinOp::Lt, 7),
        TokenKind::Le => (BinOp::Le, 7),
        TokenKind::Gt => (BinOp::Gt, 7),
        TokenKind::Ge => (BinOp::Ge, 7),
        TokenKind::Shl => (BinOp::Shl, 8),
        TokenKind::Shr => (BinOp::Shr, 8),
        TokenKind::Plus => (BinOp::Add, 9),
        TokenKind::Minus => (BinOp::Sub, 9),
        TokenKind::Star => (BinOp::Mul, 10),
        TokenKind::Slash => (BinOp::Div, 10),
        TokenKind::Percent => (BinOp::Rem, 10),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> Module {
        parse_tokens(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn parses_globals_and_sync_objects() {
        let m = parse("global int x = 3; global int a[8]; mutex m; cond c;");
        assert_eq!(m.globals.len(), 2);
        assert_eq!(m.globals[0].init, 3);
        assert_eq!(m.globals[1].len, Some(8));
        assert_eq!(m.mutexes.len(), 1);
        assert_eq!(m.conds.len(), 1);
    }

    #[test]
    fn parses_function_with_params() {
        let m = parse("fn f(a: int, b: bool) { return a; }");
        assert_eq!(m.functions[0].params.len(), 2);
        assert_eq!(m.functions[0].params[1].1, Type::Bool);
    }

    #[test]
    fn precedence_mul_over_add() {
        let m = parse("fn f() { let x: int = 1 + 2 * 3; }");
        let Stmt::Let {
            init: LetInit::Expr(Expr::Binary(BinOp::Add, _, rhs, _)),
            ..
        } = &m.functions[0].body[0]
        else {
            panic!("expected add at top");
        };
        assert!(matches!(**rhs, Expr::Binary(BinOp::Mul, _, _, _)));
    }

    #[test]
    fn precedence_comparison_over_logic() {
        let m = parse("fn f() { let x: bool = 1 < 2 && 3 < 4; }");
        let Stmt::Let {
            init: LetInit::Expr(Expr::Binary(op, _, _, _)),
            ..
        } = &m.functions[0].body[0]
        else {
            panic!();
        };
        assert_eq!(*op, BinOp::And);
    }

    #[test]
    fn parses_fork_and_join() {
        let m = parse("fn w(i: int) {} fn main() { let t: thread = fork w(1); join t; }");
        assert!(matches!(
            m.functions[1].body[0],
            Stmt::Let {
                init: LetInit::Fork { .. },
                ..
            }
        ));
        assert!(matches!(m.functions[1].body[1], Stmt::Join { .. }));
    }

    #[test]
    fn parses_if_else_chain() {
        let m = parse(
            "fn f(x: int) { if (x == 1) { yield; } else if (x == 2) { yield; } else { yield; } }",
        );
        let Stmt::If { else_body, .. } = &m.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(else_body[0], Stmt::If { .. }));
    }

    #[test]
    fn parses_call_forms() {
        let m = parse("fn g() { return 1; } fn f() { g(); let a: int = g(); a = g(); }");
        assert!(matches!(
            m.functions[1].body[0],
            Stmt::Call { dst: None, .. }
        ));
        assert!(matches!(
            m.functions[1].body[1],
            Stmt::Let {
                init: LetInit::Call { .. },
                ..
            }
        ));
        assert!(matches!(
            m.functions[1].body[2],
            Stmt::Call { dst: Some(_), .. }
        ));
    }

    #[test]
    fn parses_array_assignment() {
        let m = parse("global int a[4]; fn f() { a[1 + 2] = 7; }");
        assert!(matches!(
            m.functions[0].body[0],
            Stmt::Assign {
                lhs: LValue::Index(_, _),
                ..
            }
        ));
    }

    #[test]
    fn parses_assert_with_message() {
        let m = parse(r#"fn f() { assert(1 == 1, "fine"); assert(true); }"#);
        let Stmt::Assert { message, .. } = &m.functions[0].body[0] else {
            panic!()
        };
        assert_eq!(message, "fine");
        let Stmt::Assert { message, .. } = &m.functions[0].body[1] else {
            panic!()
        };
        assert_eq!(message, "assertion failed");
    }

    #[test]
    fn parses_wait_signal_broadcast() {
        let m = parse("mutex m; cond c; fn f() { wait(c, m); signal(c); broadcast(c); }");
        assert!(matches!(m.functions[0].body[0], Stmt::Wait { .. }));
        assert!(matches!(m.functions[0].body[1], Stmt::Signal { .. }));
        assert!(matches!(m.functions[0].body[2], Stmt::Broadcast { .. }));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_tokens(&lex("fn f() { let ; }").unwrap()).is_err());
        assert!(parse_tokens(&lex("wibble;").unwrap()).is_err());
        assert!(parse_tokens(&lex("fn f() {").unwrap()).is_err());
    }

    #[test]
    fn unary_operators_nest() {
        let m = parse("fn f() { let x: int = - - 3; let b: bool = !!true; }");
        assert_eq!(m.functions[0].body.len(), 2);
    }

    #[test]
    fn negative_global_initializer() {
        let m = parse("global int x = -5;");
        assert_eq!(m.globals[0].init, -5);
    }
}
