//! The CFG-level program representation consumed by every downstream
//! component (VM, profiler, analyses, symbolic executor).
//!
//! A [`Program`] owns flat tables of globals, mutexes, condition variables
//! and functions; each [`Function`] is a list of [`Block`]s holding
//! straight-line [`Instr`]uctions and a [`Terminator`]. All values are
//! 64-bit integers; booleans are 0/1.

use crate::ast::{BinOp, UnOp};
use crate::error::Span;
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub u32);

        impl $name {
            /// The underlying index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<usize> for $name {
            fn from(i: usize) -> Self {
                $name(i as u32)
            }
        }
    };
}

id_type!(
    /// Identifies a global variable within a [`Program`].
    GlobalId, "g"
);
id_type!(
    /// Identifies a mutex within a [`Program`].
    MutexId, "m"
);
id_type!(
    /// Identifies a condition variable within a [`Program`].
    CondId, "c"
);
id_type!(
    /// Identifies a function within a [`Program`].
    FuncId, "fn"
);
id_type!(
    /// Identifies a basic block within a [`Function`].
    BlockId, "bb"
);
id_type!(
    /// Identifies a local slot within a [`Function`] frame.
    LocalId, "l"
);
id_type!(
    /// Identifies an `assert` site within a [`Program`].
    AssertId, "a"
);
id_type!(
    /// Identifies a bounded channel within a [`Program`].
    ChanId, "ch"
);

/// A bounded-channel declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChanDecl {
    /// Source-level name.
    pub name: String,
    /// Queue capacity; 0 means rendezvous semantics.
    pub cap: usize,
}

/// A global variable: a scalar (`len == None`) or a zero-initialized array.
/// Atomic cells are lowered as scalar globals with `atomic` set; they share
/// the global address space but are only touched by atomic instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDecl {
    /// Source-level name.
    pub name: String,
    /// Array length; `None` for scalars.
    pub len: Option<usize>,
    /// Initial value (scalars only; arrays start at zero).
    pub init: i64,
    /// `true` for C11-style atomic cells (`atomic int a = 0;`).
    pub atomic: bool,
}

impl GlobalDecl {
    /// Number of addressable cells (1 for scalars).
    pub fn cells(&self) -> usize {
        self.len.unwrap_or(1)
    }
}

/// Metadata about an `assert` statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssertInfo {
    /// The failure message from the source.
    pub message: String,
    /// Source location of the assert.
    pub span: Span,
    /// Owning function.
    pub func: FuncId,
}

/// A value source for an instruction: a frame slot or an immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a local slot.
    Local(LocalId),
    /// An immediate constant.
    Const(i64),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Local(l) => write!(f, "{l}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// A pure right-hand side computed over locals and constants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rvalue {
    /// Copy an operand.
    Use(Operand),
    /// Apply a unary operator.
    Unary(UnOp, Operand),
    /// Apply a binary operator.
    Binary(BinOp, Operand, Operand),
}

impl fmt::Display for Rvalue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rvalue::Use(op) => write!(f, "{op}"),
            Rvalue::Unary(UnOp::Neg, op) => write!(f, "-{op}"),
            Rvalue::Unary(UnOp::Not, op) => write!(f, "!{op}"),
            Rvalue::Binary(op, a, b) => write!(f, "{a} {op} {b}"),
        }
    }
}

/// One instruction. Shared-memory operations ([`Instr::Load`] /
/// [`Instr::Store`] on shared globals) and synchronization operations are
/// the *shared access points* (SAPs) of the paper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Instr {
    /// `dst = rvalue` — pure local computation.
    Assign {
        /// Destination slot.
        dst: LocalId,
        /// Computed value.
        rv: Rvalue,
    },
    /// `dst = global[index?]` — a (potentially shared) memory read.
    Load {
        /// Destination slot.
        dst: LocalId,
        /// Source global.
        global: GlobalId,
        /// Element index for arrays; `None` for scalars.
        index: Option<Operand>,
    },
    /// `global[index?] = src` — a (potentially shared) memory write.
    Store {
        /// Destination global.
        global: GlobalId,
        /// Element index for arrays; `None` for scalars.
        index: Option<Operand>,
        /// Value written.
        src: Operand,
    },
    /// Acquire a mutex (full memory fence under TSO/PSO).
    Lock(MutexId),
    /// Release a mutex (full memory fence under TSO/PSO).
    Unlock(MutexId),
    /// Spawn a thread running `func(args…)`; store its handle in `dst`.
    Fork {
        /// Receives the new thread's handle.
        dst: LocalId,
        /// Entry function of the new thread.
        func: FuncId,
        /// Arguments for the entry function.
        args: Vec<Operand>,
    },
    /// Block until the thread named by `handle` exits.
    Join {
        /// Thread handle (from [`Instr::Fork`]).
        handle: Operand,
    },
    /// Atomically release `mutex` and block on `cond`; reacquire on wakeup.
    Wait {
        /// Condition variable.
        cond: CondId,
        /// Protecting mutex.
        mutex: MutexId,
    },
    /// Wake one waiter of `cond` (no-op if none).
    Signal(CondId),
    /// Wake all waiters of `cond`.
    Broadcast(CondId),
    /// Blocking bounded-channel send: enqueue `src`, blocking while the
    /// queue is full (or, for capacity 0, until a receiver is poised at a
    /// `recv` on the same channel). Sending on a closed channel silently
    /// drops the value — that is the "lost close race" failure mode.
    Send {
        /// Target channel.
        chan: ChanId,
        /// Value sent.
        src: Operand,
    },
    /// Blocking bounded-channel receive: dequeue into `dst`, blocking while
    /// the queue is empty; yields `-1` once the channel is closed and
    /// drained.
    Recv {
        /// Destination slot.
        dst: LocalId,
        /// Source channel.
        chan: ChanId,
    },
    /// Non-blocking send: `dst` gets 1 if the value was enqueued, 0 if the
    /// channel was full, closed, or (capacity 0) had no waiting receiver.
    TrySend {
        /// Receives the success flag.
        dst: LocalId,
        /// Target channel.
        chan: ChanId,
        /// Value offered.
        src: Operand,
    },
    /// Non-blocking receive: `dst` gets the value, or `-1` when the queue
    /// is empty (whether or not the channel is closed).
    TryRecv {
        /// Destination slot.
        dst: LocalId,
        /// Source channel.
        chan: ChanId,
    },
    /// Close a channel (idempotent). Waiting receivers drain then see `-1`.
    ChanClose(ChanId),
    /// Spawn a thread with an actor mailbox running `func(args…)`.
    /// Identical to [`Instr::Fork`] except for the SAP kind it records.
    SpawnActor {
        /// Receives the new actor's handle.
        dst: LocalId,
        /// Entry function of the new actor.
        func: FuncId,
        /// Arguments for the entry function.
        args: Vec<Operand>,
    },
    /// Deposit a message in the mailbox of the thread named by `target`.
    /// Messages to exited threads are dropped silently (dead letters).
    MailboxSend {
        /// Thread handle of the target actor.
        target: Operand,
        /// Value sent.
        src: Operand,
    },
    /// Blocking receive from the calling thread's own mailbox.
    MailboxRecv {
        /// Destination slot.
        dst: LocalId,
    },
    /// `dst = load(atomic, ord)` — atomic load of a cell.
    AtomicLoad {
        /// Destination slot.
        dst: LocalId,
        /// Atomic cell (a global with the `atomic` flag).
        global: GlobalId,
        /// Memory ordering.
        ord: crate::ast::AtomicOrd,
    },
    /// `store(atomic, src, ord)` — atomic store to a cell. Relaxed and
    /// release stores become visible via schedulable propagation actions;
    /// `seq_cst` stores are full fences with immediate visibility.
    AtomicStore {
        /// Atomic cell.
        global: GlobalId,
        /// Value written.
        src: Operand,
        /// Memory ordering.
        ord: crate::ast::AtomicOrd,
    },
    /// `dst = fetch_add(atomic, src, ord)` — atomic read-modify-write;
    /// `dst` receives the old value, the cell gains `src`.
    AtomicRmw {
        /// Receives the old value.
        dst: LocalId,
        /// Atomic cell.
        global: GlobalId,
        /// Addend.
        src: Operand,
        /// Memory ordering.
        ord: crate::ast::AtomicOrd,
    },
    /// `dst = cas(atomic, expected, desired, ord)` — atomic compare-and-
    /// swap; `dst` receives the old value (success iff it equals
    /// `expected`).
    AtomicCas {
        /// Receives the old value.
        dst: LocalId,
        /// Atomic cell.
        global: GlobalId,
        /// Value the cell must hold for the swap.
        expected: Operand,
        /// Value installed on success.
        desired: Operand,
        /// Memory ordering.
        ord: crate::ast::AtomicOrd,
    },
    /// Voluntarily offer a context switch.
    Yield,
    /// Check a property; a false condition manifests the bug.
    Assert {
        /// 0 = failure, nonzero = pass.
        cond: Operand,
        /// Which assert site this is.
        id: AssertId,
    },
    /// Call `func(args…)` and store the result (if any) into `dst`.
    Call {
        /// Receives the return value, if used.
        dst: Option<LocalId>,
        /// Callee.
        func: FuncId,
        /// Arguments.
        args: Vec<Operand>,
    },
}

impl Instr {
    /// `true` if this instruction touches a global variable.
    pub fn is_memory_access(&self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// `true` if this instruction is a C11-style atomic operation.
    pub fn is_atomic(&self) -> bool {
        matches!(
            self,
            Instr::AtomicLoad { .. }
                | Instr::AtomicStore { .. }
                | Instr::AtomicRmw { .. }
                | Instr::AtomicCas { .. }
        )
    }

    /// `true` if this instruction is a synchronization operation.
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            Instr::Lock(_)
                | Instr::Unlock(_)
                | Instr::Fork { .. }
                | Instr::Join { .. }
                | Instr::Wait { .. }
                | Instr::Signal(_)
                | Instr::Broadcast(_)
                | Instr::Send { .. }
                | Instr::Recv { .. }
                | Instr::TrySend { .. }
                | Instr::TryRecv { .. }
                | Instr::ChanClose(_)
                | Instr::SpawnActor { .. }
                | Instr::MailboxSend { .. }
                | Instr::MailboxRecv { .. }
        )
    }
}

/// How control leaves a basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way branch on an operand (0 = false).
    Branch {
        /// Condition operand.
        cond: Operand,
        /// Target when nonzero.
        then_bb: BlockId,
        /// Target when zero.
        else_bb: BlockId,
    },
    /// Return from the function, with an optional value.
    Return(Option<Operand>),
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Goto(b) => vec![*b],
            Terminator::Branch {
                then_bb, else_bb, ..
            } => vec![*then_bb, *else_bb],
            Terminator::Return(_) => Vec::new(),
        }
    }

    /// `true` for two-way branches (these are the conditional-branch count
    /// `N_br` of the paper's complexity analysis).
    pub fn is_branch(&self) -> bool {
        matches!(self, Terminator::Branch { .. })
    }
}

/// A basic block: straight-line instructions plus a terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Instructions in execution order.
    pub instrs: Vec<Instr>,
    /// How control continues.
    pub term: Terminator,
}

/// A function body in CFG form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Source-level name.
    pub name: String,
    /// Number of parameters; parameters occupy local slots `0..param_count`.
    pub param_count: usize,
    /// Debug names of all local slots (parameters first).
    pub locals: Vec<String>,
    /// Basic blocks; `BlockId` indexes into this.
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
}

impl Function {
    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Total number of instructions across all blocks.
    pub fn instr_count(&self) -> usize {
        self.blocks.iter().map(|b| b.instrs.len()).sum()
    }

    /// Number of conditional branches.
    pub fn branch_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.term.is_branch()).count()
    }

    /// Predecessor lists indexed by block.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for (i, b) in self.blocks.iter().enumerate() {
            for succ in b.term.successors() {
                preds[succ.index()].push(BlockId::from(i));
            }
        }
        preds
    }
}

/// A lowered program: the unit every other crate operates on.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Global variables; indexed by [`GlobalId`].
    pub globals: Vec<GlobalDecl>,
    /// Mutex names; indexed by [`MutexId`].
    pub mutexes: Vec<String>,
    /// Condition-variable names; indexed by [`CondId`].
    pub conds: Vec<String>,
    /// Bounded channels; indexed by [`ChanId`].
    pub chans: Vec<ChanDecl>,
    /// Functions; indexed by [`FuncId`].
    pub functions: Vec<Function>,
    /// The entry function (`main`).
    pub main: FuncId,
    /// Assert-site metadata; indexed by [`AssertId`].
    pub asserts: Vec<AssertInfo>,
}

impl Program {
    /// The function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Looks up a function by source name.
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::from)
    }

    /// Looks up a global by source name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(GlobalId::from)
    }

    /// Looks up a channel by source name.
    pub fn chan_by_name(&self, name: &str) -> Option<ChanId> {
        self.chans
            .iter()
            .position(|c| c.name == name)
            .map(ChanId::from)
    }

    /// Looks up a mutex by source name.
    pub fn mutex_by_name(&self, name: &str) -> Option<MutexId> {
        self.mutexes
            .iter()
            .position(|m| m == name)
            .map(MutexId::from)
    }

    /// Total static instruction count.
    pub fn instr_count(&self) -> usize {
        self.functions.iter().map(Function::instr_count).sum()
    }
}

/// Evaluates a binary operator on concrete 64-bit values.
///
/// Arithmetic wraps; division/remainder by zero yield 0 (the VM treats this
/// as a benign trap so racy index arithmetic cannot crash the simulator);
/// comparisons and logical operators return 0/1; shifts mask the amount to
/// 0..=63.
pub fn eval_binop(op: BinOp, a: i64, b: i64) -> i64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::Mul => a.wrapping_mul(b),
        BinOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        BinOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        BinOp::Eq => (a == b) as i64,
        BinOp::Ne => (a != b) as i64,
        BinOp::Lt => (a < b) as i64,
        BinOp::Le => (a <= b) as i64,
        BinOp::Gt => (a > b) as i64,
        BinOp::Ge => (a >= b) as i64,
        BinOp::And => (a != 0 && b != 0) as i64,
        BinOp::Or => (a != 0 || b != 0) as i64,
        BinOp::BitAnd => a & b,
        BinOp::BitOr => a | b,
        BinOp::BitXor => a ^ b,
        BinOp::Shl => a.wrapping_shl((b & 63) as u32),
        BinOp::Shr => a.wrapping_shr((b & 63) as u32),
    }
}

/// Evaluates a unary operator on a concrete value.
pub fn eval_unop(op: UnOp, a: i64) -> i64 {
    match op {
        UnOp::Neg => a.wrapping_neg(),
        UnOp::Not => (a == 0) as i64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_and_index() {
        assert_eq!(GlobalId(3).to_string(), "g3");
        assert_eq!(BlockId::from(7usize).index(), 7);
        assert_eq!(FuncId(0).to_string(), "fn0");
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::Branch {
            cond: Operand::Const(1),
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(t.is_branch());
        assert!(Terminator::Return(None).successors().is_empty());
    }

    #[test]
    fn instr_classification() {
        assert!(Instr::Lock(MutexId(0)).is_sync());
        assert!(Instr::Load {
            dst: LocalId(0),
            global: GlobalId(0),
            index: None
        }
        .is_memory_access());
        assert!(!Instr::Yield.is_sync());
    }

    #[test]
    fn eval_binop_semantics() {
        assert_eq!(eval_binop(BinOp::Add, i64::MAX, 1), i64::MIN); // wraps
        assert_eq!(eval_binop(BinOp::Div, 5, 0), 0); // benign trap
        assert_eq!(eval_binop(BinOp::Rem, 5, 0), 0);
        assert_eq!(eval_binop(BinOp::Lt, 2, 3), 1);
        assert_eq!(eval_binop(BinOp::And, 2, 0), 0);
        assert_eq!(eval_binop(BinOp::Or, 0, 7), 1);
        assert_eq!(eval_binop(BinOp::Shl, 1, 65), 2); // masked shift
        assert_eq!(eval_binop(BinOp::Shr, -8, 1), -4); // arithmetic shift
    }

    #[test]
    fn eval_unop_semantics() {
        assert_eq!(eval_unop(UnOp::Neg, i64::MIN), i64::MIN);
        assert_eq!(eval_unop(UnOp::Not, 0), 1);
        assert_eq!(eval_unop(UnOp::Not, 42), 0);
    }

    #[test]
    fn global_cells() {
        assert_eq!(
            GlobalDecl {
                name: "x".into(),
                len: None,
                init: 1,
                atomic: false
            }
            .cells(),
            1
        );
        assert_eq!(
            GlobalDecl {
                name: "a".into(),
                len: Some(9),
                init: 0,
                atomic: false
            }
            .cells(),
            9
        );
    }

    #[test]
    fn predecessors_computed() {
        let f = Function {
            name: "f".into(),
            param_count: 0,
            locals: vec![],
            blocks: vec![
                Block {
                    instrs: vec![],
                    term: Terminator::Branch {
                        cond: Operand::Const(1),
                        then_bb: BlockId(1),
                        else_bb: BlockId(2),
                    },
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Goto(BlockId(2)),
                },
                Block {
                    instrs: vec![],
                    term: Terminator::Return(None),
                },
            ],
            entry: BlockId(0),
        };
        let preds = f.predecessors();
        assert_eq!(preds[2], vec![BlockId(0), BlockId(1)]);
        assert_eq!(f.branch_count(), 1);
    }
}
