//! Semantic analysis over the AST: name resolution, duplicate detection,
//! light type checking, and structural rules (e.g. `fork` only as a
//! `thread`-typed `let` initializer, `main` must exist and take no
//! parameters).

use crate::ast::*;
use crate::error::{Error, Result, Span};
use std::collections::{HashMap, HashSet};

/// Checks a parsed [`Module`], returning `Ok(())` when it is well-formed.
///
/// # Errors
///
/// Returns the first [`Error::Sema`] found: duplicate names, unknown
/// identifiers, type mismatches, indexing a scalar, calling with the wrong
/// arity, `fork`/`join` misuse, or a missing/ill-formed `main`.
pub fn check(module: &Module) -> Result<()> {
    Checker::new(module)?.check_module()
}

/// What a name refers to at a use site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Binding {
    Local(Type),
    GlobalScalar,
    GlobalArray,
}

struct FuncSig {
    params: Vec<Type>,
    returns_value: bool,
}

struct Checker<'m> {
    module: &'m Module,
    globals: HashMap<&'m str, bool>, // name -> is_array
    mutexes: HashSet<&'m str>,
    conds: HashSet<&'m str>,
    chans: HashSet<&'m str>,
    atomics: HashSet<&'m str>,
    funcs: HashMap<&'m str, FuncSig>,
}

impl<'m> Checker<'m> {
    fn new(module: &'m Module) -> Result<Self> {
        let mut globals = HashMap::new();
        for g in &module.globals {
            if globals.insert(g.name.as_str(), g.len.is_some()).is_some() {
                return Err(Error::sema(
                    g.span,
                    format!("duplicate global `{}`", g.name),
                ));
            }
        }
        let mut mutexes = HashSet::new();
        for m in &module.mutexes {
            if !mutexes.insert(m.name.as_str()) {
                return Err(Error::sema(m.span, format!("duplicate mutex `{}`", m.name)));
            }
        }
        let mut conds = HashSet::new();
        for c in &module.conds {
            if !conds.insert(c.name.as_str()) {
                return Err(Error::sema(c.span, format!("duplicate cond `{}`", c.name)));
            }
        }
        let mut chans = HashSet::new();
        for ch in &module.chans {
            if !chans.insert(ch.name.as_str()) {
                return Err(Error::sema(
                    ch.span,
                    format!("duplicate chan `{}`", ch.name),
                ));
            }
        }
        let mut atomics = HashSet::new();
        for a in &module.atomics {
            if globals.contains_key(a.name.as_str()) {
                return Err(Error::sema(
                    a.span,
                    format!(
                        "atomic `{}` collides with a global of the same name",
                        a.name
                    ),
                ));
            }
            if !atomics.insert(a.name.as_str()) {
                return Err(Error::sema(
                    a.span,
                    format!("duplicate atomic `{}`", a.name),
                ));
            }
        }
        let mut funcs = HashMap::new();
        for f in &module.functions {
            let sig = FuncSig {
                params: f.params.iter().map(|(_, t)| *t).collect(),
                returns_value: body_returns_value(&f.body),
            };
            if funcs.insert(f.name.as_str(), sig).is_some() {
                return Err(Error::sema(
                    f.span,
                    format!("duplicate function `{}`", f.name),
                ));
            }
        }
        Ok(Checker {
            module,
            globals,
            mutexes,
            conds,
            chans,
            atomics,
            funcs,
        })
    }

    fn check_module(&self) -> Result<()> {
        let Some(main) = self.module.functions.iter().find(|f| f.name == "main") else {
            return Err(Error::sema(Span::unknown(), "missing `main` function"));
        };
        if !main.params.is_empty() {
            return Err(Error::sema(main.span, "`main` must take no parameters"));
        }
        for f in &self.module.functions {
            let mut scope = Scope::default();
            for (name, ty) in &f.params {
                if *ty == Type::Thread {
                    return Err(Error::sema(
                        f.span,
                        "parameters of type `thread` are not allowed",
                    ));
                }
                scope.declare(name.clone(), *ty, f.span)?;
            }
            self.check_body(&f.body, &mut scope)?;
        }
        Ok(())
    }

    fn check_body(&self, body: &[Stmt], scope: &mut Scope) -> Result<()> {
        scope.push();
        for stmt in body {
            self.check_stmt(stmt, scope)?;
        }
        scope.pop();
        Ok(())
    }

    fn check_stmt(&self, stmt: &Stmt, scope: &mut Scope) -> Result<()> {
        match stmt {
            Stmt::Let {
                name,
                ty,
                init,
                span,
            } => {
                match init {
                    LetInit::Fork { func, args } => {
                        if *ty != Type::Thread {
                            return Err(Error::sema(
                                *span,
                                "`fork` initializer requires a `thread`-typed let",
                            ));
                        }
                        self.check_call(func, args, scope, *span, false)?;
                    }
                    LetInit::SpawnActor { func, args } => {
                        if *ty != Type::Thread {
                            return Err(Error::sema(
                                *span,
                                "`spawn_actor` initializer requires a `thread`-typed let",
                            ));
                        }
                        self.check_call(func, args, scope, *span, false)?;
                    }
                    LetInit::Recv { chan } | LetInit::TryRecv { chan } => {
                        if *ty != Type::Int {
                            return Err(Error::sema(
                                *span,
                                "channel receives require an `int`-typed let",
                            ));
                        }
                        self.check_chan(chan, *span)?;
                    }
                    LetInit::TrySend { chan, value } => {
                        if *ty != Type::Int {
                            return Err(Error::sema(
                                *span,
                                "`try_send` requires an `int`-typed let",
                            ));
                        }
                        self.check_chan(chan, *span)?;
                        let vt = self.type_of(value, scope)?;
                        expect_type(Type::Int, vt, value.span())?;
                    }
                    LetInit::MailboxRecv => {
                        if *ty != Type::Int {
                            return Err(Error::sema(
                                *span,
                                "`mailbox_recv` requires an `int`-typed let",
                            ));
                        }
                    }
                    LetInit::AtomicLoad { atomic, .. } => {
                        if *ty != Type::Int {
                            return Err(Error::sema(
                                *span,
                                "atomic `load` requires an `int`-typed let",
                            ));
                        }
                        self.check_atomic(atomic, *span)?;
                    }
                    LetInit::FetchAdd { atomic, value, .. } => {
                        if *ty != Type::Int {
                            return Err(Error::sema(
                                *span,
                                "`fetch_add` requires an `int`-typed let",
                            ));
                        }
                        self.check_atomic(atomic, *span)?;
                        let vt = self.type_of(value, scope)?;
                        expect_type(Type::Int, vt, value.span())?;
                    }
                    LetInit::Cas {
                        atomic,
                        expected,
                        desired,
                        ..
                    } => {
                        if *ty != Type::Int {
                            return Err(Error::sema(*span, "`cas` requires an `int`-typed let"));
                        }
                        self.check_atomic(atomic, *span)?;
                        let et = self.type_of(expected, scope)?;
                        expect_type(Type::Int, et, expected.span())?;
                        let dt = self.type_of(desired, scope)?;
                        expect_type(Type::Int, dt, desired.span())?;
                    }
                    LetInit::Call { func, args } => {
                        if *ty == Type::Thread {
                            return Err(Error::sema(
                                *span,
                                "`thread` locals can only be initialized by `fork`",
                            ));
                        }
                        self.check_call(func, args, scope, *span, true)?;
                    }
                    LetInit::Expr(e) => {
                        if *ty == Type::Thread {
                            return Err(Error::sema(
                                *span,
                                "`thread` locals can only be initialized by `fork`",
                            ));
                        }
                        let et = self.type_of(e, scope)?;
                        expect_type(*ty, et, e.span())?;
                    }
                }
                scope.declare(name.clone(), *ty, *span)
            }
            Stmt::Assign { lhs, rhs, span } => {
                let rt = self.type_of(rhs, scope)?;
                match lhs {
                    LValue::Var(name) => match self.resolve(name, scope) {
                        Some(Binding::Local(Type::Thread)) => {
                            Err(Error::sema(*span, "`thread` locals cannot be reassigned"))
                        }
                        Some(Binding::Local(t)) => expect_type(t, rt, *span),
                        Some(Binding::GlobalScalar) => expect_type(Type::Int, rt, *span),
                        Some(Binding::GlobalArray) => Err(Error::sema(
                            *span,
                            format!("array global `{name}` must be indexed"),
                        )),
                        None if self.atomics.contains(name.as_str()) => Err(Error::sema(
                            *span,
                            format!("atomic `{name}` can only be written with `store`/`fetch_add`/`cas`"),
                        )),
                        None => Err(Error::sema(*span, format!("unknown variable `{name}`"))),
                    },
                    LValue::Index(name, index) => {
                        let it = self.type_of(index, scope)?;
                        expect_type(Type::Int, it, index.span())?;
                        expect_type(Type::Int, rt, *span)?;
                        match self.globals.get(name.as_str()) {
                            Some(true) => Ok(()),
                            Some(false) => Err(Error::sema(
                                *span,
                                format!("global `{name}` is a scalar and cannot be indexed"),
                            )),
                            None => {
                                Err(Error::sema(*span, format!("unknown array global `{name}`")))
                            }
                        }
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let ct = self.type_of(cond, scope)?;
                expect_type(Type::Bool, ct, cond.span())?;
                self.check_body(then_body, scope)?;
                self.check_body(else_body, scope)
            }
            Stmt::While { cond, body, .. } => {
                let ct = self.type_of(cond, scope)?;
                expect_type(Type::Bool, ct, cond.span())?;
                self.check_body(body, scope)
            }
            Stmt::Lock { mutex, span } | Stmt::Unlock { mutex, span } => {
                if self.mutexes.contains(mutex.as_str()) {
                    Ok(())
                } else {
                    Err(Error::sema(*span, format!("unknown mutex `{mutex}`")))
                }
            }
            Stmt::Join { handle, span } => {
                let ht = self.type_of(handle, scope)?;
                if ht == Type::Thread {
                    Ok(())
                } else {
                    Err(Error::sema(
                        *span,
                        "`join` requires a `thread`-typed handle",
                    ))
                }
            }
            Stmt::Wait { cond, mutex, span } => {
                if !self.conds.contains(cond.as_str()) {
                    return Err(Error::sema(*span, format!("unknown cond `{cond}`")));
                }
                if !self.mutexes.contains(mutex.as_str()) {
                    return Err(Error::sema(*span, format!("unknown mutex `{mutex}`")));
                }
                Ok(())
            }
            Stmt::Signal { cond, span } | Stmt::Broadcast { cond, span } => {
                if self.conds.contains(cond.as_str()) {
                    Ok(())
                } else {
                    Err(Error::sema(*span, format!("unknown cond `{cond}`")))
                }
            }
            Stmt::Send { chan, value, span } => {
                self.check_chan(chan, *span)?;
                let vt = self.type_of(value, scope)?;
                expect_type(Type::Int, vt, value.span())
            }
            Stmt::Close { chan, span } => self.check_chan(chan, *span),
            Stmt::MailboxSend {
                target,
                value,
                span,
            } => {
                let tt = self.type_of(target, scope)?;
                if tt != Type::Thread {
                    return Err(Error::sema(
                        *span,
                        "`mailbox_send` requires a `thread`-typed target handle",
                    ));
                }
                let vt = self.type_of(value, scope)?;
                expect_type(Type::Int, vt, value.span())
            }
            Stmt::AtomicStore {
                atomic,
                value,
                span,
                ..
            } => {
                self.check_atomic(atomic, *span)?;
                let vt = self.type_of(value, scope)?;
                expect_type(Type::Int, vt, value.span())
            }
            Stmt::Yield { .. } => Ok(()),
            Stmt::Assert { cond, .. } => {
                let ct = self.type_of(cond, scope)?;
                expect_type(Type::Bool, ct, cond.span())
            }
            Stmt::Return { value, .. } => {
                if let Some(v) = value {
                    let vt = self.type_of(v, scope)?;
                    if vt == Type::Thread {
                        return Err(Error::sema(v.span(), "cannot return a thread handle"));
                    }
                }
                Ok(())
            }
            Stmt::Call {
                dst,
                func,
                args,
                span,
            } => {
                self.check_call(func, args, scope, *span, dst.is_some())?;
                match dst {
                    None => Ok(()),
                    Some(LValue::Var(d)) => match self.resolve(d, scope) {
                        Some(Binding::Local(Type::Thread)) => Err(Error::sema(
                            *span,
                            "cannot assign a call result to a thread local",
                        )),
                        Some(Binding::Local(_)) | Some(Binding::GlobalScalar) => Ok(()),
                        Some(Binding::GlobalArray) => Err(Error::sema(
                            *span,
                            format!("array global `{d}` must be indexed"),
                        )),
                        None => Err(Error::sema(*span, format!("unknown variable `{d}`"))),
                    },
                    Some(LValue::Index(name, index)) => {
                        let it = self.type_of(index, scope)?;
                        expect_type(Type::Int, it, index.span())?;
                        match self.globals.get(name.as_str()) {
                            Some(true) => Ok(()),
                            Some(false) => Err(Error::sema(
                                *span,
                                format!("global `{name}` is a scalar and cannot be indexed"),
                            )),
                            None => {
                                Err(Error::sema(*span, format!("unknown array global `{name}`")))
                            }
                        }
                    }
                }
            }
        }
    }

    fn check_call(
        &self,
        func: &str,
        args: &[Expr],
        scope: &Scope,
        span: Span,
        needs_value: bool,
    ) -> Result<()> {
        let Some(sig) = self.funcs.get(func) else {
            return Err(Error::sema(span, format!("unknown function `{func}`")));
        };
        if sig.params.len() != args.len() {
            return Err(Error::sema(
                span,
                format!(
                    "`{func}` expects {} argument(s), got {}",
                    sig.params.len(),
                    args.len()
                ),
            ));
        }
        for (arg, want) in args.iter().zip(&sig.params) {
            let at = self.type_of(arg, scope)?;
            expect_type(*want, at, arg.span())?;
        }
        if needs_value && !sig.returns_value {
            return Err(Error::sema(
                span,
                format!("`{func}` does not return a value"),
            ));
        }
        Ok(())
    }

    fn check_chan(&self, chan: &str, span: Span) -> Result<()> {
        if self.chans.contains(chan) {
            Ok(())
        } else {
            Err(Error::sema(span, format!("unknown chan `{chan}`")))
        }
    }

    fn check_atomic(&self, atomic: &str, span: Span) -> Result<()> {
        if self.atomics.contains(atomic) {
            Ok(())
        } else if self.globals.contains_key(atomic) {
            Err(Error::sema(
                span,
                format!("`{atomic}` is a plain global, not an atomic"),
            ))
        } else {
            Err(Error::sema(span, format!("unknown atomic `{atomic}`")))
        }
    }

    fn resolve(&self, name: &str, scope: &Scope) -> Option<Binding> {
        if let Some(ty) = scope.lookup(name) {
            return Some(Binding::Local(ty));
        }
        match self.globals.get(name) {
            Some(true) => Some(Binding::GlobalArray),
            Some(false) => Some(Binding::GlobalScalar),
            None => None,
        }
    }

    fn type_of(&self, expr: &Expr, scope: &Scope) -> Result<Type> {
        match expr {
            Expr::Int(..) => Ok(Type::Int),
            Expr::Bool(..) => Ok(Type::Bool),
            Expr::Var(name, span) => match self.resolve(name, scope) {
                Some(Binding::Local(t)) => Ok(t),
                Some(Binding::GlobalScalar) => Ok(Type::Int),
                Some(Binding::GlobalArray) => Err(Error::sema(
                    *span,
                    format!("array global `{name}` must be indexed"),
                )),
                None if self.atomics.contains(name.as_str()) => Err(Error::sema(
                    *span,
                    format!("atomic `{name}` can only be read with `load`/`fetch_add`/`cas`"),
                )),
                None => Err(Error::sema(*span, format!("unknown variable `{name}`"))),
            },
            Expr::Index(name, index, span) => {
                let it = self.type_of(index, scope)?;
                expect_type(Type::Int, it, index.span())?;
                match self.globals.get(name.as_str()) {
                    Some(true) => Ok(Type::Int),
                    Some(false) => Err(Error::sema(
                        *span,
                        format!("global `{name}` is a scalar and cannot be indexed"),
                    )),
                    None => Err(Error::sema(*span, format!("unknown array global `{name}`"))),
                }
            }
            Expr::Unary(UnOp::Neg, inner, _) => {
                let t = self.type_of(inner, scope)?;
                expect_type(Type::Int, t, inner.span())?;
                Ok(Type::Int)
            }
            Expr::Unary(UnOp::Not, inner, _) => {
                let t = self.type_of(inner, scope)?;
                expect_type(Type::Bool, t, inner.span())?;
                Ok(Type::Bool)
            }
            Expr::Binary(op, lhs, rhs, _) => {
                let lt = self.type_of(lhs, scope)?;
                let rt = self.type_of(rhs, scope)?;
                if *op == BinOp::Eq || *op == BinOp::Ne {
                    // Equality works on int==int or bool==bool.
                    if lt != rt || lt == Type::Thread {
                        return Err(Error::sema(
                            expr.span(),
                            format!("`{op}` requires matching int/bool operands"),
                        ));
                    }
                    Ok(Type::Bool)
                } else if op.is_comparison() {
                    expect_type(Type::Int, lt, lhs.span())?;
                    expect_type(Type::Int, rt, rhs.span())?;
                    Ok(Type::Bool)
                } else if op.is_logical() {
                    expect_type(Type::Bool, lt, lhs.span())?;
                    expect_type(Type::Bool, rt, rhs.span())?;
                    Ok(Type::Bool)
                } else {
                    expect_type(Type::Int, lt, lhs.span())?;
                    expect_type(Type::Int, rt, rhs.span())?;
                    Ok(Type::Int)
                }
            }
        }
    }
}

fn expect_type(want: Type, got: Type, span: Span) -> Result<()> {
    if want == got {
        Ok(())
    } else {
        Err(Error::sema(
            span,
            format!("type mismatch: expected {want}, found {got}"),
        ))
    }
}

/// `true` if any statement in the body (recursively) returns a value.
fn body_returns_value(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::Return { value, .. } => value.is_some(),
        Stmt::If {
            then_body,
            else_body,
            ..
        } => body_returns_value(then_body) || body_returns_value(else_body),
        Stmt::While { body, .. } => body_returns_value(body),
        _ => false,
    })
}

/// A lexical scope stack for locals.
#[derive(Default)]
struct Scope {
    frames: Vec<Vec<(String, Type)>>,
}

impl Scope {
    fn push(&mut self) {
        self.frames.push(Vec::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }

    fn declare(&mut self, name: String, ty: Type, span: Span) -> Result<()> {
        if self.frames.is_empty() {
            self.push();
        }
        let frame = self.frames.last_mut().expect("frame exists");
        if frame.iter().any(|(n, _)| *n == name) {
            return Err(Error::sema(
                span,
                format!("duplicate local `{name}` in this scope"),
            ));
        }
        frame.push((name, ty));
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<Type> {
        for frame in self.frames.iter().rev() {
            if let Some((_, ty)) = frame.iter().rev().find(|(n, _)| n == name) {
                return Some(*ty);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    fn check_src(src: &str) -> Result<()> {
        check(&parse_module(src).unwrap())
    }

    #[test]
    fn accepts_well_formed_program() {
        check_src(
            "global int x = 0; mutex m; cond c;
             fn w(i: int) { lock(m); x = x + i; unlock(m); }
             fn main() { let t: thread = fork w(1); join t; assert(x == 1); }",
        )
        .unwrap();
    }

    #[test]
    fn rejects_missing_main() {
        let err = check_src("fn f() {}").unwrap_err();
        assert!(err.to_string().contains("missing `main`"));
    }

    #[test]
    fn rejects_main_with_params() {
        assert!(check_src("fn main(x: int) {}").is_err());
    }

    #[test]
    fn rejects_duplicate_declarations() {
        assert!(check_src("global int x; global int x; fn main() {}").is_err());
        assert!(check_src("mutex m; mutex m; fn main() {}").is_err());
        assert!(check_src("fn f() {} fn f() {} fn main() {}").is_err());
    }

    #[test]
    fn rejects_unknown_names() {
        assert!(check_src("fn main() { x = 1; }").is_err());
        assert!(check_src("fn main() { lock(m); }").is_err());
        assert!(check_src("fn main() { f(); }").is_err());
        assert!(check_src("mutex m; fn main() { wait(c, m); }").is_err());
    }

    #[test]
    fn rejects_type_errors() {
        assert!(check_src("fn main() { let b: bool = 3; }").is_err());
        assert!(check_src("fn main() { if (1) { } }").is_err());
        assert!(check_src("fn main() { assert(1); }").is_err());
        assert!(check_src("fn main() { let x: int = 1 && 2; }").is_err());
        assert!(check_src("fn main() { let b: bool = true < false; }").is_err());
    }

    #[test]
    fn thread_locals_are_linear() {
        assert!(check_src("fn w() {} fn main() { let t: thread = fork w(); t = t; }").is_err());
        assert!(check_src("fn main() { let t: thread = 3; }").is_err());
        assert!(check_src("fn main() { join 3; }").is_err());
    }

    #[test]
    fn fork_outside_thread_let_rejected() {
        assert!(check_src("fn w() {} fn main() { let t: int = fork w(); }").is_err());
    }

    #[test]
    fn array_rules() {
        assert!(check_src("global int a[4]; fn main() { a = 1; }").is_err());
        assert!(check_src("global int x; fn main() { x[0] = 1; }").is_err());
        check_src("global int a[4]; fn main() { a[1] = 1; let v: int = a[2]; }").unwrap();
    }

    #[test]
    fn call_arity_and_value() {
        assert!(check_src("fn f(a: int) {} fn main() { f(); }").is_err());
        assert!(check_src("fn f() {} fn main() { let x: int = f(); }").is_err());
        check_src("fn f() { return 3; } fn main() { let x: int = f(); }").unwrap();
    }

    #[test]
    fn scoping_blocks() {
        // A local declared in the then-branch is invisible afterwards.
        assert!(check_src("fn main() { if (true) { let x: int = 1; } x = 2; }").is_err());
        // Shadowing in an inner scope is allowed.
        check_src("fn main() { let x: int = 1; if (true) { let x: int = 2; } }").unwrap();
        // Same scope duplicate is not.
        assert!(check_src("fn main() { let x: int = 1; let x: int = 2; }").is_err());
    }

    #[test]
    fn eq_requires_matching_types() {
        assert!(check_src("fn main() { let b: bool = true == 1; }").is_err());
        check_src("fn main() { let b: bool = true == false; }").unwrap();
    }
}
