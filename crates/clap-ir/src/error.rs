//! Error types shared by the front end (lexer, parser, semantic checker).

use std::fmt;

/// A `Result` specialized to front-end [`Error`]s.
pub type Result<T> = std::result::Result<T, Error>;

/// A position in DSL source text, 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// 1-based line number; 0 means "unknown".
    pub line: u32,
    /// 1-based column number; 0 means "unknown".
    pub col: u32,
}

impl Span {
    /// Creates a span at the given line and column.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }

    /// The span used for synthesized nodes with no source position.
    pub fn unknown() -> Self {
        Span::default()
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "<unknown>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// An error produced while turning DSL source into a [`crate::Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A lexical or syntactic error.
    Parse {
        /// Where the problem was detected.
        span: Span,
        /// Human-readable description.
        message: String,
    },
    /// A semantic error (name resolution, typing, structural rules).
    Sema {
        /// Where the problem was detected.
        span: Span,
        /// Human-readable description.
        message: String,
    },
}

impl Error {
    pub(crate) fn parse(span: Span, message: impl Into<String>) -> Self {
        Error::Parse {
            span,
            message: message.into(),
        }
    }

    pub(crate) fn sema(span: Span, message: impl Into<String>) -> Self {
        Error::Sema {
            span,
            message: message.into(),
        }
    }

    /// The source location the error points at.
    pub fn span(&self) -> Span {
        match self {
            Error::Parse { span, .. } | Error::Sema { span, .. } => *span,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { span, message } => write!(f, "parse error at {span}: {message}"),
            Error::Sema { span, message } => write!(f, "semantic error at {span}: {message}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_display_known_and_unknown() {
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
        assert_eq!(Span::unknown().to_string(), "<unknown>");
    }

    #[test]
    fn error_display_includes_location() {
        let err = Error::parse(Span::new(2, 5), "unexpected token");
        assert_eq!(err.to_string(), "parse error at 2:5: unexpected token");
        let err = Error::sema(Span::new(1, 1), "unknown variable `q`");
        assert!(err.to_string().contains("semantic error"));
        assert_eq!(err.span(), Span::new(1, 1));
    }
}
