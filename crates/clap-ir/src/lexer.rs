//! A hand-rolled lexer for the DSL.
//!
//! Supports `//` line comments and `/* */` block comments, decimal and
//! hexadecimal (`0x`) integer literals, string literals with `\"`/`\\`/`\n`
//! escapes, and the operator set in [`crate::token::TokenKind`].

use crate::error::{Error, Result, Span};
use crate::token::{Token, TokenKind};

/// Lexes the full source into tokens, ending with a [`TokenKind::Eof`] token.
///
/// # Errors
///
/// Returns [`Error::Parse`] on unterminated comments/strings, malformed
/// numbers, or characters outside the language's alphabet.
pub fn lex(source: &str) -> Result<Vec<Token>> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    source: std::marker::PhantomData<&'a str>,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            source: std::marker::PhantomData,
        }
    }

    fn span(&self) -> Span {
        Span::new(self.line, self.col)
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Result<Vec<Token>> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let span = self.span();
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span,
                });
                return Ok(tokens);
            };
            let kind = if c.is_ascii_digit() {
                self.number(span)?
            } else if c.is_ascii_alphabetic() || c == '_' {
                self.ident()
            } else if c == '"' {
                self.string(span)?
            } else {
                self.operator(span)?
            };
            tokens.push(Token { kind, span });
        }
    }

    fn skip_trivia(&mut self) -> Result<()> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.bump() {
                        if c == '\n' {
                            break;
                        }
                    }
                }
                Some('/') if self.peek2() == Some('*') => {
                    let start = self.span();
                    self.bump();
                    self.bump();
                    let mut closed = false;
                    while let Some(c) = self.bump() {
                        if c == '*' && self.peek() == Some('/') {
                            self.bump();
                            closed = true;
                            break;
                        }
                    }
                    if !closed {
                        return Err(Error::parse(start, "unterminated block comment"));
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn number(&mut self, span: Span) -> Result<TokenKind> {
        let mut text = String::new();
        if self.peek() == Some('0') && matches!(self.peek2(), Some('x') | Some('X')) {
            self.bump();
            self.bump();
            while let Some(c) = self.peek() {
                if c.is_ascii_hexdigit() || c == '_' {
                    text.push(c);
                    self.bump();
                } else {
                    break;
                }
            }
            let digits: String = text.chars().filter(|&c| c != '_').collect();
            if digits.is_empty() {
                return Err(Error::parse(span, "hexadecimal literal with no digits"));
            }
            // Accept the full u64 range so bit-pattern constants work; the
            // value wraps into i64 like a C cast would.
            let value = u64::from_str_radix(&digits, 16)
                .map_err(|_| Error::parse(span, "hexadecimal literal out of range"))?;
            return Ok(TokenKind::Int(value as i64));
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        let digits: String = text.chars().filter(|&c| c != '_').collect();
        let value: i64 = digits
            .parse()
            .map_err(|_| Error::parse(span, format!("integer literal `{digits}` out of range")))?;
        Ok(TokenKind::Int(value))
    }

    fn ident(&mut self) -> TokenKind {
        let mut text = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::keyword(&text).unwrap_or(TokenKind::Ident(text))
    }

    fn string(&mut self, span: Span) -> Result<TokenKind> {
        self.bump(); // opening quote
        let mut text = String::new();
        loop {
            match self.bump() {
                None => return Err(Error::parse(span, "unterminated string literal")),
                Some('"') => return Ok(TokenKind::Str(text)),
                Some('\\') => match self.bump() {
                    Some('n') => text.push('\n'),
                    Some('t') => text.push('\t'),
                    Some('"') => text.push('"'),
                    Some('\\') => text.push('\\'),
                    other => {
                        return Err(Error::parse(
                            span,
                            format!("unknown escape `\\{}`", other.unwrap_or(' ')),
                        ))
                    }
                },
                Some(c) => text.push(c),
            }
        }
    }

    fn operator(&mut self, span: Span) -> Result<TokenKind> {
        let c = self.bump().expect("operator called at end of input");
        let two = |lexer: &mut Self, next: char, yes: TokenKind, no: TokenKind| {
            if lexer.peek() == Some(next) {
                lexer.bump();
                yes
            } else {
                no
            }
        };
        Ok(match c {
            '(' => TokenKind::LParen,
            ')' => TokenKind::RParen,
            '{' => TokenKind::LBrace,
            '}' => TokenKind::RBrace,
            '[' => TokenKind::LBracket,
            ']' => TokenKind::RBracket,
            ';' => TokenKind::Semi,
            ',' => TokenKind::Comma,
            ':' => TokenKind::Colon,
            '+' => TokenKind::Plus,
            '-' => TokenKind::Minus,
            '*' => TokenKind::Star,
            '/' => TokenKind::Slash,
            '%' => TokenKind::Percent,
            '^' => TokenKind::Caret,
            '=' => two(self, '=', TokenKind::EqEq, TokenKind::Assign),
            '!' => two(self, '=', TokenKind::NotEq, TokenKind::Not),
            '<' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Le
                } else if self.peek() == Some('<') {
                    self.bump();
                    TokenKind::Shl
                } else {
                    TokenKind::Lt
                }
            }
            '>' => {
                if self.peek() == Some('=') {
                    self.bump();
                    TokenKind::Ge
                } else if self.peek() == Some('>') {
                    self.bump();
                    TokenKind::Shr
                } else {
                    TokenKind::Gt
                }
            }
            '&' => two(self, '&', TokenKind::AndAnd, TokenKind::Amp),
            '|' => two(self, '|', TokenKind::OrOr, TokenKind::Pipe),
            other => {
                return Err(Error::parse(
                    span,
                    format!("unexpected character `{other}`"),
                ))
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("global int x = 0;"),
            vec![
                TokenKind::Global,
                TokenKind::TyInt,
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(0),
                TokenKind::Semi,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_operators_greedily() {
        assert_eq!(
            kinds("<= << < == = != ! && & || |"),
            vec![
                TokenKind::Le,
                TokenKind::Shl,
                TokenKind::Lt,
                TokenKind::EqEq,
                TokenKind::Assign,
                TokenKind::NotEq,
                TokenKind::Not,
                TokenKind::AndAnd,
                TokenKind::Amp,
                TokenKind::OrOr,
                TokenKind::Pipe,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_hex_and_underscored_numbers() {
        assert_eq!(
            kinds("0xff 1_000"),
            vec![TokenKind::Int(255), TokenKind::Int(1000), TokenKind::Eof]
        );
    }

    #[test]
    fn hex_wraps_like_a_cast() {
        assert_eq!(
            kinds("0xffffffffffffffff"),
            vec![TokenKind::Int(-1), TokenKind::Eof]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(
            kinds("1 // comment\n/* block\nspanning */ 2"),
            vec![TokenKind::Int(1), TokenKind::Int(2), TokenKind::Eof]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\nb\"c""#),
            vec![TokenKind::Str("a\nb\"c".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn error_on_unterminated_string() {
        assert!(lex("\"oops").is_err());
    }

    #[test]
    fn error_on_unterminated_block_comment() {
        assert!(lex("/* never closed").is_err());
    }

    #[test]
    fn error_on_unknown_character() {
        let err = lex("@").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn tracks_line_and_column() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].span, Span::new(1, 1));
        assert_eq!(tokens[1].span, Span::new(2, 3));
    }
}
