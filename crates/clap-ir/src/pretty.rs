//! Human-readable dumps of lowered programs, for debugging and goldens.

use crate::program::*;
use std::fmt::Write as _;

/// Renders a whole program as text, one function at a time.
pub fn program_to_string(program: &Program) -> String {
    let mut out = String::new();
    for g in &program.globals {
        match g.len {
            Some(n) => {
                let _ = writeln!(out, "global {}[{n}]", g.name);
            }
            None if g.atomic => {
                let _ = writeln!(out, "atomic {} = {}", g.name, g.init);
            }
            None => {
                let _ = writeln!(out, "global {} = {}", g.name, g.init);
            }
        }
    }
    for m in &program.mutexes {
        let _ = writeln!(out, "mutex {m}");
    }
    for c in &program.conds {
        let _ = writeln!(out, "cond {c}");
    }
    for ch in &program.chans {
        let _ = writeln!(out, "chan {}({})", ch.name, ch.cap);
    }
    for (i, f) in program.functions.iter().enumerate() {
        let _ = writeln!(out);
        let _ = write!(out, "{}", function_to_string(program, FuncId::from(i), f));
    }
    out
}

/// Renders one function's CFG as text.
pub fn function_to_string(program: &Program, id: FuncId, f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "fn {} ({}) [{id}]", f.name, f.param_count);
    for (bi, block) in f.blocks.iter().enumerate() {
        let _ = writeln!(out, "  bb{bi}:");
        for instr in &block.instrs {
            let _ = writeln!(out, "    {}", instr_to_string(program, instr));
        }
        let _ = writeln!(out, "    {}", term_to_string(&block.term));
    }
    out
}

/// Renders one instruction.
pub fn instr_to_string(program: &Program, instr: &Instr) -> String {
    match instr {
        Instr::Assign { dst, rv } => format!("{dst} = {rv}"),
        Instr::Load {
            dst,
            global,
            index: None,
        } => {
            format!("{dst} = load {}", program.globals[global.index()].name)
        }
        Instr::Load {
            dst,
            global,
            index: Some(i),
        } => {
            format!("{dst} = load {}[{i}]", program.globals[global.index()].name)
        }
        Instr::Store {
            global,
            index: None,
            src,
        } => {
            format!("store {} = {src}", program.globals[global.index()].name)
        }
        Instr::Store {
            global,
            index: Some(i),
            src,
        } => {
            format!(
                "store {}[{i}] = {src}",
                program.globals[global.index()].name
            )
        }
        Instr::Lock(m) => format!("lock {}", program.mutexes[m.index()]),
        Instr::Unlock(m) => format!("unlock {}", program.mutexes[m.index()]),
        Instr::Fork { dst, func, args } => {
            format!(
                "{dst} = fork {}({})",
                program.functions[func.index()].name,
                operands(args)
            )
        }
        Instr::Join { handle } => format!("join {handle}"),
        Instr::Wait { cond, mutex } => {
            format!(
                "wait {} {}",
                program.conds[cond.index()],
                program.mutexes[mutex.index()]
            )
        }
        Instr::Signal(c) => format!("signal {}", program.conds[c.index()]),
        Instr::Broadcast(c) => format!("broadcast {}", program.conds[c.index()]),
        Instr::Send { chan, src } => {
            format!("send {} {src}", program.chans[chan.index()].name)
        }
        Instr::Recv { dst, chan } => {
            format!("{dst} = recv {}", program.chans[chan.index()].name)
        }
        Instr::TrySend { dst, chan, src } => {
            format!(
                "{dst} = try_send {} {src}",
                program.chans[chan.index()].name
            )
        }
        Instr::TryRecv { dst, chan } => {
            format!("{dst} = try_recv {}", program.chans[chan.index()].name)
        }
        Instr::ChanClose(c) => format!("close {}", program.chans[c.index()].name),
        Instr::SpawnActor { dst, func, args } => {
            format!(
                "{dst} = spawn_actor {}({})",
                program.functions[func.index()].name,
                operands(args)
            )
        }
        Instr::MailboxSend { target, src } => format!("mailbox_send {target} {src}"),
        Instr::MailboxRecv { dst } => format!("{dst} = mailbox_recv"),
        Instr::AtomicLoad { dst, global, ord } => {
            format!(
                "{dst} = load.{ord} {}",
                program.globals[global.index()].name
            )
        }
        Instr::AtomicStore { global, src, ord } => {
            format!(
                "store.{ord} {} = {src}",
                program.globals[global.index()].name
            )
        }
        Instr::AtomicRmw {
            dst,
            global,
            src,
            ord,
        } => {
            format!(
                "{dst} = fetch_add.{ord} {} {src}",
                program.globals[global.index()].name
            )
        }
        Instr::AtomicCas {
            dst,
            global,
            expected,
            desired,
            ord,
        } => {
            format!(
                "{dst} = cas.{ord} {} {expected} {desired}",
                program.globals[global.index()].name
            )
        }
        Instr::Yield => "yield".to_owned(),
        Instr::Assert { cond, id } => {
            format!("assert {cond} ({:?})", program.asserts[id.index()].message)
        }
        Instr::Call {
            dst: Some(d),
            func,
            args,
        } => {
            format!(
                "{d} = call {}({})",
                program.functions[func.index()].name,
                operands(args)
            )
        }
        Instr::Call {
            dst: None,
            func,
            args,
        } => {
            format!(
                "call {}({})",
                program.functions[func.index()].name,
                operands(args)
            )
        }
    }
}

fn term_to_string(term: &Terminator) -> String {
    match term {
        Terminator::Goto(b) => format!("goto {b}"),
        Terminator::Branch {
            cond,
            then_bb,
            else_bb,
        } => {
            format!("br {cond} ? {then_bb} : {else_bb}")
        }
        Terminator::Return(Some(v)) => format!("return {v}"),
        Terminator::Return(None) => "return".to_owned(),
    }
}

fn operands(ops: &[Operand]) -> String {
    ops.iter()
        .map(|o| o.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn dump_contains_structure() {
        let p = parse(
            r#"global int x = 1; mutex m;
               fn main() { lock(m); x = x + 1; unlock(m); assert(x == 2, "msg"); }"#,
        )
        .unwrap();
        let text = program_to_string(&p);
        assert!(text.contains("global x = 1"));
        assert!(text.contains("mutex m"));
        assert!(text.contains("lock m"));
        assert!(text.contains("load x"));
        assert!(text.contains("store x"));
        assert!(text.contains("assert"));
        assert!(text.contains("return"));
    }

    #[test]
    fn dump_branches_and_calls() {
        let p = parse(
            "global int a[2];
             fn f(v: int) { return v; }
             fn main() { let x: int = f(3); if (x > 0) { a[0] = x; } }",
        )
        .unwrap();
        let text = program_to_string(&p);
        assert!(text.contains("call f(3)"));
        assert!(text.contains("br "));
        assert!(text.contains("store a["));
    }
}
