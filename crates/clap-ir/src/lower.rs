//! Lowering from the AST to the CFG-level [`Program`].
//!
//! Expression trees are flattened into sequences of [`Instr::Assign`] /
//! [`Instr::Load`] over fresh temporaries; every syntactic read of a global
//! becomes exactly one `Load` (one *shared access point* when the global is
//! shared). Structured control flow becomes explicit blocks:
//!
//! * `if` — condition block branches to then/else blocks that rejoin;
//! * `while` — a header block re-evaluates the condition each iteration;
//!   the body's back edge returns to the header.

use crate::ast::{self, Expr, LValue, LetInit, Module, Stmt};
use crate::program::*;
use std::collections::HashMap;

/// Lowers a checked [`Module`] to a [`Program`].
///
/// # Panics
///
/// Panics on modules that did not pass [`crate::sema::check`]; run the
/// checker first (as [`crate::parse`] does).
pub fn lower(module: &Module) -> Program {
    // Plain globals first, then atomic cells: atomics share the global
    // address space (one cell each) but keep their `atomic` flag so the VM
    // and the constraint encoder can treat them under C11 semantics.
    let globals: Vec<GlobalDecl> = module
        .globals
        .iter()
        .map(|g| GlobalDecl {
            name: g.name.clone(),
            len: g.len,
            init: g.init,
            atomic: false,
        })
        .chain(module.atomics.iter().map(|a| GlobalDecl {
            name: a.name.clone(),
            len: None,
            init: a.init,
            atomic: true,
        }))
        .collect();
    let global_ids: HashMap<&str, GlobalId> = module
        .globals
        .iter()
        .enumerate()
        .map(|(i, g)| (g.name.as_str(), GlobalId::from(i)))
        .collect();
    let atomic_ids: HashMap<&str, GlobalId> = module
        .atomics
        .iter()
        .enumerate()
        .map(|(i, a)| (a.name.as_str(), GlobalId::from(module.globals.len() + i)))
        .collect();
    let mutex_ids: HashMap<&str, MutexId> = module
        .mutexes
        .iter()
        .enumerate()
        .map(|(i, m)| (m.name.as_str(), MutexId::from(i)))
        .collect();
    let cond_ids: HashMap<&str, CondId> = module
        .conds
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.as_str(), CondId::from(i)))
        .collect();
    let chan_ids: HashMap<&str, ChanId> = module
        .chans
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.as_str(), ChanId::from(i)))
        .collect();
    let func_ids: HashMap<&str, FuncId> = module
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), FuncId::from(i)))
        .collect();

    let mut asserts = Vec::new();
    let functions = module
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| {
            FuncLower {
                global_ids: &global_ids,
                atomic_ids: &atomic_ids,
                mutex_ids: &mutex_ids,
                cond_ids: &cond_ids,
                chan_ids: &chan_ids,
                func_ids: &func_ids,
                func: FuncId::from(i),
                locals: Vec::new(),
                scopes: Vec::new(),
                blocks: Vec::new(),
                cur: BlockId(0),
                asserts: &mut asserts,
            }
            .lower_function(f)
        })
        .collect();

    let main = *func_ids.get("main").expect("sema guarantees `main` exists");
    Program {
        globals,
        mutexes: module.mutexes.iter().map(|m| m.name.clone()).collect(),
        conds: module.conds.iter().map(|c| c.name.clone()).collect(),
        chans: module
            .chans
            .iter()
            .map(|c| ChanDecl {
                name: c.name.clone(),
                cap: c.cap,
            })
            .collect(),
        functions,
        main,
        asserts,
    }
}

struct FuncLower<'m> {
    global_ids: &'m HashMap<&'m str, GlobalId>,
    atomic_ids: &'m HashMap<&'m str, GlobalId>,
    mutex_ids: &'m HashMap<&'m str, MutexId>,
    cond_ids: &'m HashMap<&'m str, CondId>,
    chan_ids: &'m HashMap<&'m str, ChanId>,
    func_ids: &'m HashMap<&'m str, FuncId>,
    func: FuncId,
    locals: Vec<String>,
    scopes: Vec<Vec<(String, LocalId)>>,
    blocks: Vec<Block>,
    cur: BlockId,
    asserts: &'m mut Vec<AssertInfo>,
}

impl<'m> FuncLower<'m> {
    fn lower_function(mut self, f: &ast::FunctionAst) -> Function {
        self.scopes.push(Vec::new());
        for (name, _) in &f.params {
            let id = self.fresh_local(name.clone());
            self.scopes.last_mut().unwrap().push((name.clone(), id));
        }
        let entry = self.new_block();
        self.cur = entry;
        self.lower_body(&f.body);
        self.terminate(Terminator::Return(None));
        Function {
            name: f.name.clone(),
            param_count: f.params.len(),
            locals: self.locals,
            blocks: self.blocks,
            entry,
        }
    }

    fn fresh_local(&mut self, name: String) -> LocalId {
        let id = LocalId::from(self.locals.len());
        self.locals.push(name);
        id
    }

    fn fresh_temp(&mut self) -> LocalId {
        let n = self.locals.len();
        self.fresh_local(format!("%t{n}"))
    }

    fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            instrs: Vec::new(),
            term: Terminator::Return(None),
        });
        BlockId::from(self.blocks.len() - 1)
    }

    fn emit(&mut self, instr: Instr) {
        self.blocks[self.cur.index()].instrs.push(instr);
    }

    fn terminate(&mut self, term: Terminator) {
        self.blocks[self.cur.index()].term = term;
    }

    fn lookup_local(&self, name: &str) -> Option<LocalId> {
        for scope in self.scopes.iter().rev() {
            if let Some((_, id)) = scope.iter().rev().find(|(n, _)| n == name) {
                return Some(*id);
            }
        }
        None
    }

    fn lower_body(&mut self, body: &[Stmt]) {
        self.scopes.push(Vec::new());
        for stmt in body {
            self.lower_stmt(stmt);
        }
        self.scopes.pop();
    }

    /// Lowers an expression; the result lands in the returned operand.
    fn lower_expr(&mut self, expr: &Expr) -> Operand {
        match expr {
            Expr::Int(v, _) => Operand::Const(*v),
            Expr::Bool(b, _) => Operand::Const(*b as i64),
            Expr::Var(name, _) => {
                if let Some(id) = self.lookup_local(name) {
                    Operand::Local(id)
                } else {
                    let global = self.global_ids[name.as_str()];
                    let dst = self.fresh_temp();
                    self.emit(Instr::Load {
                        dst,
                        global,
                        index: None,
                    });
                    Operand::Local(dst)
                }
            }
            Expr::Index(name, index, _) => {
                let idx = self.lower_expr(index);
                let global = self.global_ids[name.as_str()];
                let dst = self.fresh_temp();
                self.emit(Instr::Load {
                    dst,
                    global,
                    index: Some(idx),
                });
                Operand::Local(dst)
            }
            Expr::Unary(op, inner, _) => {
                let v = self.lower_expr(inner);
                let dst = self.fresh_temp();
                self.emit(Instr::Assign {
                    dst,
                    rv: Rvalue::Unary(*op, v),
                });
                Operand::Local(dst)
            }
            Expr::Binary(op, lhs, rhs, _) => {
                let a = self.lower_expr(lhs);
                let b = self.lower_expr(rhs);
                let dst = self.fresh_temp();
                self.emit(Instr::Assign {
                    dst,
                    rv: Rvalue::Binary(*op, a, b),
                });
                Operand::Local(dst)
            }
        }
    }

    fn lower_args(&mut self, args: &[Expr]) -> Vec<Operand> {
        args.iter().map(|a| self.lower_expr(a)).collect()
    }

    fn lower_stmt(&mut self, stmt: &Stmt) {
        match stmt {
            Stmt::Let { name, init, .. } => {
                let id = self.fresh_local(name.clone());
                match init {
                    LetInit::Expr(e) => {
                        let v = self.lower_expr(e);
                        self.emit(Instr::Assign {
                            dst: id,
                            rv: Rvalue::Use(v),
                        });
                    }
                    LetInit::Fork { func, args } => {
                        let args = self.lower_args(args);
                        let callee = self.func_ids[func.as_str()];
                        self.emit(Instr::Fork {
                            dst: id,
                            func: callee,
                            args,
                        });
                    }
                    LetInit::Call { func, args } => {
                        let args = self.lower_args(args);
                        let callee = self.func_ids[func.as_str()];
                        self.emit(Instr::Call {
                            dst: Some(id),
                            func: callee,
                            args,
                        });
                    }
                    LetInit::SpawnActor { func, args } => {
                        let args = self.lower_args(args);
                        let callee = self.func_ids[func.as_str()];
                        self.emit(Instr::SpawnActor {
                            dst: id,
                            func: callee,
                            args,
                        });
                    }
                    LetInit::Recv { chan } => {
                        let ch = self.chan_ids[chan.as_str()];
                        self.emit(Instr::Recv { dst: id, chan: ch });
                    }
                    LetInit::TryRecv { chan } => {
                        let ch = self.chan_ids[chan.as_str()];
                        self.emit(Instr::TryRecv { dst: id, chan: ch });
                    }
                    LetInit::TrySend { chan, value } => {
                        let src = self.lower_expr(value);
                        let ch = self.chan_ids[chan.as_str()];
                        self.emit(Instr::TrySend {
                            dst: id,
                            chan: ch,
                            src,
                        });
                    }
                    LetInit::MailboxRecv => {
                        self.emit(Instr::MailboxRecv { dst: id });
                    }
                    LetInit::AtomicLoad { atomic, ord } => {
                        let global = self.atomic_ids[atomic.as_str()];
                        self.emit(Instr::AtomicLoad {
                            dst: id,
                            global,
                            ord: *ord,
                        });
                    }
                    LetInit::FetchAdd { atomic, value, ord } => {
                        let src = self.lower_expr(value);
                        let global = self.atomic_ids[atomic.as_str()];
                        self.emit(Instr::AtomicRmw {
                            dst: id,
                            global,
                            src,
                            ord: *ord,
                        });
                    }
                    LetInit::Cas {
                        atomic,
                        expected,
                        desired,
                        ord,
                    } => {
                        let e = self.lower_expr(expected);
                        let d = self.lower_expr(desired);
                        let global = self.atomic_ids[atomic.as_str()];
                        self.emit(Instr::AtomicCas {
                            dst: id,
                            global,
                            expected: e,
                            desired: d,
                            ord: *ord,
                        });
                    }
                }
                self.scopes.last_mut().unwrap().push((name.clone(), id));
            }
            Stmt::Assign { lhs, rhs, .. } => {
                let v = self.lower_expr(rhs);
                match lhs {
                    LValue::Var(name) => {
                        if let Some(id) = self.lookup_local(name) {
                            self.emit(Instr::Assign {
                                dst: id,
                                rv: Rvalue::Use(v),
                            });
                        } else {
                            let global = self.global_ids[name.as_str()];
                            self.emit(Instr::Store {
                                global,
                                index: None,
                                src: v,
                            });
                        }
                    }
                    LValue::Index(name, index) => {
                        let idx = self.lower_expr(index);
                        let global = self.global_ids[name.as_str()];
                        self.emit(Instr::Store {
                            global,
                            index: Some(idx),
                            src: v,
                        });
                    }
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                ..
            } => {
                let c = self.lower_expr(cond);
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let join_bb = self.new_block();
                self.terminate(Terminator::Branch {
                    cond: c,
                    then_bb,
                    else_bb,
                });
                self.cur = then_bb;
                self.lower_body(then_body);
                self.terminate(Terminator::Goto(join_bb));
                self.cur = else_bb;
                self.lower_body(else_body);
                self.terminate(Terminator::Goto(join_bb));
                self.cur = join_bb;
            }
            Stmt::While { cond, body, .. } => {
                let header = self.new_block();
                self.terminate(Terminator::Goto(header));
                self.cur = header;
                let c = self.lower_expr(cond);
                let body_bb = self.new_block();
                let exit_bb = self.new_block();
                self.terminate(Terminator::Branch {
                    cond: c,
                    then_bb: body_bb,
                    else_bb: exit_bb,
                });
                self.cur = body_bb;
                self.lower_body(body);
                self.terminate(Terminator::Goto(header));
                self.cur = exit_bb;
            }
            Stmt::Lock { mutex, .. } => {
                let m = self.mutex_ids[mutex.as_str()];
                self.emit(Instr::Lock(m));
            }
            Stmt::Unlock { mutex, .. } => {
                let m = self.mutex_ids[mutex.as_str()];
                self.emit(Instr::Unlock(m));
            }
            Stmt::Join { handle, .. } => {
                let h = self.lower_expr(handle);
                self.emit(Instr::Join { handle: h });
            }
            Stmt::Wait { cond, mutex, .. } => {
                let c = self.cond_ids[cond.as_str()];
                let m = self.mutex_ids[mutex.as_str()];
                self.emit(Instr::Wait { cond: c, mutex: m });
            }
            Stmt::Signal { cond, .. } => {
                let c = self.cond_ids[cond.as_str()];
                self.emit(Instr::Signal(c));
            }
            Stmt::Broadcast { cond, .. } => {
                let c = self.cond_ids[cond.as_str()];
                self.emit(Instr::Broadcast(c));
            }
            Stmt::Send { chan, value, .. } => {
                let src = self.lower_expr(value);
                let ch = self.chan_ids[chan.as_str()];
                self.emit(Instr::Send { chan: ch, src });
            }
            Stmt::Close { chan, .. } => {
                let ch = self.chan_ids[chan.as_str()];
                self.emit(Instr::ChanClose(ch));
            }
            Stmt::MailboxSend { target, value, .. } => {
                let t = self.lower_expr(target);
                let src = self.lower_expr(value);
                self.emit(Instr::MailboxSend { target: t, src });
            }
            Stmt::AtomicStore {
                atomic, value, ord, ..
            } => {
                let src = self.lower_expr(value);
                let global = self.atomic_ids[atomic.as_str()];
                self.emit(Instr::AtomicStore {
                    global,
                    src,
                    ord: *ord,
                });
            }
            Stmt::Yield { .. } => self.emit(Instr::Yield),
            Stmt::Assert {
                cond,
                message,
                span,
            } => {
                let c = self.lower_expr(cond);
                let id = AssertId::from(self.asserts.len());
                self.asserts.push(AssertInfo {
                    message: message.clone(),
                    span: *span,
                    func: self.func,
                });
                self.emit(Instr::Assert { cond: c, id });
            }
            Stmt::Return { value, .. } => {
                let v = value.as_ref().map(|e| self.lower_expr(e));
                self.terminate(Terminator::Return(v));
                // Code after a return is unreachable; give it a fresh block
                // so lowering can continue without clobbering the return.
                let dead = self.new_block();
                self.cur = dead;
            }
            Stmt::Call {
                dst, func, args, ..
            } => {
                let args = self.lower_args(args);
                let callee = self.func_ids[func.as_str()];
                match dst {
                    None => self.emit(Instr::Call {
                        dst: None,
                        func: callee,
                        args,
                    }),
                    Some(LValue::Var(name)) => {
                        if let Some(local) = self.lookup_local(name) {
                            self.emit(Instr::Call {
                                dst: Some(local),
                                func: callee,
                                args,
                            });
                        } else {
                            // Global scalar destination: call into a temp,
                            // store after.
                            let temp = self.fresh_temp();
                            self.emit(Instr::Call {
                                dst: Some(temp),
                                func: callee,
                                args,
                            });
                            let global = self.global_ids[name.as_str()];
                            self.emit(Instr::Store {
                                global,
                                index: None,
                                src: Operand::Local(temp),
                            });
                        }
                    }
                    Some(LValue::Index(name, index)) => {
                        let temp = self.fresh_temp();
                        self.emit(Instr::Call {
                            dst: Some(temp),
                            func: callee,
                            args,
                        });
                        let idx = self.lower_expr(index);
                        let global = self.global_ids[name.as_str()];
                        self.emit(Instr::Store {
                            global,
                            index: Some(idx),
                            src: Operand::Local(temp),
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;

    #[test]
    fn lowers_global_reads_to_loads() {
        let p = parse("global int x = 0; fn main() { x = x + x; }").unwrap();
        let main = p.function(p.main);
        let loads = main.blocks[main.entry.index()]
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Load { .. }))
            .count();
        let stores = main.blocks[main.entry.index()]
            .instrs
            .iter()
            .filter(|i| matches!(i, Instr::Store { .. }))
            .count();
        assert_eq!(loads, 2, "each syntactic global read is one Load");
        assert_eq!(stores, 1);
    }

    #[test]
    fn while_has_header_with_back_edge() {
        let p = parse("global int x = 0; fn main() { while (x < 3) { x = x + 1; } }").unwrap();
        let main = p.function(p.main);
        // Some block must branch, and some block must jump backwards.
        assert_eq!(main.branch_count(), 1);
        let has_back_edge = main
            .blocks
            .iter()
            .enumerate()
            .any(|(i, b)| b.term.successors().iter().any(|s| s.index() <= i));
        assert!(has_back_edge);
    }

    #[test]
    fn if_branches_rejoin() {
        let p =
            parse("fn main() { let x: int = 0; if (x == 0) { x = 1; } else { x = 2; } x = 3; }")
                .unwrap();
        let main = p.function(p.main);
        assert_eq!(main.branch_count(), 1);
        // The two branch targets both flow into the same join block.
        let Terminator::Branch {
            then_bb, else_bb, ..
        } = &main.blocks[0].term
        else {
            panic!("entry must branch")
        };
        let t_succ = main.blocks[then_bb.index()].term.successors();
        let e_succ = main.blocks[else_bb.index()].term.successors();
        assert_eq!(t_succ, e_succ);
    }

    #[test]
    fn statements_after_return_are_unreachable_not_lost() {
        let p = parse("fn f() { return 1; yield; } fn main() { let x: int = f(); }").unwrap();
        let f = p.function(p.function_by_name("f").unwrap());
        assert!(matches!(
            f.blocks[f.entry.index()].term,
            Terminator::Return(Some(_))
        ));
    }

    #[test]
    fn fork_join_lowering() {
        let p = parse("fn w() {} fn main() { let t: thread = fork w(); join t; }").unwrap();
        let main = p.function(p.main);
        let instrs = &main.blocks[main.entry.index()].instrs;
        assert!(matches!(instrs[0], Instr::Fork { .. }));
        assert!(matches!(instrs[1], Instr::Join { .. }));
    }

    #[test]
    fn assert_registered_with_message() {
        let p = parse(r#"fn main() { assert(true, "boom"); }"#).unwrap();
        assert_eq!(p.asserts.len(), 1);
        assert_eq!(p.asserts[0].message, "boom");
        assert_eq!(p.asserts[0].func, p.main);
    }

    #[test]
    fn call_with_global_destination_stores() {
        let p = parse("global int x = 0; fn f() { return 7; } fn main() { x = f(); }").unwrap();
        let main = p.function(p.main);
        let instrs = &main.blocks[main.entry.index()].instrs;
        assert!(matches!(instrs[0], Instr::Call { dst: Some(_), .. }));
        assert!(matches!(instrs[1], Instr::Store { .. }));
    }

    #[test]
    fn array_load_store_carry_index() {
        let p = parse("global int a[4]; fn main() { a[1] = a[2]; }").unwrap();
        let main = p.function(p.main);
        let instrs = &main.blocks[main.entry.index()].instrs;
        assert!(matches!(instrs[0], Instr::Load { index: Some(_), .. }));
        assert!(matches!(instrs[1], Instr::Store { index: Some(_), .. }));
    }
}
