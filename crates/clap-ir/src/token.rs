//! Token definitions for the DSL lexer.

use crate::error::Span;
use std::fmt;

/// A lexical token paired with its source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Where the token starts in the source.
    pub span: Span,
}

/// The set of tokens recognized by the lexer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    // Literals and identifiers
    /// An integer literal, e.g. `42`.
    Int(i64),
    /// A string literal (assert messages), e.g. `"lost update"`.
    Str(String),
    /// An identifier, e.g. `worker`.
    Ident(String),

    // Keywords
    /// `global`
    Global,
    /// `mutex`
    Mutex,
    /// `cond`
    Cond,
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `lock`
    Lock,
    /// `unlock`
    Unlock,
    /// `fork`
    Fork,
    /// `join`
    Join,
    /// `wait`
    Wait,
    /// `signal`
    Signal,
    /// `broadcast`
    Broadcast,
    /// `yield`
    Yield,
    /// `assert`
    Assert,
    /// `return`
    Return,
    /// `int`
    TyInt,
    /// `bool`
    TyBool,
    /// `thread`
    TyThread,
    /// `true`
    True,
    /// `false`
    False,
    /// `chan`
    Chan,
    /// `send`
    Send,
    /// `recv`
    Recv,
    /// `try_send`
    TrySend,
    /// `try_recv`
    TryRecv,
    /// `close`
    Close,
    /// `spawn_actor`
    SpawnActor,
    /// `mailbox_send`
    MailboxSend,
    /// `mailbox_recv`
    MailboxRecv,
    /// `atomic`
    Atomic,
    /// `load`
    Load,
    /// `store`
    Store,
    /// `fetch_add`
    FetchAdd,
    /// `cas`
    Cas,

    // Punctuation and operators
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Maps an identifier's text to a keyword token, if it is one.
    pub fn keyword(text: &str) -> Option<TokenKind> {
        Some(match text {
            "global" => TokenKind::Global,
            "mutex" => TokenKind::Mutex,
            "cond" => TokenKind::Cond,
            "fn" => TokenKind::Fn,
            "let" => TokenKind::Let,
            "if" => TokenKind::If,
            "else" => TokenKind::Else,
            "while" => TokenKind::While,
            "lock" => TokenKind::Lock,
            "unlock" => TokenKind::Unlock,
            "fork" => TokenKind::Fork,
            "join" => TokenKind::Join,
            "wait" => TokenKind::Wait,
            "signal" => TokenKind::Signal,
            "broadcast" => TokenKind::Broadcast,
            "yield" => TokenKind::Yield,
            "assert" => TokenKind::Assert,
            "return" => TokenKind::Return,
            "int" => TokenKind::TyInt,
            "bool" => TokenKind::TyBool,
            "thread" => TokenKind::TyThread,
            "true" => TokenKind::True,
            "false" => TokenKind::False,
            "chan" => TokenKind::Chan,
            "send" => TokenKind::Send,
            "recv" => TokenKind::Recv,
            "try_send" => TokenKind::TrySend,
            "try_recv" => TokenKind::TryRecv,
            "close" => TokenKind::Close,
            "spawn_actor" => TokenKind::SpawnActor,
            "mailbox_send" => TokenKind::MailboxSend,
            "mailbox_recv" => TokenKind::MailboxRecv,
            "atomic" => TokenKind::Atomic,
            "load" => TokenKind::Load,
            "store" => TokenKind::Store,
            "fetch_add" => TokenKind::FetchAdd,
            "cas" => TokenKind::Cas,
            _ => return None,
        })
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Int(v) => write!(f, "{v}"),
            TokenKind::Str(s) => write!(f, "{s:?}"),
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Global => write!(f, "global"),
            TokenKind::Mutex => write!(f, "mutex"),
            TokenKind::Cond => write!(f, "cond"),
            TokenKind::Fn => write!(f, "fn"),
            TokenKind::Let => write!(f, "let"),
            TokenKind::If => write!(f, "if"),
            TokenKind::Else => write!(f, "else"),
            TokenKind::While => write!(f, "while"),
            TokenKind::Lock => write!(f, "lock"),
            TokenKind::Unlock => write!(f, "unlock"),
            TokenKind::Fork => write!(f, "fork"),
            TokenKind::Join => write!(f, "join"),
            TokenKind::Wait => write!(f, "wait"),
            TokenKind::Signal => write!(f, "signal"),
            TokenKind::Broadcast => write!(f, "broadcast"),
            TokenKind::Yield => write!(f, "yield"),
            TokenKind::Assert => write!(f, "assert"),
            TokenKind::Return => write!(f, "return"),
            TokenKind::TyInt => write!(f, "int"),
            TokenKind::TyBool => write!(f, "bool"),
            TokenKind::TyThread => write!(f, "thread"),
            TokenKind::True => write!(f, "true"),
            TokenKind::False => write!(f, "false"),
            TokenKind::Chan => write!(f, "chan"),
            TokenKind::Send => write!(f, "send"),
            TokenKind::Recv => write!(f, "recv"),
            TokenKind::TrySend => write!(f, "try_send"),
            TokenKind::TryRecv => write!(f, "try_recv"),
            TokenKind::Close => write!(f, "close"),
            TokenKind::SpawnActor => write!(f, "spawn_actor"),
            TokenKind::MailboxSend => write!(f, "mailbox_send"),
            TokenKind::MailboxRecv => write!(f, "mailbox_recv"),
            TokenKind::Atomic => write!(f, "atomic"),
            TokenKind::Load => write!(f, "load"),
            TokenKind::Store => write!(f, "store"),
            TokenKind::FetchAdd => write!(f, "fetch_add"),
            TokenKind::Cas => write!(f, "cas"),
            TokenKind::LParen => write!(f, "("),
            TokenKind::RParen => write!(f, ")"),
            TokenKind::LBrace => write!(f, "{{"),
            TokenKind::RBrace => write!(f, "}}"),
            TokenKind::LBracket => write!(f, "["),
            TokenKind::RBracket => write!(f, "]"),
            TokenKind::Semi => write!(f, ";"),
            TokenKind::Comma => write!(f, ","),
            TokenKind::Colon => write!(f, ":"),
            TokenKind::Assign => write!(f, "="),
            TokenKind::Plus => write!(f, "+"),
            TokenKind::Minus => write!(f, "-"),
            TokenKind::Star => write!(f, "*"),
            TokenKind::Slash => write!(f, "/"),
            TokenKind::Percent => write!(f, "%"),
            TokenKind::EqEq => write!(f, "=="),
            TokenKind::NotEq => write!(f, "!="),
            TokenKind::Lt => write!(f, "<"),
            TokenKind::Le => write!(f, "<="),
            TokenKind::Gt => write!(f, ">"),
            TokenKind::Ge => write!(f, ">="),
            TokenKind::AndAnd => write!(f, "&&"),
            TokenKind::OrOr => write!(f, "||"),
            TokenKind::Not => write!(f, "!"),
            TokenKind::Amp => write!(f, "&"),
            TokenKind::Pipe => write!(f, "|"),
            TokenKind::Caret => write!(f, "^"),
            TokenKind::Shl => write!(f, "<<"),
            TokenKind::Shr => write!(f, ">>"),
            TokenKind::Eof => write!(f, "<eof>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_map_to_tokens() {
        assert_eq!(TokenKind::keyword("while"), Some(TokenKind::While));
        assert_eq!(TokenKind::keyword("thread"), Some(TokenKind::TyThread));
        assert_eq!(TokenKind::keyword("not_a_keyword"), None);
    }

    #[test]
    fn display_round_trips_punctuation() {
        assert_eq!(TokenKind::Shl.to_string(), "<<");
        assert_eq!(TokenKind::AndAnd.to_string(), "&&");
        assert_eq!(TokenKind::Int(7).to_string(), "7");
    }
}
