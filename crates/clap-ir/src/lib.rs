//! A small concurrent imperative language: the program substrate for the
//! CLAP (PLDI 2013) reproduction.
//!
//! The paper instruments C/C++ + PThreads programs through LLVM. This crate
//! provides the equivalent substrate as a self-contained mini-language with
//! exactly the constructs the technique exercises:
//!
//! * global shared variables (scalars and arrays of 64-bit integers),
//! * mutexes and condition variables (PThreads-style `lock`/`unlock`/
//!   `wait`/`signal`/`broadcast`),
//! * `fork`/`join` thread management,
//! * structured control flow (`if`/`while`) that lowers to a branchy CFG,
//! * `assert` statements acting as the bug manifestation predicate.
//!
//! Programs are written in a textual DSL (see [`parse`]) or constructed
//! programmatically with [`builder::FunctionBuilder`], then lowered to a
//! control-flow-graph representation ([`Program`]) consumed by the VM,
//! the Ball–Larus profiler, the static sharing analysis and the symbolic
//! executor.
//!
//! # Example
//!
//! ```
//! use clap_ir::parse;
//!
//! let program = parse(
//!     r#"
//!     global int x = 0;
//!     mutex m;
//!
//!     fn worker() {
//!         lock(m);
//!         x = x + 1;
//!         unlock(m);
//!     }
//!
//!     fn main() {
//!         let t1: thread = fork worker();
//!         let t2: thread = fork worker();
//!         join t1;
//!         join t2;
//!         assert(x == 2, "lost update");
//!     }
//!     "#,
//! )?;
//! assert_eq!(program.functions.len(), 2);
//! # Ok::<(), clap_ir::Error>(())
//! ```

pub mod ast;
pub mod builder;
pub mod error;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod sema;
pub mod token;
pub mod unparse;

pub use ast::AtomicOrd;
pub use error::{Error, Result};
pub use program::{
    eval_binop, eval_unop, AssertId, Block, BlockId, ChanDecl, ChanId, CondId, FuncId, Function,
    GlobalDecl, GlobalId, Instr, LocalId, MutexId, Operand, Program, Rvalue, Terminator,
};

use ast::Module;

/// Parses DSL source text, checks it, and lowers it to a CFG [`Program`].
///
/// This is the front door of the crate: lexing, parsing, semantic analysis
/// and lowering in one call.
///
/// # Errors
///
/// Returns [`Error::Parse`] for lexical/syntactic problems and
/// [`Error::Sema`] for semantic ones (undeclared names, type mismatches,
/// missing `main`, …), each carrying a source location.
pub fn parse(source: &str) -> Result<Program> {
    let module = parse_module(source)?;
    sema::check(&module)?;
    Ok(lower::lower(&module))
}

/// Parses DSL source text into an untyped AST [`Module`] without running
/// semantic checks or lowering.
///
/// Useful for tooling (pretty-printing, tests) that wants the surface syntax.
///
/// # Errors
///
/// Returns [`Error::Parse`] for lexical or syntactic problems.
pub fn parse_module(source: &str) -> Result<Module> {
    let tokens = lexer::lex(source)?;
    parser::parse_tokens(&tokens)
}

/// Canonicalizes DSL source text: parses it and prints it back through
/// [`unparse::unparse`], erasing formatting-only differences (whitespace,
/// comments, redundant parentheses). The result is a **fixpoint** —
/// canonicalizing it again returns the same bytes — which makes it a
/// stable content-address key for caches keyed by program identity.
///
/// # Errors
///
/// Returns [`Error::Parse`] for lexical or syntactic problems.
pub fn canonicalize(source: &str) -> Result<String> {
    Ok(unparse::unparse(&parse_module(source)?))
}
