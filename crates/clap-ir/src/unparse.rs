//! Source regeneration: renders an AST [`Module`] back to DSL text that
//! parses to the same module (modulo spans).
//!
//! Used by tooling that rewrites programs (e.g. test-case reduction) and
//! by the round-trip property tests that pin the grammar: for every
//! module, `parse_module(unparse(m)) == m` with spans erased.

use crate::ast::*;
use std::fmt::Write as _;

/// Renders a module as parseable DSL source.
pub fn unparse(module: &Module) -> String {
    let mut out = String::new();
    for g in &module.globals {
        match g.len {
            Some(n) => {
                let _ = writeln!(out, "global int {}[{n}];", g.name);
            }
            None if g.init != 0 => {
                let _ = writeln!(out, "global int {} = {};", g.name, g.init);
            }
            None => {
                let _ = writeln!(out, "global int {};", g.name);
            }
        }
    }
    for m in &module.mutexes {
        let _ = writeln!(out, "mutex {};", m.name);
    }
    for c in &module.conds {
        let _ = writeln!(out, "cond {};", c.name);
    }
    for ch in &module.chans {
        let _ = writeln!(out, "chan {}({});", ch.name, ch.cap);
    }
    for a in &module.atomics {
        if a.init != 0 {
            let _ = writeln!(out, "atomic int {} = {};", a.name, a.init);
        } else {
            let _ = writeln!(out, "atomic int {};", a.name);
        }
    }
    for f in &module.functions {
        let params: Vec<String> = f.params.iter().map(|(n, t)| format!("{n}: {t}")).collect();
        let _ = writeln!(out, "fn {}({}) {{", f.name, params.join(", "));
        for stmt in &f.body {
            unparse_stmt(&mut out, stmt, 1);
        }
        let _ = writeln!(out, "}}");
    }
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("    ");
    }
}

fn unparse_stmt(out: &mut String, stmt: &Stmt, depth: usize) {
    indent(out, depth);
    match stmt {
        Stmt::Let { name, ty, init, .. } => {
            let _ = write!(out, "let {name}: {ty} = ");
            match init {
                LetInit::Expr(e) => out.push_str(&unparse_expr(e)),
                LetInit::Fork { func, args } => {
                    let _ = write!(out, "fork {func}({})", unparse_args(args));
                }
                LetInit::Call { func, args } => {
                    let _ = write!(out, "{func}({})", unparse_args(args));
                }
                LetInit::SpawnActor { func, args } => {
                    let _ = write!(out, "spawn_actor {func}({})", unparse_args(args));
                }
                LetInit::Recv { chan } => {
                    let _ = write!(out, "recv({chan})");
                }
                LetInit::TryRecv { chan } => {
                    let _ = write!(out, "try_recv({chan})");
                }
                LetInit::TrySend { chan, value } => {
                    let _ = write!(out, "try_send({chan}, {})", unparse_expr(value));
                }
                LetInit::MailboxRecv => out.push_str("mailbox_recv()"),
                LetInit::AtomicLoad { atomic, ord } => {
                    let _ = write!(out, "load({atomic}, {ord})");
                }
                LetInit::FetchAdd { atomic, value, ord } => {
                    let _ = write!(out, "fetch_add({atomic}, {}, {ord})", unparse_expr(value));
                }
                LetInit::Cas {
                    atomic,
                    expected,
                    desired,
                    ord,
                } => {
                    let _ = write!(
                        out,
                        "cas({atomic}, {}, {}, {ord})",
                        unparse_expr(expected),
                        unparse_expr(desired)
                    );
                }
            }
            out.push_str(";\n");
        }
        Stmt::Assign { lhs, rhs, .. } => {
            let _ = writeln!(out, "{} = {};", unparse_lvalue(lhs), unparse_expr(rhs));
        }
        Stmt::If {
            cond,
            then_body,
            else_body,
            ..
        } => {
            let _ = writeln!(out, "if ({}) {{", unparse_expr(cond));
            for s in then_body {
                unparse_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            if else_body.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                for s in else_body {
                    unparse_stmt(out, s, depth + 1);
                }
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        Stmt::While { cond, body, .. } => {
            let _ = writeln!(out, "while ({}) {{", unparse_expr(cond));
            for s in body {
                unparse_stmt(out, s, depth + 1);
            }
            indent(out, depth);
            out.push_str("}\n");
        }
        Stmt::Lock { mutex, .. } => {
            let _ = writeln!(out, "lock({mutex});");
        }
        Stmt::Unlock { mutex, .. } => {
            let _ = writeln!(out, "unlock({mutex});");
        }
        Stmt::Join { handle, .. } => {
            let _ = writeln!(out, "join {};", unparse_expr(handle));
        }
        Stmt::Wait { cond, mutex, .. } => {
            let _ = writeln!(out, "wait({cond}, {mutex});");
        }
        Stmt::Signal { cond, .. } => {
            let _ = writeln!(out, "signal({cond});");
        }
        Stmt::Broadcast { cond, .. } => {
            let _ = writeln!(out, "broadcast({cond});");
        }
        Stmt::Send { chan, value, .. } => {
            let _ = writeln!(out, "send({chan}, {});", unparse_expr(value));
        }
        Stmt::Close { chan, .. } => {
            let _ = writeln!(out, "close({chan});");
        }
        Stmt::MailboxSend { target, value, .. } => {
            let _ = writeln!(
                out,
                "mailbox_send({}, {});",
                unparse_expr(target),
                unparse_expr(value)
            );
        }
        Stmt::AtomicStore {
            atomic, value, ord, ..
        } => {
            let _ = writeln!(out, "store({atomic}, {}, {ord});", unparse_expr(value));
        }
        Stmt::Yield { .. } => out.push_str("yield;\n"),
        Stmt::Assert { cond, message, .. } => {
            let _ = writeln!(out, "assert({}, {message:?});", unparse_expr(cond));
        }
        Stmt::Return { value, .. } => match value {
            Some(v) => {
                let _ = writeln!(out, "return {};", unparse_expr(v));
            }
            None => out.push_str("return;\n"),
        },
        Stmt::Call {
            dst, func, args, ..
        } => {
            if let Some(lv) = dst {
                let _ = write!(out, "{} = ", unparse_lvalue(lv));
            }
            let _ = writeln!(out, "{func}({});", unparse_args(args));
        }
    }
}

fn unparse_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Var(name) => name.clone(),
        LValue::Index(name, index) => format!("{name}[{}]", unparse_expr(index)),
    }
}

fn unparse_args(args: &[Expr]) -> String {
    args.iter().map(unparse_expr).collect::<Vec<_>>().join(", ")
}

/// Renders an expression fully parenthesized (so precedence never needs
/// reconstruction).
fn unparse_expr(expr: &Expr) -> String {
    match expr {
        // i64::MIN has no positive counterpart; the hex literal wraps to
        // it exactly (the lexer accepts full-width bit patterns).
        Expr::Int(v, _) if *v == i64::MIN => "0x8000000000000000".to_owned(),
        Expr::Int(v, _) if *v < 0 => format!("(-{})", v.unsigned_abs()),
        Expr::Int(v, _) => v.to_string(),
        Expr::Bool(b, _) => b.to_string(),
        Expr::Var(name, _) => name.clone(),
        Expr::Index(name, index, _) => format!("{name}[{}]", unparse_expr(index)),
        Expr::Unary(UnOp::Neg, inner, _) => format!("(-{})", unparse_expr(inner)),
        Expr::Unary(UnOp::Not, inner, _) => format!("(!{})", unparse_expr(inner)),
        Expr::Binary(op, lhs, rhs, _) => {
            format!("({} {op} {})", unparse_expr(lhs), unparse_expr(rhs))
        }
    }
}

/// Structural equality on modules that ignores spans (and the numeric
/// encoding differences the unparser introduces for negative literals).
pub fn modules_equal_modulo_spans(a: &Module, b: &Module) -> bool {
    fn norm(m: &Module) -> Module {
        // Cheap normalization: unparse and reparse both once more is
        // overkill; instead compare span-erased debug output of a
        // canonicalized clone.
        let mut m = m.clone();
        for f in &mut m.functions {
            erase_spans(&mut f.body);
            f.span = crate::error::Span::unknown();
        }
        for g in &mut m.globals {
            g.span = crate::error::Span::unknown();
        }
        for d in m.mutexes.iter_mut().chain(m.conds.iter_mut()) {
            d.span = crate::error::Span::unknown();
        }
        for c in &mut m.chans {
            c.span = crate::error::Span::unknown();
        }
        for a in &mut m.atomics {
            a.span = crate::error::Span::unknown();
        }
        m
    }
    format!("{:?}", norm(a)) == format!("{:?}", norm(b))
}

fn erase_spans(body: &mut [Stmt]) {
    use crate::error::Span;
    for stmt in body {
        match stmt {
            Stmt::Let { init, span, .. } => {
                *span = Span::unknown();
                match init {
                    LetInit::Expr(e) => erase_expr_spans(e),
                    LetInit::Fork { args, .. }
                    | LetInit::Call { args, .. }
                    | LetInit::SpawnActor { args, .. } => {
                        args.iter_mut().for_each(erase_expr_spans)
                    }
                    LetInit::TrySend { value, .. } | LetInit::FetchAdd { value, .. } => {
                        erase_expr_spans(value)
                    }
                    LetInit::Cas {
                        expected, desired, ..
                    } => {
                        erase_expr_spans(expected);
                        erase_expr_spans(desired);
                    }
                    LetInit::Recv { .. }
                    | LetInit::TryRecv { .. }
                    | LetInit::MailboxRecv
                    | LetInit::AtomicLoad { .. } => {}
                }
            }
            Stmt::Assign { lhs, rhs, span } => {
                *span = Span::unknown();
                if let LValue::Index(_, i) = lhs {
                    erase_expr_spans(i);
                }
                erase_expr_spans(rhs);
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
                span,
            } => {
                *span = Span::unknown();
                erase_expr_spans(cond);
                erase_spans(then_body);
                erase_spans(else_body);
            }
            Stmt::While { cond, body, span } => {
                *span = Span::unknown();
                erase_expr_spans(cond);
                erase_spans(body);
            }
            Stmt::Join { handle, span } => {
                *span = Span::unknown();
                erase_expr_spans(handle);
            }
            Stmt::Assert { cond, span, .. } => {
                *span = Span::unknown();
                erase_expr_spans(cond);
            }
            Stmt::Return { value, span } => {
                *span = Span::unknown();
                if let Some(v) = value {
                    erase_expr_spans(v);
                }
            }
            Stmt::Call {
                dst, args, span, ..
            } => {
                *span = Span::unknown();
                if let Some(LValue::Index(_, i)) = dst {
                    erase_expr_spans(i);
                }
                args.iter_mut().for_each(erase_expr_spans);
            }
            Stmt::Send { value, span, .. } | Stmt::AtomicStore { value, span, .. } => {
                *span = Span::unknown();
                erase_expr_spans(value);
            }
            Stmt::MailboxSend {
                target,
                value,
                span,
            } => {
                *span = Span::unknown();
                erase_expr_spans(target);
                erase_expr_spans(value);
            }
            Stmt::Lock { span, .. }
            | Stmt::Unlock { span, .. }
            | Stmt::Wait { span, .. }
            | Stmt::Signal { span, .. }
            | Stmt::Broadcast { span, .. }
            | Stmt::Close { span, .. }
            | Stmt::Yield { span } => *span = Span::unknown(),
        }
    }
}

fn erase_expr_spans(expr: &mut Expr) {
    use crate::error::Span;
    match expr {
        Expr::Int(_, s) | Expr::Bool(_, s) | Expr::Var(_, s) => *s = Span::unknown(),
        Expr::Index(_, inner, s) => {
            *s = Span::unknown();
            erase_expr_spans(inner);
        }
        Expr::Unary(op, inner, s) => {
            *s = Span::unknown();
            erase_expr_spans(inner);
            // The parser folds `-<literal>`: normalize so hand-built ASTs
            // compare equal to their reparsed forms.
            if let (UnOp::Neg, Expr::Int(v, _)) = (*op, inner.as_ref().clone()) {
                *expr = Expr::Int(v.wrapping_neg(), Span::unknown());
            }
        }
        Expr::Binary(_, lhs, rhs, s) => {
            *s = Span::unknown();
            erase_expr_spans(lhs);
            erase_expr_spans(rhs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    fn round_trip(src: &str) {
        let a = parse_module(src).expect("source parses");
        let text = unparse(&a);
        let b = parse_module(&text)
            .unwrap_or_else(|e| panic!("unparsed text must parse: {e}\n---\n{text}"));
        assert!(
            modules_equal_modulo_spans(&a, &b),
            "round trip changed the AST:\n---original---\n{src}\n---unparsed---\n{text}"
        );
    }

    #[test]
    fn round_trips_declarations() {
        round_trip("global int x = 5; global int a[3]; mutex m; cond c; fn main() {}");
    }

    #[test]
    fn round_trips_all_statements() {
        round_trip(
            r#"
            global int x = 0; global int a[4]; mutex m; cond c;
            fn f(v: int) { return v + 1; }
            fn w() {
                lock(m);
                while (x < 3) { wait(c, m); }
                a[x & 3] = f(x);
                x = f(2);
                signal(c);
                broadcast(c);
                unlock(m);
                yield;
                assert(x >= 0, "msg with \"quotes\"");
            }
            fn main() {
                let t: thread = fork w();
                if (x == 0) { x = 1; } else { x = 2; }
                let y: int = f(3);
                let b: bool = true;
                join t;
                return;
            }
            "#,
        );
    }

    #[test]
    fn round_trips_expression_precedence() {
        round_trip(
            "global int x = 0;
             fn main() {
                 let a: int = 1 + 2 * 3 - 4 / 5 % 6;
                 let b: bool = (a < 3 || a > 7) && !(a == 5);
                 let c: int = (a & 3) | (a ^ 12) << 2 >> 1;
                 let d: int = -a + - -3;
                 x = a + c + d;
                 assert(b || x != 0);
             }",
        );
    }

    #[test]
    fn round_trips_negative_literals() {
        round_trip("global int x = -9; fn main() { let v: int = -1 - -2; x = v; }");
    }

    #[test]
    fn unparse_is_stable() {
        // unparse(parse(unparse(m))) == unparse(m): a fixpoint after one
        // round.
        let src = "global int x = 3; fn main() { while (x > 0) { x = x - 1; } }";
        let a = parse_module(src).unwrap();
        let once = unparse(&a);
        let twice = unparse(&parse_module(&once).unwrap());
        assert_eq!(once, twice);
    }
}
