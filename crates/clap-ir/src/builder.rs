//! Programmatic construction of CFG-level programs, bypassing the DSL.
//!
//! Useful for tests (e.g. property tests over arbitrary CFG shapes) and for
//! tools that synthesize programs. The builder performs no semantic checks
//! beyond id validity; it is a thin, convenient layer over
//! [`crate::program`].
//!
//! # Example
//!
//! ```
//! use clap_ir::builder::ProgramBuilder;
//! use clap_ir::{Instr, Operand, Terminator};
//!
//! let mut pb = ProgramBuilder::new();
//! let x = pb.global_scalar("x", 0);
//! let mut f = pb.function("main", 0);
//! let entry = f.new_block();
//! f.select(entry);
//! let tmp = f.local("tmp");
//! f.push(Instr::Load { dst: tmp, global: x, index: None });
//! f.push(Instr::Store { global: x, index: None, src: Operand::Local(tmp) });
//! f.terminate(Terminator::Return(None));
//! let main = pb.finish_function(f);
//! let program = pb.finish(main);
//! assert_eq!(program.instr_count(), 2);
//! ```

use crate::error::Span;
use crate::program::*;

/// Builds a [`Program`] incrementally.
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    globals: Vec<GlobalDecl>,
    mutexes: Vec<String>,
    conds: Vec<String>,
    chans: Vec<ChanDecl>,
    functions: Vec<Function>,
    asserts: Vec<AssertInfo>,
}

impl ProgramBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a scalar global with an initial value.
    pub fn global_scalar(&mut self, name: &str, init: i64) -> GlobalId {
        self.globals.push(GlobalDecl {
            name: name.to_owned(),
            len: None,
            init,
            atomic: false,
        });
        GlobalId::from(self.globals.len() - 1)
    }

    /// Declares a zero-initialized array global.
    pub fn global_array(&mut self, name: &str, len: usize) -> GlobalId {
        self.globals.push(GlobalDecl {
            name: name.to_owned(),
            len: Some(len),
            init: 0,
            atomic: false,
        });
        GlobalId::from(self.globals.len() - 1)
    }

    /// Declares a mutex.
    pub fn mutex(&mut self, name: &str) -> MutexId {
        self.mutexes.push(name.to_owned());
        MutexId::from(self.mutexes.len() - 1)
    }

    /// Declares a condition variable.
    pub fn cond(&mut self, name: &str) -> CondId {
        self.conds.push(name.to_owned());
        CondId::from(self.conds.len() - 1)
    }

    /// Declares a bounded channel with the given capacity.
    pub fn chan(&mut self, name: &str, cap: usize) -> ChanId {
        self.chans.push(ChanDecl {
            name: name.to_owned(),
            cap,
        });
        ChanId::from(self.chans.len() - 1)
    }

    /// Reserves the id the *next* [`ProgramBuilder::finish_function`] call
    /// will assign — lets mutually-recursive functions reference each other.
    pub fn next_func_id(&self) -> FuncId {
        FuncId::from(self.functions.len())
    }

    /// Starts building a function with `param_count` parameters (occupying
    /// the first local slots, named `p0..`).
    pub fn function(&mut self, name: &str, param_count: usize) -> FunctionBuilder {
        FunctionBuilder {
            name: name.to_owned(),
            param_count,
            locals: (0..param_count).map(|i| format!("p{i}")).collect(),
            blocks: Vec::new(),
            cur: BlockId(0),
        }
    }

    /// Registers an assert site and returns its id, for use in
    /// [`Instr::Assert`].
    pub fn assert_site(&mut self, func: FuncId, message: &str) -> AssertId {
        self.asserts.push(AssertInfo {
            message: message.to_owned(),
            span: Span::unknown(),
            func,
        });
        AssertId::from(self.asserts.len() - 1)
    }

    /// Finishes a function and adds it to the program, returning its id.
    pub fn finish_function(&mut self, fb: FunctionBuilder) -> FuncId {
        self.functions.push(Function {
            name: fb.name,
            param_count: fb.param_count,
            locals: fb.locals,
            blocks: fb.blocks,
            entry: BlockId(0),
        });
        FuncId::from(self.functions.len() - 1)
    }

    /// Finishes the program with the given entry function.
    ///
    /// # Panics
    ///
    /// Panics if `main` is out of range.
    pub fn finish(self, main: FuncId) -> Program {
        assert!(
            main.index() < self.functions.len(),
            "main function out of range"
        );
        Program {
            globals: self.globals,
            mutexes: self.mutexes,
            conds: self.conds,
            chans: self.chans,
            functions: self.functions,
            main,
            asserts: self.asserts,
        }
    }
}

/// Builds one function's CFG. Blocks start terminated by `Return(None)`;
/// use [`FunctionBuilder::terminate`] to replace the terminator.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    param_count: usize,
    locals: Vec<String>,
    blocks: Vec<Block>,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Allocates a new local slot.
    pub fn local(&mut self, name: &str) -> LocalId {
        self.locals.push(name.to_owned());
        LocalId::from(self.locals.len() - 1)
    }

    /// Creates a new empty block (terminated by `Return(None)` by default)
    /// and returns its id. The first block created is the entry.
    pub fn new_block(&mut self) -> BlockId {
        self.blocks.push(Block {
            instrs: Vec::new(),
            term: Terminator::Return(None),
        });
        BlockId::from(self.blocks.len() - 1)
    }

    /// Makes `block` the target of subsequent [`FunctionBuilder::push`] /
    /// [`FunctionBuilder::terminate`] calls.
    pub fn select(&mut self, block: BlockId) {
        assert!(block.index() < self.blocks.len(), "block out of range");
        self.cur = block;
    }

    /// Appends an instruction to the selected block.
    pub fn push(&mut self, instr: Instr) {
        self.blocks[self.cur.index()].instrs.push(instr);
    }

    /// Sets the selected block's terminator.
    pub fn terminate(&mut self, term: Terminator) {
        self.blocks[self.cur.index()].term = term;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::BinOp;

    #[test]
    fn builds_branching_function() {
        let mut pb = ProgramBuilder::new();
        let x = pb.global_scalar("x", 5);
        let mut f = pb.function("main", 0);
        let entry = f.new_block();
        let t = f.new_block();
        let e = f.new_block();
        f.select(entry);
        let v = f.local("v");
        let c = f.local("c");
        f.push(Instr::Load {
            dst: v,
            global: x,
            index: None,
        });
        f.push(Instr::Assign {
            dst: c,
            rv: Rvalue::Binary(BinOp::Gt, Operand::Local(v), Operand::Const(0)),
        });
        f.terminate(Terminator::Branch {
            cond: Operand::Local(c),
            then_bb: t,
            else_bb: e,
        });
        let main = pb.finish_function(f);
        let p = pb.finish(main);
        assert_eq!(p.function(p.main).branch_count(), 1);
        assert_eq!(p.globals[x.index()].init, 5);
    }

    #[test]
    fn assert_sites_registered() {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.function("main", 0);
        f.new_block();
        let main_id = pb.next_func_id();
        let a = pb.assert_site(main_id, "boom");
        f.select(BlockId(0));
        f.push(Instr::Assert {
            cond: Operand::Const(0),
            id: a,
        });
        let main = pb.finish_function(f);
        let p = pb.finish(main);
        assert_eq!(p.asserts[a.index()].message, "boom");
    }

    #[test]
    #[should_panic(expected = "main function out of range")]
    fn finish_validates_main() {
        ProgramBuilder::new().finish(FuncId(3));
    }
}
