//! Robustness properties of the front end: no input may panic the lexer,
//! parser, or checker; valid programs survive arbitrary whitespace and
//! comment injection.

use clap_ir::{lexer, parse, parse_module};
use proptest::prelude::*;

proptest! {
    /// The lexer returns `Ok` or `Err` — never panics — on arbitrary
    /// bytes.
    #[test]
    fn lexer_never_panics(input in ".*") {
        let _ = lexer::lex(&input);
    }

    /// The whole front end never panics on arbitrary input.
    #[test]
    fn parser_never_panics(input in ".*") {
        let _ = parse(&input);
    }

    /// Token-shaped garbage (keywords, identifiers, punctuation strung
    /// together) also never panics and errors out cleanly.
    #[test]
    fn parser_survives_token_soup(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("fn".to_owned()),
                Just("while".to_owned()),
                Just("if".to_owned()),
                Just("let".to_owned()),
                Just("global".to_owned()),
                Just("int".to_owned()),
                Just("(".to_owned()),
                Just(")".to_owned()),
                Just("{".to_owned()),
                Just("}".to_owned()),
                Just(";".to_owned()),
                Just("=".to_owned()),
                Just("==".to_owned()),
                Just("+".to_owned()),
                "[a-z]{1,4}".prop_map(|s| s),
                "[0-9]{1,6}".prop_map(|s| s),
            ],
            0..40,
        )
    ) {
        let source = tokens.join(" ");
        let _ = parse(&source);
    }

    /// A known-good program still parses after injecting comments and
    /// whitespace between every token boundary that allows them.
    #[test]
    fn whitespace_and_comments_are_insignificant(pad in "[ \t\n]{0,3}") {
        let base = format!(
            "global int x = 0;{pad}// comment\nfn main(){pad}{{ x = 1;{pad}/* block */ }}"
        );
        let module = parse_module(&base).expect("padded program parses");
        prop_assert_eq!(module.functions.len(), 1);
    }
}

/// Deterministic regression corpus for inputs that once looked risky.
#[test]
fn regression_corpus() {
    let corpus = [
        "",
        ";",
        "fn",
        "fn main",
        "fn main() {",
        "fn main() { let x: int = ; }",
        "global int a[0];",
        "global int a[-3];",
        "fn main() { assert(); }",
        "fn main() { join; }",
        "fn main() { x[[1]] = 2; }",
        "fn main() { let t: thread = fork; }",
        "/* unterminated",
        "\"unterminated",
        "fn main() { let x: int = 1 + ; }",
        "fn main() { while () {} }",
        "fn f(x: int, x: int) {} fn main() {}",
        "fn main() { 0x; }",
        "fn main() { let x: int = 99999999999999999999999999; }",
    ];
    for source in corpus {
        assert!(parse(source).is_err(), "must reject: {source:?}");
    }
}

/// A larger well-formed program exercising every construct parses and
/// lowers.
#[test]
fn kitchen_sink_parses() {
    let program = parse(
        r#"
        global int scal = -7;
        global int arr[16];
        mutex m1;
        mutex m2;
        cond c1;

        fn helper(a: int, b: bool) {
            if (b) { return a * 2; } else { return a; }
        }

        fn worker(id: int) {
            let i: int = 0;
            while (i < 4) {
                lock(m1);
                arr[(id + i) & 15] = helper(i, i % 2 == 0);
                signal(c1);
                unlock(m1);
                yield;
                i = i + 1;
            }
        }

        fn main() {
            let t1: thread = fork worker(1);
            let t2: thread = fork worker(2);
            lock(m2);
            scal = scal + 1;
            unlock(m2);
            join t1;
            join t2;
            let total: int = 0;
            let j: int = 0;
            while (j < 16) {
                total = total + arr[j];
                j = j + 1;
            }
            assert(total >= 0 || scal != -6, "sink");
        }
        "#,
    )
    .expect("kitchen sink parses");
    assert_eq!(program.functions.len(), 3);
    assert!(program.instr_count() > 30);
}

mod ast_round_trip {
    //! Random-AST round trip: any grammatically well-formed module must
    //! survive `unparse` → `parse_module` unchanged (spans erased).
    //! Semantic validity is NOT required — the grammar alone is pinned.

    use clap_ir::ast::*;
    use clap_ir::error::Span;
    use clap_ir::unparse::{modules_equal_modulo_spans, unparse};
    use proptest::prelude::*;

    fn name() -> impl Strategy<Value = String> {
        // Identifiers that cannot collide with keywords.
        "[a-z][a-z0-9]{0,3}x".prop_map(|s| s)
    }

    fn expr(depth: u32) -> BoxedStrategy<Expr> {
        let leaf = prop_oneof![
            any::<i64>().prop_map(|v| Expr::Int(v, Span::unknown())),
            any::<bool>().prop_map(|b| Expr::Bool(b, Span::unknown())),
            name().prop_map(|n| Expr::Var(n, Span::unknown())),
        ];
        if depth == 0 {
            return leaf.boxed();
        }
        let sub = expr(depth - 1);
        prop_oneof![
            leaf,
            (name(), sub.clone()).prop_map(|(n, i)| Expr::Index(n, Box::new(i), Span::unknown())),
            (unop(), sub.clone()).prop_map(|(op, i)| Expr::Unary(op, Box::new(i), Span::unknown())),
            (binop(), sub.clone(), sub).prop_map(|(op, l, r)| Expr::Binary(
                op,
                Box::new(l),
                Box::new(r),
                Span::unknown()
            )),
        ]
        .boxed()
    }

    fn unop() -> impl Strategy<Value = UnOp> {
        prop_oneof![Just(UnOp::Neg), Just(UnOp::Not)]
    }

    fn binop() -> impl Strategy<Value = BinOp> {
        prop_oneof![
            Just(BinOp::Add),
            Just(BinOp::Sub),
            Just(BinOp::Mul),
            Just(BinOp::Div),
            Just(BinOp::Rem),
            Just(BinOp::Eq),
            Just(BinOp::Ne),
            Just(BinOp::Lt),
            Just(BinOp::Le),
            Just(BinOp::Gt),
            Just(BinOp::Ge),
            Just(BinOp::And),
            Just(BinOp::Or),
            Just(BinOp::BitAnd),
            Just(BinOp::BitOr),
            Just(BinOp::BitXor),
            Just(BinOp::Shl),
            Just(BinOp::Shr),
        ]
    }

    fn ty() -> impl Strategy<Value = Type> {
        prop_oneof![Just(Type::Int), Just(Type::Bool)]
    }

    fn ord() -> impl Strategy<Value = AtomicOrd> {
        prop_oneof![
            Just(AtomicOrd::Relaxed),
            Just(AtomicOrd::Acquire),
            Just(AtomicOrd::Release),
            Just(AtomicOrd::SeqCst),
        ]
    }

    fn stmt(depth: u32) -> BoxedStrategy<Stmt> {
        let e = || expr(2);
        let simple = prop_oneof![
            (name(), ty(), e()).prop_map(|(n, t, init)| Stmt::Let {
                name: n,
                ty: t,
                init: LetInit::Expr(init),
                span: Span::unknown(),
            }),
            (name(), e()).prop_map(|(n, rhs)| Stmt::Assign {
                lhs: LValue::Var(n),
                rhs,
                span: Span::unknown(),
            }),
            (name(), e(), e()).prop_map(|(n, i, rhs)| Stmt::Assign {
                lhs: LValue::Index(n, i),
                rhs,
                span: Span::unknown(),
            }),
            name().prop_map(|m| Stmt::Lock {
                mutex: m,
                span: Span::unknown()
            }),
            name().prop_map(|m| Stmt::Unlock {
                mutex: m,
                span: Span::unknown()
            }),
            e().prop_map(|h| Stmt::Join {
                handle: h,
                span: Span::unknown()
            }),
            (name(), name()).prop_map(|(c, m)| Stmt::Wait {
                cond: c,
                mutex: m,
                span: Span::unknown(),
            }),
            name().prop_map(|c| Stmt::Signal {
                cond: c,
                span: Span::unknown()
            }),
            name().prop_map(|c| Stmt::Broadcast {
                cond: c,
                span: Span::unknown()
            }),
            Just(Stmt::Yield {
                span: Span::unknown()
            }),
            (e(), "[ -~&&[^\"\\\\]]{0,12}").prop_map(|(c, msg)| Stmt::Assert {
                cond: c,
                message: msg,
                span: Span::unknown(),
            }),
            proptest::option::of(e()).prop_map(|v| Stmt::Return {
                value: v,
                span: Span::unknown(),
            }),
            (
                proptest::option::of(name().prop_map(LValue::Var)),
                name(),
                proptest::collection::vec(expr(1), 0..3)
            )
                .prop_map(|(dst, func, args)| Stmt::Call {
                    dst,
                    func,
                    args,
                    span: Span::unknown(),
                }),
            (name(), name(), proptest::collection::vec(expr(1), 0..3)).prop_map(
                |(n, func, args)| Stmt::Let {
                    name: n,
                    ty: Type::Thread,
                    init: LetInit::Fork { func, args },
                    span: Span::unknown(),
                }
            ),
            (name(), e()).prop_map(|(ch, value)| Stmt::Send {
                chan: ch,
                value,
                span: Span::unknown(),
            }),
            name().prop_map(|ch| Stmt::Close {
                chan: ch,
                span: Span::unknown()
            }),
            (e(), e()).prop_map(|(target, value)| Stmt::MailboxSend {
                target,
                value,
                span: Span::unknown(),
            }),
            (name(), name()).prop_map(|(n, ch)| Stmt::Let {
                name: n,
                ty: Type::Int,
                init: LetInit::Recv { chan: ch },
                span: Span::unknown(),
            }),
            (name(), name()).prop_map(|(n, ch)| Stmt::Let {
                name: n,
                ty: Type::Int,
                init: LetInit::TryRecv { chan: ch },
                span: Span::unknown(),
            }),
            (name(), name(), e()).prop_map(|(n, ch, value)| Stmt::Let {
                name: n,
                ty: Type::Int,
                init: LetInit::TrySend { chan: ch, value },
                span: Span::unknown(),
            }),
            (name(), name(), proptest::collection::vec(expr(1), 0..3)).prop_map(
                |(n, func, args)| Stmt::Let {
                    name: n,
                    ty: Type::Thread,
                    init: LetInit::SpawnActor { func, args },
                    span: Span::unknown(),
                }
            ),
            name().prop_map(|n| Stmt::Let {
                name: n,
                ty: Type::Int,
                init: LetInit::MailboxRecv,
                span: Span::unknown(),
            }),
            (name(), e(), ord()).prop_map(|(a, value, ord)| Stmt::AtomicStore {
                atomic: a,
                value,
                ord,
                span: Span::unknown(),
            }),
            (name(), name(), ord()).prop_map(|(n, a, ord)| Stmt::Let {
                name: n,
                ty: Type::Int,
                init: LetInit::AtomicLoad { atomic: a, ord },
                span: Span::unknown(),
            }),
            (name(), name(), e(), ord()).prop_map(|(n, a, value, ord)| Stmt::Let {
                name: n,
                ty: Type::Int,
                init: LetInit::FetchAdd {
                    atomic: a,
                    value,
                    ord
                },
                span: Span::unknown(),
            }),
            (name(), name(), e(), e(), ord()).prop_map(|(n, a, ex, d, ord)| Stmt::Let {
                name: n,
                ty: Type::Int,
                init: LetInit::Cas {
                    atomic: a,
                    expected: ex,
                    desired: d,
                    ord
                },
                span: Span::unknown(),
            }),
        ];
        if depth == 0 {
            return simple.boxed();
        }
        let body = proptest::collection::vec(stmt(depth - 1), 0..3);
        prop_oneof![
            simple,
            (e(), body.clone(), body.clone()).prop_map(|(c, t, els)| Stmt::If {
                cond: c,
                then_body: t,
                else_body: els,
                span: Span::unknown(),
            }),
            (e(), body).prop_map(|(c, b)| Stmt::While {
                cond: c,
                body: b,
                span: Span::unknown(),
            }),
        ]
        .boxed()
    }

    fn module() -> impl Strategy<Value = Module> {
        (
            proptest::collection::vec(
                (name(), proptest::option::of(1usize..9), -100i64..100),
                0..3,
            ),
            proptest::collection::vec(name(), 0..2),
            proptest::collection::vec(name(), 0..2),
            proptest::collection::vec((name(), 0usize..4), 0..2),
            proptest::collection::vec((name(), -100i64..100), 0..2),
            proptest::collection::vec(
                (
                    name(),
                    proptest::collection::vec((name(), ty()), 0..3),
                    proptest::collection::vec(stmt(2), 0..4),
                ),
                1..3,
            ),
        )
            .prop_map(
                |(globals, mutexes, conds, chans, atomics, functions)| Module {
                    globals: globals
                        .into_iter()
                        .map(|(n, len, init)| GlobalAst {
                            name: n,
                            len,
                            init: if len.is_some() { 0 } else { init },
                            span: Span::unknown(),
                        })
                        .collect(),
                    mutexes: mutexes
                        .into_iter()
                        .map(|n| NamedDecl {
                            name: n,
                            span: Span::unknown(),
                        })
                        .collect(),
                    conds: conds
                        .into_iter()
                        .map(|n| NamedDecl {
                            name: n,
                            span: Span::unknown(),
                        })
                        .collect(),
                    chans: chans
                        .into_iter()
                        .map(|(n, cap)| ChanAst {
                            name: n,
                            cap,
                            span: Span::unknown(),
                        })
                        .collect(),
                    atomics: atomics
                        .into_iter()
                        .map(|(n, init)| AtomicAst {
                            name: n,
                            init,
                            span: Span::unknown(),
                        })
                        .collect(),
                    functions: functions
                        .into_iter()
                        .map(|(n, params, body)| FunctionAst {
                            name: n,
                            params,
                            body,
                            span: Span::unknown(),
                        })
                        .collect(),
                },
            )
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn unparse_parse_round_trip(m in module()) {
            let text = unparse(&m);
            let back = clap_ir::parse_module(&text)
                .map_err(|e| TestCaseError::fail(format!("{e}\n---\n{text}")))?;
            prop_assert!(
                modules_equal_modulo_spans(&m, &back),
                "AST changed:\n{text}"
            );
        }
    }
}
