//! The ground-truth oracle: bounded exhaustive enumeration of
//! interleavings over the [`clap_vm`] interpreter.
//!
//! A depth-first search over the VM's *scheduler choices* — which runnable
//! thread steps next, and (under TSO/PSO) which buffered store drains next
//! — enumerates every execution of a program up to a preemption bound,
//! classifying each leaf (completed / deadlock / fault / assert failure)
//! and returning the complete set of failing executions, each identified
//! by its visible-event [`Fingerprint`]. No symbolic execution, no
//! constraint solving: pure operational semantics, which is what makes the
//! result usable as ground truth for the whole CLAP pipeline.
//!
//! # Partial-order reduction
//!
//! Steps that are invisible to other threads — pure computation,
//! terminators, store-buffer *pushes* (visibility happens at the drain),
//! passing asserts, and thread exits with an empty buffer — are executed
//! eagerly without branching: they commute with every concurrent action,
//! so exploring their interleavings would only re-derive identical
//! fingerprints. Branching happens exclusively on *visible* actions:
//! shared reads, SC stores, synchronization operations, buffer drains, and
//! failing asserts.
//!
//! # Preemption bounding
//!
//! Following context bounding (CHESS-style), a branch costs one unit of
//! budget when it switches away from a thread that could still act; forced
//! switches (previous thread blocked or exited) are free, and so is
//! executing a failing assert. Schedules beyond
//! [`OracleConfig::max_preemptions`] are pruned and counted in
//! [`OracleReport::bound_prunes`], so the report can say exactly what its
//! "no failure" verdict covers.

use crate::fingerprint::{Fingerprint, FingerprintMonitor};
use clap_ir::{AssertId, Instr, Operand, Program};
use clap_vm::{
    Action, Backend, Frame, Lineage, MemModel, NullMonitor, Outcome, SapPreviewKind, SharedSpec,
    Snapshot, StepPreview, ThreadId, Vm,
};
use std::collections::HashSet;

/// Bounds for one enumeration.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Memory model to enumerate under.
    pub model: MemModel,
    /// Maximum preemptive context switches per execution.
    pub max_preemptions: usize,
    /// Per-execution step fuse (loops that never terminate truncate the
    /// search rather than hanging it).
    pub max_steps: u64,
    /// Total executions (leaves) to explore before giving up on
    /// completeness.
    pub max_executions: u64,
    /// Cap on distinct failing executions collected.
    pub max_failing: usize,
    /// Which VM execution backend to enumerate with. The report is
    /// backend-independent (the equivalence suite pins this); the flat
    /// bytecode backend is simply faster.
    pub backend: Backend,
}

impl OracleConfig {
    /// Defaults (preemption bound 2) for `model`.
    pub fn new(model: MemModel) -> Self {
        OracleConfig {
            model,
            max_preemptions: 2,
            max_steps: 10_000,
            max_executions: 200_000,
            max_failing: 4_096,
            backend: Backend::default(),
        }
    }

    /// Overrides the preemption bound.
    pub fn with_max_preemptions(mut self, bound: usize) -> Self {
        self.max_preemptions = bound;
        self
    }

    /// Overrides the execution cap.
    pub fn with_max_executions(mut self, cap: u64) -> Self {
        self.max_executions = cap;
        self
    }

    /// Overrides the VM execution backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// One failing execution found by the oracle.
#[derive(Debug, Clone)]
pub struct FailingExecution {
    /// The scheduler-decision script that reproduces it: index `k` picks
    /// the `k`-th entry of `Vm::enabled_actions` at step `k`. Feed it to
    /// [`clap_vm::ScriptScheduler`] to re-execute the interleaving.
    pub choices: Vec<u32>,
    /// Canonical identity of the execution.
    pub fingerprint: Fingerprint,
    /// The fingerprint rendered one letter per visible event.
    pub letters: String,
    /// The assert that fired.
    pub assert: AssertId,
    /// Preemptive context switches the execution used.
    pub preemptions: usize,
}

/// What an enumeration found.
#[derive(Debug, Clone, Default)]
pub struct OracleReport {
    /// Distinct failing executions (deduplicated by fingerprint), in
    /// deterministic DFS order.
    pub failing: Vec<FailingExecution>,
    /// Leaves explored (failing + completed + deadlocked + faulted +
    /// truncated paths).
    pub executions: u64,
    /// Leaves where every thread exited.
    pub completed: u64,
    /// Deadlocked leaves.
    pub deadlocks: u64,
    /// Faulted leaves (out-of-bounds, unlock-not-held, …).
    pub faults: u64,
    /// Branches pruned by the preemption bound.
    pub bound_prunes: u64,
    /// `true` when a cap ([`OracleConfig::max_steps`],
    /// [`OracleConfig::max_executions`], [`OracleConfig::max_failing`])
    /// cut the search short of the bounded space.
    pub truncated: bool,
}

impl OracleReport {
    /// The search covered *every* execution within the preemption bound:
    /// the failing set is complete for schedules of ≤ bound preemptions,
    /// so membership checks against it are meaningful.
    pub fn complete_within_bound(&self) -> bool {
        !self.truncated
    }

    /// The search covered the entire schedule space — nothing was pruned
    /// by the preemption bound, so an empty failing set certifies the
    /// program correct (under the enumerated memory model).
    pub fn exhaustive(&self) -> bool {
        !self.truncated && self.bound_prunes == 0
    }

    /// The canonical schedule string: the lexicographically smallest
    /// failing letters rendering (stable across enumeration-order
    /// refactors), used by the snapshot tests.
    pub fn canonical_letters(&self) -> Option<&str> {
        self.failing
            .iter()
            .map(|f| f.letters.as_str())
            .min_by(|a, b| a.len().cmp(&b.len()).then(a.cmp(b)))
    }
}

/// Enumerates `program` under the sharing analysis the pipeline itself
/// uses (so oracle fingerprints and pipeline-replay fingerprints see the
/// same event vocabulary).
pub fn enumerate(program: &Program, config: &OracleConfig) -> OracleReport {
    enumerate_with_shared(
        program,
        clap_analysis::analyze(program).shared_spec(),
        config,
    )
}

/// Enumerates `program` with an explicit [`SharedSpec`].
pub fn enumerate_with_shared(
    program: &Program,
    shared: SharedSpec,
    config: &OracleConfig,
) -> OracleReport {
    let _span = clap_obs::span("check.oracle");
    let vm = Vm::with_backend(program, config.model, shared, config.backend);
    let mut mon = FingerprintMonitor::new();
    mon.register_thread(ThreadId::MAIN, vm.thread(ThreadId::MAIN).lineage.clone());
    let mut e = Enumerator {
        program,
        config,
        vm,
        mon,
        choices: Vec::new(),
        seen: HashSet::new(),
        report: OracleReport::default(),
        stop: false,
        pool: Vec::new(),
        action_pool: Vec::new(),
    };
    e.explore(None, 0, 0);
    let r = &e.report;
    clap_obs::add("check.oracle.executions", r.executions);
    clap_obs::add("check.oracle.failing", r.failing.len() as u64);
    clap_obs::add("check.oracle.bound_prunes", r.bound_prunes);
    // Deadlocked leaves are part of the channel contract (blocked sends
    // and recvs with no matching peer), so they get their own counter.
    clap_obs::add("check.oracle.deadlocks", r.deadlocks);
    clap_obs::add(
        "check.oracle.atomics",
        program.globals.iter().filter(|g| g.atomic).count() as u64,
    );
    e.report
}

struct Enumerator<'p, 'c> {
    program: &'p Program,
    config: &'c OracleConfig,
    vm: Vm<'p>,
    mon: FingerprintMonitor,
    /// Scheduler decisions taken on the current path (every step, eager
    /// ones included, so the path replays through a `ScriptScheduler`).
    choices: Vec<u32>,
    seen: HashSet<Fingerprint>,
    report: OracleReport,
    stop: bool,
    /// Retired branch snapshots, reused at the next branch of the same
    /// depth: `Vm::snapshot_into` overwrites a pooled snapshot's buffers
    /// in place, so steady-state DFS allocates nothing per branch.
    pool: Vec<Snapshot>,
    /// Retired enabled-action buffers, pooled the same way so the
    /// per-step `Vm::enabled_actions_into` query allocates nothing.
    action_pool: Vec<Vec<Action>>,
}

impl Enumerator<'_, '_> {
    fn explore(&mut self, last: Option<ThreadId>, preemptions: usize, path_steps: u64) {
        let mut actions = self.action_pool.pop().unwrap_or_default();
        self.explore_with(&mut actions, last, preemptions, path_steps);
        self.action_pool.push(actions);
    }

    fn explore_with(
        &mut self,
        actions: &mut Vec<Action>,
        last: Option<ThreadId>,
        preemptions: usize,
        path_steps: u64,
    ) {
        let mut steps = path_steps;
        loop {
            if self.stop {
                return;
            }
            if let Some(outcome) = self.vm.outcome().cloned() {
                self.outcome_leaf(&outcome, preemptions);
                return;
            }
            if steps >= self.config.max_steps {
                self.report.truncated = true;
                self.count_leaf();
                return;
            }
            self.vm.enabled_actions_into(actions);
            if actions.is_empty() {
                self.terminal_leaf();
                return;
            }
            // Eagerly run one local (commuting) step without branching.
            if let Some(i) = self.local_action(actions) {
                self.take(actions, i);
                steps += 1;
                continue;
            }
            let candidates = self.branch_candidates(actions);
            if candidates.is_empty() {
                // Everything would block: execute one blocking step so the
                // VM parks the thread and the run can reach Deadlock.
                self.take(actions, 0);
                steps += 1;
                continue;
            }
            let mut snap = self.pool.pop().unwrap_or_default();
            self.vm.snapshot_into(&mut snap);
            let mark = self.mon.mark();
            let depth = self.choices.len();
            // Evaluated at the branch state, before any candidate steps
            // drift the VM.
            let prev_active = last.map(|prev| self.still_active(actions, prev));
            let mut first = true;
            for (i, preemption_free) in candidates {
                let t = actions[i].thread();
                let mut p = preemptions;
                if !preemption_free {
                    if let (Some(prev), Some(true)) = (last, prev_active) {
                        if prev != t {
                            p += 1;
                        }
                    }
                }
                if p > self.config.max_preemptions {
                    self.report.bound_prunes += 1;
                    continue;
                }
                if !first {
                    self.vm.restore(&snap);
                    self.mon.rewind(mark);
                    self.choices.truncate(depth);
                }
                first = false;
                self.take(actions, i);
                self.explore(Some(t), p, steps + 1);
                if self.stop {
                    break;
                }
            }
            self.pool.push(snap);
            return;
        }
    }

    fn take(&mut self, actions: &[Action], i: usize) {
        self.choices.push(i as u32);
        self.vm.step(actions[i], &mut self.mon);
    }

    /// First action in enabled order whose step commutes with every
    /// concurrent action (the deterministic eager pick; matches the
    /// fallback order the replay scheduler uses).
    fn local_action(&self, actions: &[Action]) -> Option<usize> {
        for (i, a) in actions.iter().enumerate() {
            if let Action::Step(t) = *a {
                match self.vm.preview_step(t) {
                    StepPreview::Invisible | StepPreview::BufferedStore { .. } => return Some(i),
                    StepPreview::ThreadExit if self.vm.buffered_store_count(t) == 0 => {
                        return Some(i)
                    }
                    StepPreview::AssertStep if self.assert_passes(t) == Some(true) => {
                        return Some(i)
                    }
                    _ => {}
                }
            }
        }
        None
    }

    /// Visible branch points: `(action index, preemption-free)`. A failing
    /// assert is a branch (its position among other threads' visible
    /// events distinguishes failures) but costs no preemption budget — the
    /// bug firing should never be priced out of the bounded space.
    fn branch_candidates(&self, actions: &[Action]) -> Vec<(usize, bool)> {
        let mut out = Vec::new();
        for (i, a) in actions.iter().enumerate() {
            match *a {
                Action::Step(t) => match self.vm.preview_step(t) {
                    StepPreview::Sap { .. } => out.push((i, false)),
                    StepPreview::AssertStep if self.assert_passes(t) == Some(false) => {
                        out.push((i, true))
                    }
                    // Exits with a non-empty buffer are held until the
                    // buffered stores drain (an exit-flush is equivalent
                    // to draining everything and then exiting, so nothing
                    // is lost); WouldBlock steps change nothing.
                    _ => {}
                },
                Action::Drain(..) => out.push((i, false)),
            }
        }
        out
    }

    /// `prev` could still act (a switch away from it is preemptive).
    fn still_active(&self, actions: &[Action], prev: ThreadId) -> bool {
        actions.iter().any(|a| match *a {
            Action::Step(t) if t == prev => {
                !matches!(self.vm.preview_step(t), StepPreview::WouldBlock)
            }
            Action::Drain(t, _) => t == prev,
            _ => false,
        })
    }

    /// Evaluates the assert at `t`'s instruction pointer without stepping
    /// (asserts read locals only, so the check is side-effect free).
    fn assert_passes(&self, t: ThreadId) -> Option<bool> {
        let frame = self.vm.thread(t).frame();
        let block = self.program.function(frame.func).block(frame.block);
        match block.instrs.get(frame.ip) {
            Some(Instr::Assert { cond, .. }) => Some(operand_value(frame, *cond) != 0),
            _ => None,
        }
    }

    fn count_leaf(&mut self) {
        self.report.executions += 1;
        if self.report.executions >= self.config.max_executions {
            self.report.truncated = true;
            self.stop = true;
        }
    }

    fn terminal_leaf(&mut self) {
        let all_exited = self
            .vm
            .threads()
            .iter()
            .all(|t| t.status == clap_vm::Status::Exited);
        if all_exited {
            self.report.completed += 1;
        } else {
            self.report.deadlocks += 1;
        }
        self.count_leaf();
    }

    fn outcome_leaf(&mut self, outcome: &Outcome, preemptions: usize) {
        match outcome {
            Outcome::AssertFailed { assert, .. } => {
                let fingerprint = self.mon.fingerprint(Some(*assert));
                if self.seen.insert(fingerprint.clone()) {
                    let letters = fingerprint.letters();
                    self.report.failing.push(FailingExecution {
                        choices: self.choices.clone(),
                        fingerprint,
                        letters,
                        assert: *assert,
                        preemptions,
                    });
                    if self.report.failing.len() >= self.config.max_failing {
                        self.report.truncated = true;
                        self.stop = true;
                    }
                }
            }
            Outcome::Fault { .. } => self.report.faults += 1,
            // `step` never sets these; `run`-only outcomes.
            Outcome::Completed | Outcome::Deadlock | Outcome::StepLimit => {}
        }
        self.count_leaf();
    }
}

fn operand_value(frame: &Frame, op: Operand) -> i64 {
    match op {
        Operand::Local(l) => frame.locals[l.index()],
        Operand::Const(c) => c,
    }
}

/// Re-executes a decision script and returns the `(lineage, per-thread SAP
/// index)` sequence of its visible SAPs in execution order — buffered
/// stores are placed at their *visibility* point (their drain, or
/// immediately before the fence that flushes them), which is exactly the
/// convention of [`clap_constraints::Schedule`]. The second component is
/// the run's outcome.
///
/// This is the bridge from an oracle [`FailingExecution`] to the
/// pipeline's replayer: map each `(lineage, po)` through a `SymTrace`'s
/// `lineages`/`per_thread` tables to get a `SapId` order.
///
/// # Panics
///
/// Panics when `choices` does not fit the program (an index out of range
/// of the enabled actions at some step) — scripts must come from an
/// enumeration of the same program under the same model.
pub fn schedule_of_choices(
    program: &Program,
    model: MemModel,
    shared: SharedSpec,
    choices: &[u32],
) -> (Vec<(Lineage, u64)>, Option<Outcome>) {
    let mut vm = Vm::with_shared(program, model, shared);
    let mut order: Vec<(Lineage, u64)> = Vec::new();
    for &c in choices {
        if vm.outcome().is_some() {
            break;
        }
        let actions = vm.enabled_actions();
        let action = *actions
            .get(c as usize)
            .unwrap_or_else(|| panic!("choice {c} out of range ({} enabled)", actions.len()));
        match action {
            Action::Step(t) => {
                let lineage = vm.thread(t).lineage.clone();
                let flush_buffer_of = |vm: &Vm<'_>, order: &mut Vec<(Lineage, u64)>| {
                    for store in vm.buffer(t).iter() {
                        order.push((lineage.clone(), store.po_index));
                    }
                };
                match vm.preview_step(t) {
                    StepPreview::Sap { po_index, kind } => {
                        // Fencing SAPs flush the executing thread's buffer
                        // first; those commits precede the SAP itself.
                        // Atomic fences mirror the VM: everything fences
                        // fully except — under C11 — relaxed/acquire
                        // loads (no flush) and relaxed/acquire RMW/CAS
                        // (FIFO prefix up to their own location only).
                        use clap_ir::AtomicOrd;
                        let weak = |ord: AtomicOrd| {
                            model == MemModel::C11
                                && matches!(ord, AtomicOrd::Relaxed | AtomicOrd::Acquire)
                        };
                        match kind {
                            SapPreviewKind::Read(_) | SapPreviewKind::Write(_) => {}
                            SapPreviewKind::AtomicLoad(_, ord) if weak(ord) => {}
                            SapPreviewKind::AtomicRmw(addr, ord)
                            | SapPreviewKind::AtomicCas(addr, ord)
                                if weak(ord) =>
                            {
                                let entries: Vec<_> =
                                    vm.buffer(t).iter().map(|s| (s.addr, s.po_index)).collect();
                                if let Some(last) = entries.iter().rposition(|&(a, _)| a == addr) {
                                    for &(_, po) in &entries[..=last] {
                                        order.push((lineage.clone(), po));
                                    }
                                }
                            }
                            _ => flush_buffer_of(&vm, &mut order),
                        }
                        order.push((lineage.clone(), po_index));
                    }
                    StepPreview::ThreadExit => flush_buffer_of(&vm, &mut order),
                    StepPreview::Invisible
                    | StepPreview::BufferedStore { .. }
                    | StepPreview::AssertStep
                    | StepPreview::WouldBlock => {}
                }
            }
            Action::Drain(t, addr) => {
                let po = vm.drain_preview(t, addr).expect("drain has a source store");
                order.push((vm.thread(t).lineage.clone(), po));
            }
        }
        vm.step(action, &mut NullMonitor);
    }
    // Stores still buffered when the run ended (e.g. the assert fired
    // first) never became visible, but their SAPs are part of the trace —
    // a full schedule must place them somewhere, so they go at the end,
    // in thread order, FIFO per buffer (the replayer only consumes these
    // positions if it ever drains them, which a reproducing run stops
    // short of).
    for thread in vm.threads() {
        for store in vm.buffer(thread.id).iter() {
            order.push((thread.lineage.clone(), store.po_index));
        }
    }
    let outcome = vm.outcome().cloned();
    (order, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clap_vm::ScriptScheduler;

    const LOST_UPDATE: &str = "global int x = 0;
         fn w() { let v: int = x; yield; x = v + 1; }
         fn main() { let a: thread = fork w(); let b: thread = fork w();
                     join a; join b; assert(x == 2, \"lost\"); }";

    const LOCKED: &str = "global int x = 0; mutex m;
         fn w() { lock(m); let v: int = x; x = v + 1; unlock(m); }
         fn main() { let a: thread = fork w(); let b: thread = fork w();
                     join a; join b; assert(x == 2); }";

    const SB: &str = "global int x = 0; global int y = 0;
         global int r1 = -1; global int r2 = -1;
         fn t1() { x = 1; r1 = y; }
         fn t2() { y = 1; r2 = x; }
         fn main() {
             let a: thread = fork t1(); let b: thread = fork t2();
             join a; join b;
             assert(r1 + r2 > 0, \"SB\");
         }";

    const MP: &str = "global int data = 0; global int flag = 0; global int seen = -1;
         fn writer() { data = 1; flag = 1; }
         fn reader() { let f: int = flag; if (f == 1) { seen = data; } }
         fn main() {
             let w: thread = fork writer(); let r: thread = fork reader();
             join w; join r;
             assert(seen != 0, \"MP\");
         }";

    #[test]
    fn lost_update_failures_found_under_sc() {
        let program = clap_ir::parse(LOST_UPDATE).unwrap();
        let report = enumerate(&program, &OracleConfig::new(MemModel::Sc));
        assert!(report.complete_within_bound());
        assert!(!report.failing.is_empty(), "the lost update must be found");
        assert!(report.completed > 0, "correct interleavings exist too");
        for f in &report.failing {
            assert_eq!(f.fingerprint.assert, Some(f.assert));
            assert!(f.preemptions <= 2);
        }
    }

    #[test]
    fn locked_program_certified_correct() {
        let program = clap_ir::parse(LOCKED).unwrap();
        let config = OracleConfig::new(MemModel::Sc).with_max_preemptions(8);
        let report = enumerate(&program, &config);
        assert!(report.exhaustive(), "small program, wide bound: {report:?}");
        assert!(report.failing.is_empty());
        assert_eq!(report.deadlocks, 0);
    }

    #[test]
    fn store_buffering_litmus_differentiates_sc_from_tso() {
        let program = clap_ir::parse(SB).unwrap();
        let sc = enumerate(
            &program,
            &OracleConfig::new(MemModel::Sc).with_max_preemptions(8),
        );
        assert!(sc.exhaustive(), "{sc:?}");
        assert!(
            sc.failing.is_empty(),
            "SC forbids r1 == 0 && r2 == 0: {:?}",
            sc.canonical_letters()
        );
        let tso = enumerate(&program, &OracleConfig::new(MemModel::Tso));
        assert!(
            !tso.failing.is_empty(),
            "TSO store buffering admits the SB weak result"
        );
    }

    #[test]
    fn message_passing_litmus_differentiates_tso_from_pso() {
        let program = clap_ir::parse(MP).unwrap();
        let tso = enumerate(
            &program,
            &OracleConfig::new(MemModel::Tso).with_max_preemptions(8),
        );
        assert!(tso.exhaustive(), "{tso:?}");
        assert!(
            tso.failing.is_empty(),
            "TSO drains FIFO, so flag=1 implies data=1: {:?}",
            tso.canonical_letters()
        );
        let pso = enumerate(&program, &OracleConfig::new(MemModel::Pso));
        assert!(!pso.failing.is_empty(), "PSO reorders the data/flag stores");
    }

    #[test]
    fn enumeration_is_deterministic() {
        let program = clap_ir::parse(LOST_UPDATE).unwrap();
        let config = OracleConfig::new(MemModel::Sc);
        let a = enumerate(&program, &config);
        let b = enumerate(&program, &config);
        assert_eq!(a.executions, b.executions);
        assert_eq!(a.failing.len(), b.failing.len());
        for (x, y) in a.failing.iter().zip(&b.failing) {
            assert_eq!(x.choices, y.choices);
            assert_eq!(x.letters, y.letters);
        }
    }

    #[test]
    fn choices_replay_through_script_scheduler() {
        // The chooser-hook contract: a recorded decision script re-executes
        // the exact interleaving through the ordinary `Vm::run` loop.
        let program = clap_ir::parse(LOST_UPDATE).unwrap();
        let shared = clap_analysis::analyze(&program).shared_spec();
        let report = enumerate(&program, &OracleConfig::new(MemModel::Sc));
        let failing = report.failing.first().expect("failures exist");
        let mut vm = Vm::with_shared(&program, MemModel::Sc, shared);
        let mut sched = ScriptScheduler::new(failing.choices.clone());
        let mut mon = FingerprintMonitor::new();
        let outcome = vm.run(&mut sched, &mut mon);
        assert!(!sched.overran(), "script fits the program");
        let Outcome::AssertFailed { assert, .. } = outcome else {
            panic!("script must re-fail the assert, got {outcome:?}");
        };
        assert_eq!(mon.fingerprint(Some(assert)), failing.fingerprint);
    }

    #[test]
    fn schedule_of_choices_places_buffered_stores_at_visibility() {
        let program = clap_ir::parse(SB).unwrap();
        let shared = clap_analysis::analyze(&program).shared_spec();
        let report = enumerate(&program, &OracleConfig::new(MemModel::Tso));
        let failing = report.failing.first().expect("TSO SB failures exist");
        let (order, outcome) =
            schedule_of_choices(&program, MemModel::Tso, shared, &failing.choices);
        assert!(matches!(outcome, Some(Outcome::AssertFailed { .. })));
        // Every (lineage, po) pair is unique: each SAP becomes visible once.
        let mut seen = HashSet::new();
        for pair in &order {
            assert!(seen.insert(pair.clone()), "duplicate visibility: {pair:?}");
        }
        // Per thread, drains of the same thread appear in po order only
        // under TSO for same-address stores; but program order of *sync*
        // SAPs is always preserved.
        assert!(!order.is_empty());
    }
}
