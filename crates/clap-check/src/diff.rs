//! The differential harness: pipeline vs. oracle, per memory model.
//!
//! For each requested memory model the harness runs the bounded oracle
//! ([`crate::oracle`]) and the full CLAP pipeline
//! ([`clap_core::Pipeline`]) over the same program and cross-checks the
//! two answers. Because the oracle is bounded and the pipeline's record
//! phase is randomized, not every mismatch is a bug — the verdict
//! taxonomy distinguishes **hard disagreements** (a soundness or
//! completeness violation somewhere in the pipeline, or an oracle bug)
//! from **soft notes** (a randomized search missing a rare interleaving,
//! a solver giving up inside its budget).
//!
//! | pipeline ↓ / oracle → | failing set non-empty | empty, exhaustive | empty, bounded |
//! |---|---|---|---|
//! | reproduced | must be *in* the set when within bound | **hard** (oracle missed it) | OK (beyond bound) |
//! | `NoFailureFound` | soft (record miss) | agree | agree |
//! | `Unsat` (certified) | **hard** (false unsat) | **hard** (recorder found a failure the oracle denies) | soft |
//! | `SearchExhausted` / `SolverBudget` | soft | soft | soft |
//! | decode/symex/replay error | **hard** (pipeline broken) | **hard** | **hard** |

use crate::fingerprint::FingerprintMonitor;
use crate::oracle::{enumerate_with_shared, OracleConfig, OracleReport};
use clap_core::{AutoConfig, Pipeline, PipelineConfig, PipelineError, SolverChoice};
use clap_ir::Program;
use clap_vm::MemModel;

/// Configuration for one differential run.
#[derive(Debug, Clone)]
pub struct DiffConfig {
    /// Memory models to check (each gets its own oracle + pipeline run).
    pub models: Vec<MemModel>,
    /// Oracle preemption bound.
    pub max_preemptions: usize,
    /// Oracle per-execution step fuse.
    pub max_steps: u64,
    /// Oracle execution cap.
    pub max_executions: u64,
    /// Pipeline record-phase seed budget.
    pub seed_budget: u64,
    /// Pipeline record-phase stickiness sweep.
    pub stickiness: Vec<f64>,
    /// Pipeline solver.
    pub solver: SolverChoice,
    /// Treat a record-phase miss (oracle found a failure the random
    /// sweep did not) as a hard disagreement. Off by default: random
    /// exploration is allowed to miss rare interleavings.
    pub strict_record: bool,
}

impl Default for DiffConfig {
    fn default() -> Self {
        DiffConfig {
            models: vec![MemModel::Sc],
            max_preemptions: 2,
            max_steps: 10_000,
            max_executions: 200_000,
            seed_budget: 20_000,
            stickiness: vec![0.9, 0.7, 0.5, 0.3],
            solver: SolverChoice::Auto(AutoConfig::default()),
            strict_record: false,
        }
    }
}

impl DiffConfig {
    /// Checks under `models` instead of the default (SC only).
    pub fn with_models(mut self, models: Vec<MemModel>) -> Self {
        self.models = models;
        self
    }

    /// Overrides the record-phase budget (tests use small sweeps).
    pub fn with_seed_budget(mut self, budget: u64, stickiness: Vec<f64>) -> Self {
        self.seed_budget = budget;
        self.stickiness = stickiness;
        self
    }

    /// Overrides the oracle's execution cap.
    pub fn with_max_executions(mut self, cap: u64) -> Self {
        self.max_executions = cap;
        self
    }

    fn oracle_config(&self, model: MemModel) -> OracleConfig {
        let mut c = OracleConfig::new(model);
        c.max_preemptions = self.max_preemptions;
        c.max_steps = self.max_steps;
        c.max_executions = self.max_executions;
        c
    }

    fn pipeline_config(&self, model: MemModel) -> PipelineConfig {
        let mut c = PipelineConfig::new(model);
        c.seed_budget = self.seed_budget;
        c.stickiness = self.stickiness.clone();
        c.solver = self.solver.clone();
        c
    }
}

/// The cross-check verdict for one memory model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Pipeline reproduced the bug and every applicable oracle check
    /// passed.
    Sound {
        /// `Some(true)` when the replayed schedule's fingerprint was
        /// found in the oracle's (complete-within-bound) failing set;
        /// `None` when the check did not apply — oracle truncated, or the
        /// replay used more context switches than the oracle's bound.
        oracle_member: Option<bool>,
        /// Visible-event context switches of the replayed execution.
        switches: usize,
    },
    /// Neither side found a failing interleaving.
    NoFailure {
        /// The oracle's empty answer covered the *entire* schedule space
        /// (no preemption-bound prunes), i.e. the program is certified
        /// correct under this model.
        exhaustive: bool,
    },
    /// Soft: the oracle holds failing interleavings the randomized record
    /// phase never hit (hard only under [`DiffConfig::strict_record`]).
    RecordMiss {
        /// Size of the oracle's failing set.
        oracle_failing: usize,
    },
    /// Soft: the solver gave up within its budget/bounds — explicitly not
    /// a completeness claim, so the oracle cannot contradict it.
    SolverInconclusive {
        /// The pipeline error, rendered.
        error: String,
    },
    /// **Hard**: the pipeline certified `Unsat` while the oracle holds
    /// failing interleavings.
    FalseUnsat {
        /// Size of the oracle's failing set.
        oracle_failing: usize,
    },
    /// **Hard**: the pipeline's replayed schedule is within the oracle's
    /// bound but missing from its complete failing set.
    UnsoundSchedule {
        /// The replayed execution's letters rendering.
        letters: String,
    },
    /// **Hard**: the pipeline demonstrated a failure (a reproduced replay,
    /// or a recorded failing run behind a certified `Unsat`) that the
    /// exhaustive oracle claims cannot exist — an oracle/VM bug.
    MissedByOracle,
    /// **Hard**: the pipeline failed structurally (decode, symex, or
    /// replay error) on a program the oracle handles fine.
    PipelineBroken {
        /// The pipeline error, rendered.
        error: String,
    },
}

impl Verdict {
    /// `true` when this verdict is a disagreement that must fail the
    /// check run.
    pub fn is_hard(&self, strict_record: bool) -> bool {
        match self {
            Verdict::Sound { oracle_member, .. } => *oracle_member == Some(false),
            Verdict::NoFailure { .. } | Verdict::SolverInconclusive { .. } => false,
            Verdict::RecordMiss { .. } => strict_record,
            Verdict::FalseUnsat { .. }
            | Verdict::UnsoundSchedule { .. }
            | Verdict::MissedByOracle
            | Verdict::PipelineBroken { .. } => true,
        }
    }

    /// Short machine-grepable tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Verdict::Sound { .. } => "sound",
            Verdict::NoFailure { .. } => "no-failure",
            Verdict::RecordMiss { .. } => "record-miss",
            Verdict::SolverInconclusive { .. } => "solver-inconclusive",
            Verdict::FalseUnsat { .. } => "FALSE-UNSAT",
            Verdict::UnsoundSchedule { .. } => "UNSOUND-SCHEDULE",
            Verdict::MissedByOracle => "MISSED-BY-ORACLE",
            Verdict::PipelineBroken { .. } => "PIPELINE-BROKEN",
        }
    }
}

/// One model's differential result.
#[derive(Debug)]
pub struct DiffOutcome {
    /// The memory model checked.
    pub model: MemModel,
    /// The cross-check verdict.
    pub verdict: Verdict,
    /// What the oracle found (kept for reporting).
    pub oracle: OracleReport,
}

/// The full differential report for one program.
#[derive(Debug)]
pub struct DiffReport {
    /// One outcome per requested memory model.
    pub outcomes: Vec<DiffOutcome>,
    /// Whether record misses were configured to be hard.
    pub strict_record: bool,
}

impl DiffReport {
    /// `true` when no outcome is a hard disagreement.
    pub fn ok(&self) -> bool {
        !self
            .outcomes
            .iter()
            .any(|o| o.verdict.is_hard(self.strict_record))
    }

    /// One line per model, for CLI output and failure messages.
    pub fn summary(&self) -> String {
        self.outcomes
            .iter()
            .map(|o| {
                format!(
                    "{:?}: {} (oracle: {} failing / {} executions{}{})",
                    o.model,
                    o.verdict.tag(),
                    o.oracle.failing.len(),
                    o.oracle.executions,
                    if o.oracle.exhaustive() {
                        ", exhaustive"
                    } else if o.oracle.complete_within_bound() {
                        ", complete within bound"
                    } else {
                        ", truncated"
                    },
                    match &o.verdict {
                        Verdict::SolverInconclusive { error }
                        | Verdict::PipelineBroken { error } => format!("; {error}"),
                        Verdict::UnsoundSchedule { letters } => format!("; replay {letters}"),
                        _ => String::new(),
                    },
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Differentially checks `source` under `config`.
///
/// # Errors
///
/// Returns the frontend error when `source` does not parse — everything
/// downstream of parsing is a verdict, not an error.
pub fn diff_source(source: &str, config: &DiffConfig) -> Result<DiffReport, clap_ir::Error> {
    let program = clap_ir::parse(source)?;
    Ok(diff_program(&program, config))
}

/// Differentially checks `program` under `config`.
pub fn diff_program(program: &Program, config: &DiffConfig) -> DiffReport {
    let _span = clap_obs::span("check.diff");
    let pipeline = Pipeline::new(program.clone());
    let outcomes = config
        .models
        .iter()
        .map(|&model| {
            let oracle = enumerate_with_shared(
                program,
                pipeline.sharing().shared_spec(),
                &config.oracle_config(model),
            );
            let verdict = check_model(&pipeline, config, model, &oracle);
            clap_obs::event(
                "check.verdict",
                &[
                    ("model", format!("{model:?}")),
                    ("verdict", verdict.tag().to_string()),
                ],
            );
            if verdict.is_hard(config.strict_record) {
                clap_obs::add("check.hard_disagreements", 1);
            }
            DiffOutcome {
                model,
                verdict,
                oracle,
            }
        })
        .collect();
    DiffReport {
        outcomes,
        strict_record: config.strict_record,
    }
}

fn check_model(
    pipeline: &Pipeline,
    config: &DiffConfig,
    model: MemModel,
    oracle: &OracleReport,
) -> Verdict {
    let _span = clap_obs::span("check.pipeline");
    let pconfig = config.pipeline_config(model);
    let recorded = match pipeline.record_failure(&pconfig) {
        Ok(r) => r,
        Err(PipelineError::NoFailureFound) => {
            return if oracle.failing.is_empty() {
                Verdict::NoFailure {
                    exhaustive: oracle.exhaustive(),
                }
            } else {
                Verdict::RecordMiss {
                    oracle_failing: oracle.failing.len(),
                }
            };
        }
        Err(e) => {
            return Verdict::PipelineBroken {
                error: e.to_string(),
            }
        }
    };
    match pipeline.reproduce_from(&pconfig, &recorded) {
        Ok(report) => {
            // Soundness: replay the pipeline's schedule under a
            // fingerprint monitor and check oracle membership.
            let mut mon = FingerprintMonitor::new();
            match pipeline.replay_with_monitor(&pconfig, &recorded, &report.schedule, &mut mon) {
                Ok(_replay) => {
                    let fp = mon.fingerprint(Some(recorded.assert));
                    let switches = fp.switches();
                    if oracle.complete_within_bound() && switches <= config.max_preemptions {
                        let member = oracle.failing.iter().any(|f| f.fingerprint == fp);
                        if member {
                            Verdict::Sound {
                                oracle_member: Some(true),
                                switches,
                            }
                        } else {
                            Verdict::UnsoundSchedule {
                                letters: fp.letters(),
                            }
                        }
                    } else if oracle.failing.is_empty() && oracle.exhaustive() {
                        // A reproduced failure cannot coexist with an
                        // exhaustive empty oracle.
                        Verdict::MissedByOracle
                    } else {
                        Verdict::Sound {
                            oracle_member: None,
                            switches,
                        }
                    }
                }
                Err(e) => Verdict::PipelineBroken {
                    error: e.to_string(),
                },
            }
        }
        Err(PipelineError::Unsat) => {
            if !oracle.failing.is_empty() {
                Verdict::FalseUnsat {
                    oracle_failing: oracle.failing.len(),
                }
            } else if oracle.exhaustive() {
                // The recorder observed a failing run, yet the exhaustive
                // oracle says no failing interleaving exists: someone is
                // wrong, and it is not the recorder (it has a witness).
                Verdict::MissedByOracle
            } else {
                Verdict::SolverInconclusive {
                    error: "certified unsat, oracle truncated — cannot adjudicate".into(),
                }
            }
        }
        Err(e @ (PipelineError::SearchExhausted | PipelineError::SolverBudget)) => {
            Verdict::SolverInconclusive {
                error: e.to_string(),
            }
        }
        Err(e) => Verdict::PipelineBroken {
            error: e.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(models: Vec<MemModel>) -> DiffConfig {
        DiffConfig::default()
            .with_models(models)
            .with_seed_budget(600, vec![0.7, 0.3])
    }

    #[test]
    fn lost_update_is_sound_under_sc() {
        let report = diff_source(
            "global int x = 0;
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2, \"lost\"); }",
            &quick(vec![MemModel::Sc]),
        )
        .unwrap();
        assert!(report.ok(), "{}", report.summary());
        let v = &report.outcomes[0].verdict;
        assert!(
            matches!(
                v,
                Verdict::Sound {
                    oracle_member: Some(true),
                    ..
                } | Verdict::Sound {
                    oracle_member: None,
                    ..
                }
            ),
            "pipeline must reproduce the lost update: {}",
            report.summary()
        );
    }

    #[test]
    fn locked_program_agrees_on_no_failure() {
        let report = diff_source(
            "global int x = 0; mutex m;
             fn w() { lock(m); let v: int = x; x = v + 1; unlock(m); }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2); }",
            &quick(vec![MemModel::Sc, MemModel::Tso]),
        )
        .unwrap();
        assert!(report.ok(), "{}", report.summary());
        for o in &report.outcomes {
            assert!(
                matches!(o.verdict, Verdict::NoFailure { .. }),
                "{}",
                report.summary()
            );
        }
    }

    #[test]
    fn sb_litmus_diffs_clean_across_models() {
        let report = diff_source(
            "global int x = 0; global int y = 0;
             global int r1 = -1; global int r2 = -1;
             fn t1() { x = 1; r1 = y; }
             fn t2() { y = 1; r2 = x; }
             fn main() {
                 let a: thread = fork t1(); let b: thread = fork t2();
                 join a; join b;
                 assert(r1 + r2 > 0, \"SB\");
             }",
            &quick(vec![MemModel::Sc, MemModel::Tso]),
        )
        .unwrap();
        assert!(report.ok(), "{}", report.summary());
        // SC: no weak result exists; TSO: the pipeline must find it.
        assert!(
            matches!(report.outcomes[0].verdict, Verdict::NoFailure { .. }),
            "{}",
            report.summary()
        );
        assert!(
            matches!(report.outcomes[1].verdict, Verdict::Sound { .. }),
            "{}",
            report.summary()
        );
    }

    #[test]
    fn summary_mentions_every_model() {
        let report = diff_source(
            "fn main() { yield; }",
            &quick(vec![MemModel::Sc, MemModel::Pso]),
        )
        .unwrap();
        let s = report.summary();
        assert!(s.contains("Sc") && s.contains("Pso"), "{s}");
        assert!(report.ok());
    }
}
