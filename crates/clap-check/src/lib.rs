//! Differential checking oracle for the CLAP pipeline.
//!
//! The pipeline (`clap-core`) answers "can this recorded failure be
//! reproduced?" with symbolic execution and constraint solving — a long
//! chain of clever machinery, every link of which can be subtly wrong.
//! This crate answers the same question by brute force: enumerate every
//! interleaving up to a preemption bound directly on the interpreter
//! ([`oracle`]), and treat that as ground truth. The differential harness
//! ([`diff`]) then runs a program through both and cross-checks:
//!
//! - **Soundness** — every schedule the pipeline reports must be in the
//!   oracle's failing set (when the oracle is complete for that bound) and
//!   must replay to the bug.
//! - **Completeness** — when the oracle proves failing interleavings
//!   exist, the pipeline must not certify `Unsat`; when the oracle proves
//!   none exist, a certified `Unsat` is confirmed correct.
//!
//! Program inputs come from the examples, the regression corpus, or the
//! seeded random generator ([`gen`]); counterexamples are minimized by the
//! shrinker ([`shrink`]) before being reported.

#![warn(missing_docs)]

pub mod diff;
pub mod fingerprint;
pub mod gen;
pub mod oracle;
pub mod shrink;

pub use diff::{diff_program, diff_source, DiffConfig, DiffOutcome, DiffReport, Verdict};
pub use fingerprint::{Event, Fingerprint, FingerprintMonitor, Mark};
pub use gen::{AtomicSpec, ChanSpec, ProgramSpec};
pub use oracle::{
    enumerate, enumerate_with_shared, schedule_of_choices, FailingExecution, OracleConfig,
    OracleReport,
};
pub use shrink::shrink_source;
