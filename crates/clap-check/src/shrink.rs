//! Counterexample shrinking: greedy delta-debugging over the `.clap` AST.
//!
//! Given a source program and a predicate ("still disagrees", "still
//! fails the oracle", …), the shrinker repeatedly tries structural
//! deletions — whole functions, single statements (subtrees included),
//! then unused declarations — keeping any deletion after which the
//! program still parses, lowers, *and* satisfies the predicate, until no
//! single deletion survives. The result is a local minimum: every
//! remaining statement is load-bearing for the predicate.
//!
//! Candidates are validated through the real frontend (`clap_ir::parse`
//! on the unparsed module), so the shrinker can never hand the predicate
//! an ill-formed program — deleting a function that is still forked
//! simply fails lowering and is skipped.

use clap_ir::ast::{Module, Stmt};
use clap_ir::unparse::unparse;

/// Minimizes `source` under `predicate`.
///
/// Returns `None` when `source` itself does not parse or does not satisfy
/// the predicate (there is nothing to shrink towards); otherwise returns
/// the minimized source, which always still parses and satisfies the
/// predicate. The original is returned unchanged when already minimal.
pub fn shrink_source(source: &str, mut predicate: impl FnMut(&str) -> bool) -> Option<String> {
    let _span = clap_obs::span("check.shrink");
    let mut module = clap_ir::parse_module(source).ok()?;
    if clap_ir::parse(source).is_err() || !predicate(source) {
        return None;
    }
    let mut tries = 0u64;
    let mut keeps = 0u64;
    loop {
        let mut progressed = false;
        for candidate in candidates(&module) {
            let src = unparse(&candidate);
            tries += 1;
            if clap_ir::parse(&src).is_ok() && predicate(&src) {
                keeps += 1;
                module = candidate;
                progressed = true;
                break;
            }
        }
        if !progressed {
            break;
        }
    }
    clap_obs::add("check.shrink.tries", tries);
    clap_obs::add("check.shrink.kept", keeps);
    Some(unparse(&module))
}

/// All single-deletion neighbors of `module`, largest deletions first.
fn candidates(module: &Module) -> Vec<Module> {
    let mut out = Vec::new();
    // Whole non-main functions.
    for (i, f) in module.functions.iter().enumerate() {
        if f.name != "main" {
            let mut m = module.clone();
            m.functions.remove(i);
            out.push(m);
        }
    }
    // Single statements (a deletion takes the whole subtree with it).
    for (fi, f) in module.functions.iter().enumerate() {
        for n in 0..count_stmts(&f.body) {
            let mut m = module.clone();
            let mut target = n;
            let removed = remove_nth(&mut m.functions[fi].body, &mut target);
            debug_assert!(removed);
            out.push(m);
        }
    }
    // Declarations (only removable once nothing references them).
    for i in 0..module.globals.len() {
        let mut m = module.clone();
        m.globals.remove(i);
        out.push(m);
    }
    for i in 0..module.mutexes.len() {
        let mut m = module.clone();
        m.mutexes.remove(i);
        out.push(m);
    }
    for i in 0..module.conds.len() {
        let mut m = module.clone();
        m.conds.remove(i);
        out.push(m);
    }
    for i in 0..module.chans.len() {
        let mut m = module.clone();
        m.chans.remove(i);
        out.push(m);
    }
    for i in 0..module.atomics.len() {
        let mut m = module.clone();
        m.atomics.remove(i);
        out.push(m);
    }
    out
}

/// Number of statements in `body`, nested bodies included.
fn count_stmts(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| {
            1 + match s {
                Stmt::If {
                    then_body,
                    else_body,
                    ..
                } => count_stmts(then_body) + count_stmts(else_body),
                Stmt::While { body, .. } => count_stmts(body),
                _ => 0,
            }
        })
        .sum()
}

/// Removes the `*n`-th statement in DFS pre-order; returns `true` when the
/// removal happened (and `*n` is meaningless afterwards).
fn remove_nth(body: &mut Vec<Stmt>, n: &mut usize) -> bool {
    let mut i = 0;
    while i < body.len() {
        if *n == 0 {
            body.remove(i);
            return true;
        }
        *n -= 1;
        let descended = match &mut body[i] {
            Stmt::If {
                then_body,
                else_body,
                ..
            } => remove_nth(then_body, n) || remove_nth(else_body, n),
            Stmt::While { body: inner, .. } => remove_nth(inner, n),
            _ => false,
        };
        if descended {
            return true;
        }
        i += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_and_remove_agree_on_nested_bodies() {
        let m = clap_ir::parse_module(
            "fn main() { let x: int = 1; if (x == 1) { yield; yield; } else { yield; } }",
        )
        .unwrap();
        let body = &m.functions[0].body;
        let total = super::count_stmts(body);
        assert_eq!(total, 5, "let + if + 3 nested yields");
        for n in 0..total {
            let mut b = body.clone();
            let mut target = n;
            assert!(super::remove_nth(&mut b, &mut target), "index {n}");
        }
        let mut b = body.clone();
        let mut target = total;
        assert!(!super::remove_nth(&mut b, &mut target), "one past the end");
    }

    #[test]
    fn shrinks_to_the_load_bearing_core() {
        let src = "global int x = 0; global int unused = 0; mutex m;
             fn noise() { lock(m); unlock(m); }
             fn w() { let v: int = x; yield; x = v + 1; }
             fn main() {
                 let n: thread = fork noise();
                 let a: thread = fork w(); let b: thread = fork w();
                 join n; join a; join b;
                 let pad: int = 7;
                 assert(x == 2, \"lost\");
             }";
        // Predicate: still a *concurrency* failure — some interleavings
        // fail, some complete. (Plain `!failing.is_empty()` would let the
        // shrinker strip the forks down to a deterministic assert(false).)
        let pred = |s: &str| {
            let p = clap_ir::parse(s).expect("shrinker candidates parse");
            let r = crate::oracle::enumerate(
                &p,
                &crate::oracle::OracleConfig::new(clap_vm::MemModel::Sc),
            );
            !r.failing.is_empty() && r.completed > 0
        };
        let shrunk = shrink_source(src, pred).expect("original fails");
        assert!(pred(&shrunk), "shrunk program still fails");
        // The noise function, the unused global, and the pad statement
        // must all be gone; the racy core must survive.
        assert!(!shrunk.contains("noise"));
        assert!(!shrunk.contains("unused"));
        assert!(!shrunk.contains("pad"));
        assert!(shrunk.contains("fork"));
        assert!(shrunk.contains("assert"));
        assert!(shrunk.len() < src.len() / 2, "substantial shrink: {shrunk}");
    }

    #[test]
    fn non_failing_input_returns_none() {
        assert!(shrink_source("fn main() { yield; }", |_| false).is_none());
        assert!(shrink_source("not a program", |_| true).is_none());
    }
}
