//! Execution fingerprints: the canonical visible-event sequence of one run.
//!
//! Two executions are *the same interleaving* exactly when their fingerprints
//! are equal: the sequence of globally visible events — shared reads (with
//! the value observed), store **commits** (the moment a write becomes
//! visible, which under TSO/PSO is the drain/flush, not the buffering), and
//! synchronization operations — with every thread named by its canonical
//! [`Lineage`] rather than its runtime id. This is what lets the oracle's
//! enumerated executions be compared against a pipeline replay that may have
//! created the same logical threads under different runtime ids.

use clap_ir::AssertId;
use clap_vm::{AccessEvent, Lineage, Monitor, SyncEvent, ThreadId};
use std::collections::HashMap;

/// One canonical visible event. Addresses, mutexes and condvars are plain
/// indices (stable across runs of the same program); threads are lineages.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Event {
    /// A shared load observed `value`.
    Read {
        /// Executing thread.
        thread: Lineage,
        /// Flattened address.
        addr: u32,
        /// The value read.
        value: i64,
    },
    /// A store became globally visible (SC store, drain, or fence flush).
    Commit {
        /// The thread whose store committed.
        thread: Lineage,
        /// Flattened address.
        addr: u32,
        /// The value written.
        value: i64,
    },
    /// Mutex acquired.
    Lock {
        /// Executing thread.
        thread: Lineage,
        /// Mutex index.
        mutex: u32,
    },
    /// Mutex released (including the release phase of `wait`).
    Unlock {
        /// Executing thread.
        thread: Lineage,
        /// Mutex index.
        mutex: u32,
    },
    /// Thread forked.
    Fork {
        /// The forking thread.
        thread: Lineage,
        /// The new thread.
        child: Lineage,
    },
    /// Join completed.
    Join {
        /// The joining thread.
        thread: Lineage,
        /// The joined thread.
        child: Lineage,
    },
    /// Cond-wait completed (mutex reacquired).
    Wait {
        /// Executing thread.
        thread: Lineage,
        /// Condvar index.
        cond: u32,
    },
    /// Cond signalled.
    Signal {
        /// Executing thread.
        thread: Lineage,
        /// Condvar index.
        cond: u32,
    },
    /// Cond broadcast.
    Broadcast {
        /// Executing thread.
        thread: Lineage,
        /// Condvar index.
        cond: u32,
    },
    /// Channel send completed (value enqueued or rendezvoused; sends on a
    /// closed channel complete too — the drop is itself visible ordering).
    ChanSend {
        /// Executing thread.
        thread: Lineage,
        /// Channel index.
        chan: u32,
    },
    /// Channel receive completed.
    ChanRecv {
        /// Executing thread.
        thread: Lineage,
        /// Channel index.
        chan: u32,
    },
    /// Non-blocking channel send.
    ChanTrySend {
        /// Executing thread.
        thread: Lineage,
        /// Channel index.
        chan: u32,
        /// Whether the value was enqueued.
        ok: bool,
    },
    /// Non-blocking channel receive.
    ChanTryRecv {
        /// Executing thread.
        thread: Lineage,
        /// Channel index.
        chan: u32,
        /// Whether a value was dequeued.
        ok: bool,
    },
    /// Channel closed.
    ChanClose {
        /// Executing thread.
        thread: Lineage,
        /// Channel index.
        chan: u32,
    },
    /// Actor spawned.
    SpawnActor {
        /// The spawning thread.
        thread: Lineage,
        /// The new actor thread.
        child: Lineage,
    },
    /// Mailbox append.
    MailboxSend {
        /// Executing thread.
        thread: Lineage,
        /// The mailbox owner.
        target: Lineage,
    },
    /// Mailbox dequeue completed.
    MailboxRecv {
        /// Executing thread.
        thread: Lineage,
    },
}

impl Event {
    /// The lineage of the thread that performed the event.
    pub fn thread(&self) -> &Lineage {
        match self {
            Event::Read { thread, .. }
            | Event::Commit { thread, .. }
            | Event::Lock { thread, .. }
            | Event::Unlock { thread, .. }
            | Event::Fork { thread, .. }
            | Event::Join { thread, .. }
            | Event::Wait { thread, .. }
            | Event::Signal { thread, .. }
            | Event::Broadcast { thread, .. }
            | Event::ChanSend { thread, .. }
            | Event::ChanRecv { thread, .. }
            | Event::ChanTrySend { thread, .. }
            | Event::ChanTryRecv { thread, .. }
            | Event::ChanClose { thread, .. }
            | Event::SpawnActor { thread, .. }
            | Event::MailboxSend { thread, .. }
            | Event::MailboxRecv { thread } => thread,
        }
    }
}

/// The canonical identity of one execution.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Fingerprint {
    /// Visible events in execution order.
    pub events: Vec<Event>,
    /// The assert that failed, when the run ended in a failure.
    pub assert: Option<AssertId>,
}

impl Fingerprint {
    /// Number of adjacent visible-event pairs executed by different
    /// threads — an upper bound on the *preemptive* context switches of
    /// the execution (some switches are forced, e.g. away from an exited
    /// thread), which is what makes it the safe gate for bounded-oracle
    /// membership checks: `switches() <= bound` implies the execution was
    /// within the oracle's preemption bound.
    pub fn switches(&self) -> usize {
        self.events
            .windows(2)
            .filter(|w| w[0].thread() != w[1].thread())
            .count()
    }

    /// One letter per visible event: `M` for main, `A`, `B`, … for worker
    /// lineages in their canonical (lexicographic) order. Commit events
    /// are lowercase so delayed store visibility is legible at a glance.
    pub fn letters(&self) -> String {
        let mut workers: Vec<&Lineage> = self
            .events
            .iter()
            .map(Event::thread)
            .filter(|l| l.components() != [0])
            .collect();
        workers.sort();
        workers.dedup();
        let letter = |l: &Lineage| -> char {
            if l.components() == [0] {
                'M'
            } else {
                let i = workers.iter().position(|w| *w == l).expect("worker known");
                (b'A' + (i % 26) as u8) as char
            }
        };
        self.events
            .iter()
            .map(|e| {
                let c = letter(e.thread());
                if matches!(e, Event::Commit { .. }) {
                    c.to_ascii_lowercase()
                } else {
                    c
                }
            })
            .collect()
    }
}

/// Raw event as captured mid-run (runtime thread ids; canonicalized later).
#[derive(Debug, Clone)]
enum RawEvent {
    Read(ThreadId, u32, i64),
    Commit(ThreadId, u32, i64),
    Sync(ThreadId, SyncEvent),
}

/// A rewind point for DFS backtracking (see [`FingerprintMonitor::mark`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mark {
    events: usize,
    threads: usize,
}

/// A [`Monitor`] that records the visible-event sequence of a run and
/// finalizes it into a [`Fingerprint`].
///
/// Designed for enumeration: [`FingerprintMonitor::mark`] /
/// [`FingerprintMonitor::rewind`] snapshot and restore the recorded prefix
/// in O(1)/O(suffix), mirroring `Vm::snapshot`/`Vm::restore` during a DFS.
#[derive(Debug, Default)]
pub struct FingerprintMonitor {
    events: Vec<RawEvent>,
    /// Runtime id → lineage, in announcement order (append-only within a
    /// path; truncated on rewind).
    threads: Vec<(ThreadId, Lineage)>,
}

impl FingerprintMonitor {
    /// A fresh, empty monitor.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a thread without going through a VM callback — needed for
    /// the main thread under caller-driven stepping, where `Vm::run`'s
    /// announcement never happens.
    pub fn register_thread(&mut self, thread: ThreadId, lineage: Lineage) {
        self.threads.push((thread, lineage));
    }

    /// The current rewind point.
    pub fn mark(&self) -> Mark {
        Mark {
            events: self.events.len(),
            threads: self.threads.len(),
        }
    }

    /// Drops everything recorded after `mark`.
    pub fn rewind(&mut self, mark: Mark) {
        self.events.truncate(mark.events);
        self.threads.truncate(mark.threads);
    }

    /// Number of visible events recorded so far.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Canonicalizes the recorded prefix into a [`Fingerprint`].
    ///
    /// # Panics
    ///
    /// Panics if an event references a thread that was never announced
    /// (a monitor wired past [`FingerprintMonitor::register_thread`]).
    pub fn fingerprint(&self, assert: Option<AssertId>) -> Fingerprint {
        let map: HashMap<ThreadId, Lineage> = self.threads.iter().cloned().collect();
        let lin = |t: ThreadId| -> Lineage {
            map.get(&t)
                .unwrap_or_else(|| panic!("thread {t} never announced"))
                .clone()
        };
        let events = self
            .events
            .iter()
            .map(|raw| match raw {
                RawEvent::Read(t, addr, value) => Event::Read {
                    thread: lin(*t),
                    addr: *addr,
                    value: *value,
                },
                RawEvent::Commit(t, addr, value) => Event::Commit {
                    thread: lin(*t),
                    addr: *addr,
                    value: *value,
                },
                RawEvent::Sync(t, sync) => {
                    let thread = lin(*t);
                    match sync {
                        SyncEvent::Lock(m) => Event::Lock { thread, mutex: m.0 },
                        SyncEvent::Unlock(m) => Event::Unlock { thread, mutex: m.0 },
                        SyncEvent::Fork(child) => Event::Fork {
                            thread,
                            child: lin(*child),
                        },
                        SyncEvent::Join(child) => Event::Join {
                            thread,
                            child: lin(*child),
                        },
                        SyncEvent::Wait(c, _) => Event::Wait { thread, cond: c.0 },
                        SyncEvent::Signal(c) => Event::Signal { thread, cond: c.0 },
                        SyncEvent::Broadcast(c) => Event::Broadcast { thread, cond: c.0 },
                        SyncEvent::ChanSend(ch) => Event::ChanSend { thread, chan: ch.0 },
                        SyncEvent::ChanRecv(ch) => Event::ChanRecv { thread, chan: ch.0 },
                        SyncEvent::ChanTrySend(ch, ok) => Event::ChanTrySend {
                            thread,
                            chan: ch.0,
                            ok: *ok,
                        },
                        SyncEvent::ChanTryRecv(ch, ok) => Event::ChanTryRecv {
                            thread,
                            chan: ch.0,
                            ok: *ok,
                        },
                        SyncEvent::ChanClose(ch) => Event::ChanClose { thread, chan: ch.0 },
                        SyncEvent::SpawnActor(child) => Event::SpawnActor {
                            thread,
                            child: lin(*child),
                        },
                        SyncEvent::MailboxSend(owner) => Event::MailboxSend {
                            thread,
                            target: lin(*owner),
                        },
                        SyncEvent::MailboxRecv => Event::MailboxRecv { thread },
                    }
                }
            })
            .collect();
        Fingerprint { events, assert }
    }
}

impl Monitor for FingerprintMonitor {
    fn on_thread_start(&mut self, thread: ThreadId, lineage: &Lineage, _func: clap_ir::FuncId) {
        self.threads.push((thread, lineage.clone()));
    }

    fn on_access(&mut self, thread: ThreadId, event: &AccessEvent) {
        // Writes are recorded at *commit* time (visibility), not here.
        if !event.is_write {
            self.events
                .push(RawEvent::Read(thread, event.addr.0, event.value));
        }
    }

    fn on_commit(&mut self, thread: ThreadId, addr: clap_vm::Addr, value: i64) {
        self.events.push(RawEvent::Commit(thread, addr.0, value));
    }

    fn on_sync(&mut self, thread: ThreadId, event: &SyncEvent) {
        self.events.push(RawEvent::Sync(thread, *event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clap_vm::{run_with_seed, MemModel};

    #[test]
    fn mark_rewind_round_trip() {
        let mut mon = FingerprintMonitor::new();
        mon.register_thread(ThreadId::MAIN, Lineage::main());
        mon.on_commit(ThreadId::MAIN, clap_vm::Addr(0), 7);
        let mark = mon.mark();
        mon.on_commit(ThreadId::MAIN, clap_vm::Addr(1), 8);
        assert_eq!(mon.event_count(), 2);
        mon.rewind(mark);
        assert_eq!(mon.event_count(), 1);
        let fp = mon.fingerprint(None);
        assert_eq!(
            fp.events,
            vec![Event::Commit {
                thread: Lineage::main(),
                addr: 0,
                value: 7
            }]
        );
    }

    #[test]
    fn same_seed_same_fingerprint_different_seed_may_differ() {
        let program = clap_ir::parse(
            "global int x = 0;
             fn w() { let v: int = x; x = v + 1; }
             fn main() { let a: thread = fork w(); let b: thread = fork w();
                         join a; join b; assert(x == 2); }",
        )
        .unwrap();
        let fp = |seed| {
            let mut mon = FingerprintMonitor::new();
            let (outcome, _) = run_with_seed(&program, MemModel::Sc, seed, &mut mon);
            let assert = match outcome {
                clap_vm::Outcome::AssertFailed { assert, .. } => Some(assert),
                _ => None,
            };
            mon.fingerprint(assert)
        };
        assert_eq!(fp(3), fp(3), "fingerprints are deterministic per seed");
    }

    #[test]
    fn letters_use_canonical_worker_order() {
        let t1 = Lineage::main().child(1);
        let t2 = Lineage::main().child(2);
        let fp = Fingerprint {
            events: vec![
                Event::Lock {
                    thread: Lineage::main(),
                    mutex: 0,
                },
                Event::Read {
                    thread: t2.clone(),
                    addr: 0,
                    value: 0,
                },
                Event::Commit {
                    thread: t1.clone(),
                    addr: 0,
                    value: 1,
                },
                Event::Read {
                    thread: t1,
                    addr: 0,
                    value: 1,
                },
            ],
            assert: None,
        };
        assert_eq!(fp.letters(), "MBaA");
        // M→B, B→a are switches; a→A is the same thread (t1).
        assert_eq!(fp.switches(), 2);
    }
}
