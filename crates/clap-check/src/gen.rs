//! Seeded random generator of small concurrent programs for differential
//! fuzzing.
//!
//! Each generated program is 1–3 workers, each a short list of operations
//! drawn from racy and safe templates — plain read-modify-writes, a
//! lock-protected counter, array cells addressed through a *computed*
//! index, and a condvar handoff — with a `main` that forks every worker,
//! joins them all, and asserts the serial outcome. Any lost update,
//! reordered store, or broken handoff fails the assert, which is exactly
//! what both the oracle and the pipeline go looking for.
//!
//! Determinism matters here: [`ProgramSpec::from_seed`] is a pure function
//! of the seed, so a failing fuzz case is re-runnable from its seed alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Number of array cells the generated programs declare.
pub const CELLS: usize = 3;

/// One worker operation template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerOp {
    /// Unprotected read-modify-write of `x` (racy; `yield` widens the
    /// window).
    IncX,
    /// Unprotected read-modify-write of `y` (racy).
    IncY,
    /// Lock-protected increment of `x` (safe).
    LockedIncX,
    /// Unprotected increment of `a[base + k]` — the index is computed at
    /// runtime, so the symbolic layer sees a non-constant address.
    IncCell(usize),
    /// Lock-protected increment of `ready` plus a `signal` (the producer
    /// half of a condvar handoff).
    NotifyReady,
    /// Blocks until `ready >= 1` via `wait` in a guard loop (the consumer
    /// half).
    AwaitReady,
}

/// A generated program: one op list per worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Worker bodies, in fork order.
    pub workers: Vec<Vec<WorkerOp>>,
}

impl ProgramSpec {
    /// Deterministically derives a spec from `seed`: 1–3 workers of 1–3
    /// ops each. If any worker waits for the handoff but nobody notifies,
    /// a notify is appended to the first worker so the program cannot
    /// trivially deadlock on a lost signal.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let workers = (0..rng.gen_range(1..4usize))
            .map(|_| {
                (0..rng.gen_range(1..4usize))
                    .map(|_| match rng.gen_range(0..8usize) {
                        0 | 1 => WorkerOp::IncX,
                        2 => WorkerOp::IncY,
                        3 => WorkerOp::LockedIncX,
                        4 | 5 => WorkerOp::IncCell(rng.gen_range(0..CELLS)),
                        6 => WorkerOp::NotifyReady,
                        _ => WorkerOp::AwaitReady,
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        let mut spec = ProgramSpec { workers };
        let awaits = spec.count(|op| op == WorkerOp::AwaitReady);
        if awaits > 0 && spec.count(|op| op == WorkerOp::NotifyReady) == 0 {
            spec.workers[0].push(WorkerOp::NotifyReady);
        }
        spec
    }

    fn count(&self, f: impl Fn(WorkerOp) -> bool) -> usize {
        self.workers.iter().flatten().filter(|&&op| f(op)).count()
    }

    /// Renders the spec to `.clap` source. The final assert demands the
    /// serial outcome of every counter.
    pub fn source(&self) -> String {
        let mut out = String::from(
            "global int x = 0; global int y = 0; global int base = 0;\n\
             global int ready = 0;\n",
        );
        let _ = writeln!(out, "global int a[{CELLS}];");
        out.push_str("mutex m; cond c;\n");
        for (w, ops) in self.workers.iter().enumerate() {
            let _ = writeln!(out, "fn w{w}() {{");
            for (i, &op) in ops.iter().enumerate() {
                match op {
                    WorkerOp::IncX => {
                        let _ = writeln!(out, "  let t{i}: int = x; yield; x = t{i} + 1;");
                    }
                    WorkerOp::IncY => {
                        let _ = writeln!(out, "  let t{i}: int = y; yield; y = t{i} + 1;");
                    }
                    WorkerOp::LockedIncX => {
                        let _ = writeln!(
                            out,
                            "  lock(m); let t{i}: int = x; x = t{i} + 1; unlock(m);"
                        );
                    }
                    WorkerOp::IncCell(k) => {
                        let _ = writeln!(
                            out,
                            "  let i{i}: int = base + {k}; let t{i}: int = a[i{i}]; \
                             yield; a[i{i}] = t{i} + 1;"
                        );
                    }
                    WorkerOp::NotifyReady => {
                        let _ = writeln!(
                            out,
                            "  lock(m); let r{i}: int = ready; ready = r{i} + 1; \
                             signal(c); unlock(m);"
                        );
                    }
                    WorkerOp::AwaitReady => {
                        let _ = writeln!(
                            out,
                            "  lock(m); while (ready < 1) {{ wait(c, m); }} unlock(m);"
                        );
                    }
                }
            }
            out.push_str("}\n");
        }
        out.push_str("fn main() {\n");
        for w in 0..self.workers.len() {
            let _ = writeln!(out, "  let h{w}: thread = fork w{w}();");
        }
        for w in 0..self.workers.len() {
            let _ = writeln!(out, "  join h{w};");
        }
        let nx = self.count(|op| matches!(op, WorkerOp::IncX | WorkerOp::LockedIncX));
        let ny = self.count(|op| op == WorkerOp::IncY);
        let nready = self.count(|op| op == WorkerOp::NotifyReady);
        let mut cond = format!("x == {nx} && y == {ny} && ready == {nready}");
        for k in 0..CELLS {
            let nk = self.count(|op| op == WorkerOp::IncCell(k));
            let _ = write!(cond, " && a[{k}] == {nk}");
        }
        let _ = writeln!(out, "  assert({cond}, \"serial outcome\");");
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_parses() {
        for seed in 0..50 {
            let spec = ProgramSpec::from_seed(seed);
            assert_eq!(spec, ProgramSpec::from_seed(seed), "seed {seed}");
            let src = spec.source();
            clap_ir::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn await_without_notify_is_fixed_up() {
        for seed in 0..500 {
            let spec = ProgramSpec::from_seed(seed);
            let awaits = spec.count(|op| op == WorkerOp::AwaitReady);
            let notifies = spec.count(|op| op == WorkerOp::NotifyReady);
            assert!(awaits == 0 || notifies > 0, "seed {seed}: {spec:?}");
        }
    }

    #[test]
    fn generator_covers_every_template() {
        let mut seen = [false; 6];
        for seed in 0..200 {
            for &op in ProgramSpec::from_seed(seed).workers.iter().flatten() {
                let i = match op {
                    WorkerOp::IncX => 0,
                    WorkerOp::IncY => 1,
                    WorkerOp::LockedIncX => 2,
                    WorkerOp::IncCell(_) => 3,
                    WorkerOp::NotifyReady => 4,
                    WorkerOp::AwaitReady => 5,
                };
                seen[i] = true;
            }
        }
        assert_eq!(seen, [true; 6], "200 seeds hit every op template");
    }
}
