//! Seeded random generator of small concurrent programs for differential
//! fuzzing.
//!
//! Each generated program is 1–3 workers, each a short list of operations
//! drawn from racy and safe templates — plain read-modify-writes, a
//! lock-protected counter, array cells addressed through a *computed*
//! index, and a condvar handoff — with a `main` that forks every worker,
//! joins them all, and asserts the serial outcome. Any lost update,
//! reordered store, or broken handoff fails the assert, which is exactly
//! what both the oracle and the pipeline go looking for.
//!
//! Determinism matters here: [`ProgramSpec::from_seed`] is a pure function
//! of the seed, so a failing fuzz case is re-runnable from its seed alone.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// Number of array cells the generated programs declare.
pub const CELLS: usize = 3;

/// One worker operation template.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerOp {
    /// Unprotected read-modify-write of `x` (racy; `yield` widens the
    /// window).
    IncX,
    /// Unprotected read-modify-write of `y` (racy).
    IncY,
    /// Lock-protected increment of `x` (safe).
    LockedIncX,
    /// Unprotected increment of `a[base + k]` — the index is computed at
    /// runtime, so the symbolic layer sees a non-constant address.
    IncCell(usize),
    /// Lock-protected increment of `ready` plus a `signal` (the producer
    /// half of a condvar handoff).
    NotifyReady,
    /// Blocks until `ready >= 1` via `wait` in a guard loop (the consumer
    /// half).
    AwaitReady,
}

/// A generated program: one op list per worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSpec {
    /// Worker bodies, in fork order.
    pub workers: Vec<Vec<WorkerOp>>,
}

impl ProgramSpec {
    /// Deterministically derives a spec from `seed`: 1–3 workers of 1–3
    /// ops each. If any worker waits for the handoff but nobody notifies,
    /// a notify is appended to the first worker so the program cannot
    /// trivially deadlock on a lost signal.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let workers = (0..rng.gen_range(1..4usize))
            .map(|_| {
                (0..rng.gen_range(1..4usize))
                    .map(|_| match rng.gen_range(0..8usize) {
                        0 | 1 => WorkerOp::IncX,
                        2 => WorkerOp::IncY,
                        3 => WorkerOp::LockedIncX,
                        4 | 5 => WorkerOp::IncCell(rng.gen_range(0..CELLS)),
                        6 => WorkerOp::NotifyReady,
                        _ => WorkerOp::AwaitReady,
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        let mut spec = ProgramSpec { workers };
        let awaits = spec.count(|op| op == WorkerOp::AwaitReady);
        if awaits > 0 && spec.count(|op| op == WorkerOp::NotifyReady) == 0 {
            spec.workers[0].push(WorkerOp::NotifyReady);
        }
        spec
    }

    fn count(&self, f: impl Fn(WorkerOp) -> bool) -> usize {
        self.workers.iter().flatten().filter(|&&op| f(op)).count()
    }

    /// Renders the spec to `.clap` source. The final assert demands the
    /// serial outcome of every counter.
    pub fn source(&self) -> String {
        let mut out = String::from(
            "global int x = 0; global int y = 0; global int base = 0;\n\
             global int ready = 0;\n",
        );
        let _ = writeln!(out, "global int a[{CELLS}];");
        out.push_str("mutex m; cond c;\n");
        for (w, ops) in self.workers.iter().enumerate() {
            let _ = writeln!(out, "fn w{w}() {{");
            for (i, &op) in ops.iter().enumerate() {
                match op {
                    WorkerOp::IncX => {
                        let _ = writeln!(out, "  let t{i}: int = x; yield; x = t{i} + 1;");
                    }
                    WorkerOp::IncY => {
                        let _ = writeln!(out, "  let t{i}: int = y; yield; y = t{i} + 1;");
                    }
                    WorkerOp::LockedIncX => {
                        let _ = writeln!(
                            out,
                            "  lock(m); let t{i}: int = x; x = t{i} + 1; unlock(m);"
                        );
                    }
                    WorkerOp::IncCell(k) => {
                        let _ = writeln!(
                            out,
                            "  let i{i}: int = base + {k}; let t{i}: int = a[i{i}]; \
                             yield; a[i{i}] = t{i} + 1;"
                        );
                    }
                    WorkerOp::NotifyReady => {
                        let _ = writeln!(
                            out,
                            "  lock(m); let r{i}: int = ready; ready = r{i} + 1; \
                             signal(c); unlock(m);"
                        );
                    }
                    WorkerOp::AwaitReady => {
                        let _ = writeln!(
                            out,
                            "  lock(m); while (ready < 1) {{ wait(c, m); }} unlock(m);"
                        );
                    }
                }
            }
            out.push_str("}\n");
        }
        out.push_str("fn main() {\n");
        for w in 0..self.workers.len() {
            let _ = writeln!(out, "  let h{w}: thread = fork w{w}();");
        }
        for w in 0..self.workers.len() {
            let _ = writeln!(out, "  join h{w};");
        }
        let nx = self.count(|op| matches!(op, WorkerOp::IncX | WorkerOp::LockedIncX));
        let ny = self.count(|op| op == WorkerOp::IncY);
        let nready = self.count(|op| op == WorkerOp::NotifyReady);
        let mut cond = format!("x == {nx} && y == {ny} && ready == {nready}");
        for k in 0..CELLS {
            let nk = self.count(|op| op == WorkerOp::IncCell(k));
            let _ = write!(cond, " && a[{k}] == {nk}");
        }
        let _ = writeln!(out, "  assert({cond}, \"serial outcome\");");
        out.push_str("}\n");
        out
    }
}

/// One worker operation template for channel programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChanOp {
    /// Blocking `send(ch, v)`. Drops the value when the channel is
    /// already closed — the lost-close race.
    Send(i64),
    /// Blocking `recv(ch)` folded into `sum` under the lock. Yields `-1`
    /// once the channel is closed and drained.
    Recv,
    /// `try_send(ch, v)`: sheds the value when the queue is full, adding
    /// the 0/1 outcome to `sent`.
    TrySend(i64),
    /// `try_recv(ch)`: non-negative results fold into `sum`; an empty
    /// queue yields `-1`, which is skipped.
    TryRecv,
    /// `close(ch)` from a worker (main also always closes after forking,
    /// so no generated program can deadlock on a starved `recv`).
    Close,
}

/// A generated channel/actor program: a bounded channel of capacity
/// 0–3, one op list per worker, and an optional actor mailbox leg.
///
/// The skeleton guarantees termination on *every* interleaving: main
/// closes the channel right after forking, so blocked senders drop and
/// blocked receivers drain to `-1` once the close lands. The final
/// assert demands the full-delivery outcome (`sum` equals the sum of
/// every sent value, all `try_send`s accepted), so any shed, dropped, or
/// drained message fails it on the schedules where the race bites.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChanSpec {
    /// Channel capacity (0 = rendezvous).
    pub cap: usize,
    /// Worker bodies, in fork order.
    pub workers: Vec<Vec<ChanOp>>,
    /// Values main delivers to a `spawn_actor` mailbox (empty = no
    /// actor leg).
    pub actor_msgs: Vec<i64>,
}

impl ChanSpec {
    /// Deterministically derives a spec from `seed`: capacity 0–3, 1–3
    /// workers of 1–3 ops each, and an actor leg on half the seeds. If
    /// no worker ever receives, a `Recv` is appended to the last worker
    /// so sends have at least one potential partner.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let cap = rng.gen_range(0..4usize);
        let workers: Vec<Vec<ChanOp>> = (0..rng.gen_range(1..4usize))
            .map(|_| {
                (0..rng.gen_range(1..4usize))
                    .map(|_| match rng.gen_range(0..8usize) {
                        0 | 1 => ChanOp::Send(rng.gen_range(1i64..6)),
                        2 | 3 => ChanOp::Recv,
                        4 => ChanOp::TrySend(rng.gen_range(1i64..6)),
                        5 => ChanOp::TryRecv,
                        6 => ChanOp::Close,
                        _ => ChanOp::Recv,
                    })
                    .collect()
            })
            .collect();
        let actor_msgs = if rng.gen_range(0..2usize) == 1 {
            (0..rng.gen_range(1..3usize))
                .map(|_| rng.gen_range(1i64..6))
                .collect()
        } else {
            Vec::new()
        };
        let mut spec = ChanSpec {
            cap,
            workers,
            actor_msgs,
        };
        let receives = spec
            .workers
            .iter()
            .flatten()
            .any(|op| matches!(op, ChanOp::Recv | ChanOp::TryRecv));
        let sends = spec
            .workers
            .iter()
            .flatten()
            .any(|op| matches!(op, ChanOp::Send(_) | ChanOp::TrySend(_)));
        if sends && !receives {
            spec.workers
                .last_mut()
                .expect("≥1 worker")
                .push(ChanOp::Recv);
        }
        spec
    }

    /// Sum of every value any op might deliver — the full-delivery
    /// outcome the assert demands.
    fn total(&self) -> i64 {
        let chan: i64 = self
            .workers
            .iter()
            .flatten()
            .map(|op| match op {
                ChanOp::Send(v) | ChanOp::TrySend(v) => *v,
                _ => 0,
            })
            .sum();
        chan + self.actor_msgs.iter().sum::<i64>()
    }

    /// Number of `try_send` ops (the expected value of `sent` under full
    /// delivery).
    fn try_sends(&self) -> i64 {
        self.workers
            .iter()
            .flatten()
            .filter(|op| matches!(op, ChanOp::TrySend(_)))
            .count() as i64
    }

    /// Renders the spec to `.clap` source.
    pub fn source(&self) -> String {
        let mut out = String::from("global int sum = 0; global int sent = 0;\nmutex m;\n");
        let _ = writeln!(out, "chan ch({});", self.cap);
        for (w, ops) in self.workers.iter().enumerate() {
            let _ = writeln!(out, "fn w{w}() {{");
            for (i, &op) in ops.iter().enumerate() {
                match op {
                    ChanOp::Send(v) => {
                        let _ = writeln!(out, "  send(ch, {v});");
                    }
                    ChanOp::Recv => {
                        let _ = writeln!(
                            out,
                            "  let r{i}: int = recv(ch); \
                             lock(m); sum = sum + r{i}; unlock(m);"
                        );
                    }
                    ChanOp::TrySend(v) => {
                        let _ = writeln!(
                            out,
                            "  let o{i}: int = try_send(ch, {v}); \
                             lock(m); sent = sent + o{i}; unlock(m);"
                        );
                    }
                    ChanOp::TryRecv => {
                        let _ = writeln!(
                            out,
                            "  let r{i}: int = try_recv(ch); \
                             lock(m); if (r{i} >= 0) {{ sum = sum + r{i}; }} unlock(m);"
                        );
                    }
                    ChanOp::Close => {
                        let _ = writeln!(out, "  close(ch);");
                    }
                }
            }
            out.push_str("}\n");
        }
        if !self.actor_msgs.is_empty() {
            let _ = writeln!(out, "fn act() {{");
            for (i, _) in self.actor_msgs.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  let a{i}: int = mailbox_recv(); \
                     lock(m); sum = sum + a{i}; unlock(m);"
                );
            }
            out.push_str("}\n");
        }
        out.push_str("fn main() {\n");
        for w in 0..self.workers.len() {
            let _ = writeln!(out, "  let h{w}: thread = fork w{w}();");
        }
        if !self.actor_msgs.is_empty() {
            out.push_str("  let ha: thread = spawn_actor act();\n");
            for v in &self.actor_msgs {
                let _ = writeln!(out, "  mailbox_send(ha, {v});");
            }
        }
        out.push_str("  close(ch);\n");
        for w in 0..self.workers.len() {
            let _ = writeln!(out, "  join h{w};");
        }
        if !self.actor_msgs.is_empty() {
            out.push_str("  join ha;\n");
        }
        let _ = writeln!(
            out,
            "  assert(sum == {} && sent == {}, \"full delivery\");",
            self.total(),
            self.try_sends()
        );
        out.push_str("}\n");
        out
    }
}

/// The four C11 orderings the atomic generator draws from.
const ORDERINGS: [&str; 4] = ["relaxed", "acquire", "release", "seq_cst"];

/// One worker operation template for atomic programs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicOp {
    /// Racy unprotected increment of `p` via a load/store pair — lost
    /// updates under every model. The two indices pick the load and
    /// store orderings from [`ORDERINGS`].
    IncP(usize, usize),
    /// `fetch_add(q, delta, ord)` — atomic, so `q`'s final value is the
    /// sum of all deltas on every schedule.
    FetchAddQ(i64, usize),
    /// `cas(f, 0, 1, ord)` with a lock-protected winner count — exactly
    /// one CAS in the program wins, on every schedule.
    CasFlag(usize),
    /// The message-passing producer half: a relaxed `data` store
    /// followed by a `flag` store at the chosen ordering. A relaxed or
    /// acquire flag publish is reorderable under C11 only.
    Publish(usize),
    /// The consumer half: acquire-load `flag`, and if set, assert the
    /// published `data` value is visible.
    Consume,
}

/// A generated atomic program: one op list per worker.
///
/// Every op is non-blocking and the bodies are straight-line, so every
/// generated program terminates on every interleaving. The final assert
/// demands the serial outcome of `p` (violable by a lost update under
/// any model) plus the schedule-independent invariants on `q` and the
/// CAS winner count; the in-worker `Consume` assert is violable only
/// under C11 when the matching publish is weak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AtomicSpec {
    /// Worker bodies, in fork order.
    pub workers: Vec<Vec<AtomicOp>>,
}

impl AtomicSpec {
    /// Deterministically derives a spec from `seed`: 1–3 workers of 1–3
    /// ops each.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA70311C);
        let workers = (0..rng.gen_range(1..4usize))
            .map(|_| {
                (0..rng.gen_range(1..4usize))
                    .map(|_| match rng.gen_range(0..8usize) {
                        0 | 1 => AtomicOp::IncP(rng.gen_range(0..4usize), rng.gen_range(0..4usize)),
                        2 => AtomicOp::FetchAddQ(rng.gen_range(1i64..4), rng.gen_range(0..4usize)),
                        3 => AtomicOp::CasFlag(rng.gen_range(0..4usize)),
                        4 | 5 => AtomicOp::Publish(rng.gen_range(0..4usize)),
                        _ => AtomicOp::Consume,
                    })
                    .collect::<Vec<_>>()
            })
            .collect::<Vec<_>>();
        AtomicSpec { workers }
    }

    fn count(&self, f: impl Fn(AtomicOp) -> bool) -> usize {
        self.workers.iter().flatten().filter(|&&op| f(op)).count()
    }

    /// Renders the spec to `.clap` source.
    pub fn source(&self) -> String {
        let mut out = String::from(
            "atomic int p = 0; atomic int q = 0; atomic int f = 0;\n\
             atomic int data = 0; atomic int flag = 0;\n\
             global int wins = 0;\nmutex m;\n",
        );
        for (w, ops) in self.workers.iter().enumerate() {
            let _ = writeln!(out, "fn w{w}() {{");
            for (i, &op) in ops.iter().enumerate() {
                match op {
                    AtomicOp::IncP(lo, so) => {
                        let _ = writeln!(
                            out,
                            "  let t{i}: int = load(p, {}); store(p, t{i} + 1, {});",
                            ORDERINGS[lo], ORDERINGS[so]
                        );
                    }
                    AtomicOp::FetchAddQ(delta, o) => {
                        let _ = writeln!(
                            out,
                            "  let t{i}: int = fetch_add(q, {delta}, {});",
                            ORDERINGS[o]
                        );
                    }
                    AtomicOp::CasFlag(o) => {
                        let _ = writeln!(
                            out,
                            "  let t{i}: int = cas(f, 0, 1, {});\n  \
                             if (t{i} == 0) {{ lock(m); wins = wins + 1; unlock(m); }}",
                            ORDERINGS[o]
                        );
                    }
                    AtomicOp::Publish(o) => {
                        let _ = writeln!(
                            out,
                            "  store(data, 7, relaxed); store(flag, 1, {});",
                            ORDERINGS[o]
                        );
                    }
                    AtomicOp::Consume => {
                        let _ = writeln!(
                            out,
                            "  let f{i}: int = load(flag, acquire);\n  \
                             if (f{i} == 1) {{\n    \
                             let d{i}: int = load(data, acquire);\n    \
                             assert(d{i} == 7, \"published data visible\");\n  }}"
                        );
                    }
                }
            }
            out.push_str("}\n");
        }
        out.push_str("fn main() {\n");
        for w in 0..self.workers.len() {
            let _ = writeln!(out, "  let h{w}: thread = fork w{w}();");
        }
        for w in 0..self.workers.len() {
            let _ = writeln!(out, "  join h{w};");
        }
        let nincs = self.count(|op| matches!(op, AtomicOp::IncP(..)));
        let sum_deltas: i64 = self
            .workers
            .iter()
            .flatten()
            .map(|op| match op {
                AtomicOp::FetchAddQ(d, _) => *d,
                _ => 0,
            })
            .sum();
        let cas_winners = usize::from(self.count(|op| matches!(op, AtomicOp::CasFlag(_))) > 0);
        out.push_str("  let fp: int = load(p, seq_cst);\n");
        out.push_str("  let fq: int = load(q, seq_cst);\n");
        let _ = writeln!(
            out,
            "  assert(fp == {nincs} && fq == {sum_deltas} && wins == {cas_winners}, \
             \"serial outcome\");"
        );
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_parses() {
        for seed in 0..50 {
            let spec = ProgramSpec::from_seed(seed);
            assert_eq!(spec, ProgramSpec::from_seed(seed), "seed {seed}");
            let src = spec.source();
            clap_ir::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn await_without_notify_is_fixed_up() {
        for seed in 0..500 {
            let spec = ProgramSpec::from_seed(seed);
            let awaits = spec.count(|op| op == WorkerOp::AwaitReady);
            let notifies = spec.count(|op| op == WorkerOp::NotifyReady);
            assert!(awaits == 0 || notifies > 0, "seed {seed}: {spec:?}");
        }
    }

    #[test]
    fn chan_generation_is_deterministic_and_parses() {
        for seed in 0..50 {
            let spec = ChanSpec::from_seed(seed);
            assert_eq!(spec, ChanSpec::from_seed(seed), "seed {seed}");
            let src = spec.source();
            clap_ir::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn chan_generator_covers_every_template_and_cap() {
        let mut ops = [false; 5];
        let mut caps = [false; 4];
        let mut actor = false;
        for seed in 0..200 {
            let spec = ChanSpec::from_seed(seed);
            caps[spec.cap] = true;
            actor |= !spec.actor_msgs.is_empty();
            for &op in spec.workers.iter().flatten() {
                let i = match op {
                    ChanOp::Send(_) => 0,
                    ChanOp::Recv => 1,
                    ChanOp::TrySend(_) => 2,
                    ChanOp::TryRecv => 3,
                    ChanOp::Close => 4,
                };
                ops[i] = true;
            }
        }
        assert_eq!(ops, [true; 5], "200 seeds hit every channel op");
        assert_eq!(caps, [true; 4], "200 seeds hit every capacity 0–3");
        assert!(actor, "200 seeds include actor legs");
    }

    #[test]
    fn chan_sends_always_have_a_potential_receiver() {
        for seed in 0..500 {
            let spec = ChanSpec::from_seed(seed);
            let sends = spec
                .workers
                .iter()
                .flatten()
                .any(|op| matches!(op, ChanOp::Send(_) | ChanOp::TrySend(_)));
            let receives = spec
                .workers
                .iter()
                .flatten()
                .any(|op| matches!(op, ChanOp::Recv | ChanOp::TryRecv));
            assert!(!sends || receives, "seed {seed}: {spec:?}");
        }
    }

    #[test]
    fn atomic_generation_is_deterministic_and_parses() {
        for seed in 0..50 {
            let spec = AtomicSpec::from_seed(seed);
            assert_eq!(spec, AtomicSpec::from_seed(seed), "seed {seed}");
            let src = spec.source();
            let program =
                clap_ir::parse(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
            assert!(
                program.globals.iter().any(|g| g.atomic),
                "seed {seed} declares atomics"
            );
        }
    }

    #[test]
    fn atomic_generator_covers_every_template_and_ordering() {
        let mut ops = [false; 5];
        let mut ords = [false; 4];
        for seed in 0..200 {
            for &op in AtomicSpec::from_seed(seed).workers.iter().flatten() {
                let i = match op {
                    AtomicOp::IncP(lo, so) => {
                        ords[lo] = true;
                        ords[so] = true;
                        0
                    }
                    AtomicOp::FetchAddQ(_, o) => {
                        ords[o] = true;
                        1
                    }
                    AtomicOp::CasFlag(o) => {
                        ords[o] = true;
                        2
                    }
                    AtomicOp::Publish(o) => {
                        ords[o] = true;
                        3
                    }
                    AtomicOp::Consume => 4,
                };
                ops[i] = true;
            }
        }
        assert_eq!(ops, [true; 5], "200 seeds hit every atomic op");
        assert_eq!(ords, [true; 4], "200 seeds hit every ordering");
    }

    #[test]
    fn atomic_programs_terminate_on_every_interleaving() {
        // Straight-line bodies: even an adversarial scheduler cannot
        // starve them. Spot-check with random runs under C11.
        use clap_vm::{MemModel, NullMonitor, Outcome, RandomScheduler, Vm};
        for seed in 0..20 {
            let src = AtomicSpec::from_seed(seed).source();
            let program = clap_ir::parse(&src).unwrap();
            for vm_seed in 0..20 {
                let mut vm = Vm::new(&program, MemModel::C11);
                vm.set_step_limit(200_000);
                let mut sched = RandomScheduler::with_stickiness(vm_seed, 0.5);
                let outcome = vm.run(&mut sched, &mut NullMonitor);
                assert!(
                    !matches!(outcome, Outcome::StepLimit | Outcome::Deadlock { .. }),
                    "seed {seed} vm_seed {vm_seed}: {outcome:?}"
                );
            }
        }
    }

    #[test]
    fn generator_covers_every_template() {
        let mut seen = [false; 6];
        for seed in 0..200 {
            for &op in ProgramSpec::from_seed(seed).workers.iter().flatten() {
                let i = match op {
                    WorkerOp::IncX => 0,
                    WorkerOp::IncY => 1,
                    WorkerOp::LockedIncX => 2,
                    WorkerOp::IncCell(_) => 3,
                    WorkerOp::NotifyReady => 4,
                    WorkerOp::AwaitReady => 5,
                };
                seen[i] = true;
            }
        }
        assert_eq!(seen, [true; 6], "200 seeds hit every op template");
    }
}
